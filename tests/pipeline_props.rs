//! Property-based tests over the whole pipeline: for arbitrary generated
//! circuits and parameters, the compiled network is exactly the circuit.

use c2nn::circuits::generators::{random_dag, random_fsm};
use c2nn::prelude::*;
use c2nn::tensor::Dense;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Random combinational DAGs: NN ≡ reference on random points, for
    /// random LUT sizes, merged or not, f32 or i32.
    #[test]
    fn random_comb_circuits_equivalent(
        seed in 1u64..u64::MAX,
        num_gates in 10usize..120,
        l in 2usize..9,
        merge in any::<bool>(),
    ) {
        let nl = random_dag(8, num_gates, 4, seed);
        let passes = if merge { PassSet::all() } else { PassSet::all().without(PassId::LayerMerge) };
        let nn = compile(&nl, CompileOptions::with_l(l).with_passes(passes)).unwrap();
        let mut sim = CycleSim::new(&nl).unwrap();
        let mut s = seed;
        for _ in 0..24 {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let bits: Vec<bool> = (0..8).map(|j| s >> (j + 8) & 1 == 1).collect();
            prop_assert_eq!(nn.eval(&bits), sim.eval_comb(&bits));
        }
    }

    /// Random sequential circuits: lockstep batched NN simulation matches
    /// per-lane reference simulation over many cycles.
    #[test]
    fn random_seq_circuits_equivalent(
        seed in 1u64..u64::MAX,
        state_bits in 2usize..10,
        num_gates in 10usize..80,
        l in 3usize..8,
    ) {
        let nl = random_fsm(4, state_bits, num_gates, 3, seed);
        let nn = compile(&nl, CompileOptions::with_l(l)).unwrap();
        let batch = 3;
        let mut nn_sim = Simulator::new(&nn, batch, Device::Serial);
        let mut refs: Vec<CycleSim> = (0..batch).map(|_| CycleSim::new(&nl).unwrap()).collect();
        let mut s = seed.wrapping_mul(3);
        for _ in 0..16 {
            let lanes: Vec<Vec<bool>> = (0..batch).map(|lane| {
                (0..4).map(|j| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(lane as u64 + j);
                    s >> 33 & 1 == 1
                }).collect()
            }).collect();
            let got = nn_sim.step(&Dense::<f32>::from_lanes(&lanes)).to_lanes();
            for (lane, r) in refs.iter_mut().enumerate() {
                prop_assert_eq!(&got[lane], &r.step(&lanes[lane]));
            }
        }
    }

    /// The i32 network is bit-identical to the f32 network.
    #[test]
    fn integer_network_equals_float(
        seed in 1u64..u64::MAX,
        num_gates in 10usize..60,
        l in 2usize..8,
    ) {
        let nl = random_dag(6, num_gates, 3, seed);
        let nf = compile(&nl, CompileOptions::with_l(l)).unwrap();
        let ni = compile_as::<i32>(&nl, CompileOptions::with_l(l)).unwrap();
        for x in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|j| x >> j & 1 == 1).collect();
            prop_assert_eq!(nf.eval(&bits), ni.eval(&bits));
        }
    }

    /// Serialization round-trips the network exactly.
    #[test]
    fn serde_roundtrip_preserves_function(
        seed in 1u64..u64::MAX,
        num_gates in 10usize..40,
    ) {
        let nl = random_dag(5, num_gates, 3, seed);
        let nn = compile(&nl, CompileOptions::with_l(4)).unwrap();
        let json = nn.to_json_string();
        let back = CompiledNn::<f32>::from_json_str(&json).unwrap();
        for x in 0..32u64 {
            let bits: Vec<bool> = (0..5).map(|j| x >> j & 1 == 1).collect();
            prop_assert_eq!(nn.eval(&bits), back.eval(&bits));
        }
    }
}
