//! The paper's §IV-A verification, at full scale: for every Table I
//! benchmark circuit and several LUT sizes, the compiled neural network
//! must produce outputs identical to the reference gate-level simulator
//! when driven with the same random stimuli — and the event-driven
//! simulator must agree with both.

use c2nn::circuits::table1_suite;
use c2nn::prelude::*;
use c2nn::refsim::EventSim;
use c2nn::tensor::Dense;

struct Lcg(u64);

impl Lcg {
    fn bit(&mut self) -> bool {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 40 & 1 == 1
    }
}

fn verify_circuit(name: &str, nl: &c2nn::netlist::Netlist, l: usize, cycles: usize, batch: usize) {
    let nn = compile(nl, CompileOptions::with_l(l))
        .unwrap_or_else(|e| panic!("{name} L={l}: compile failed: {e}"));
    let mut nn_sim = Simulator::new(&nn, batch, Device::Serial);
    let mut cycle_refs: Vec<CycleSim> = (0..batch).map(|_| CycleSim::new(nl).unwrap()).collect();
    let mut event_ref = EventSim::new(nl).unwrap();
    let mut rng = Lcg(0xc2 ^ l as u64 ^ name.len() as u64);
    let pi = nn.num_primary_inputs;
    for cycle in 0..cycles {
        let lanes: Vec<Vec<bool>> = (0..batch)
            .map(|_| (0..pi).map(|_| rng.bit()).collect())
            .collect();
        let x = Dense::<f32>::from_lanes(&lanes);
        let got = nn_sim.step(&x).to_lanes();
        for (lane, r) in cycle_refs.iter_mut().enumerate() {
            let want = r.step(&lanes[lane]);
            assert_eq!(
                got[lane], want,
                "{name} L={l}: NN ≠ reference at cycle {cycle}, lane {lane}"
            );
        }
        // event-driven simulator agrees on lane 0
        let ev = event_ref.step(&lanes[0]);
        assert_eq!(
            got[0], ev,
            "{name} L={l}: event sim diverged at cycle {cycle}"
        );
    }
}

#[test]
fn spi_and_uart_exact_at_all_l() {
    for bench in table1_suite() {
        if bench.name != "SPI" && bench.name != "UART" {
            continue;
        }
        let nl = (bench.build)();
        for l in [2, 3, 5, 7, 11] {
            verify_circuit(bench.name, &nl, l, 60, 4);
        }
    }
}

#[test]
fn aes_exact() {
    let nl = c2nn::circuits::aes128();
    for l in [3, 6] {
        verify_circuit("AES", &nl, l, 15, 2);
    }
}

#[test]
fn sha_exact() {
    let nl = c2nn::circuits::sha256();
    for l in [3, 6] {
        verify_circuit("SHA", &nl, l, 15, 2);
    }
}

#[test]
fn riscv_exact() {
    let nl = c2nn::circuits::riscv_interface();
    for l in [3, 6] {
        verify_circuit("RISC-V", &nl, l, 15, 2);
    }
}

#[test]
fn dma_exact() {
    // the small variant keeps test time bounded; the suite's 64-channel
    // build goes through the identical code path
    let nl = c2nn::circuits::dma(4);
    for l in [3, 6] {
        verify_circuit("DMA", &nl, l, 25, 2);
    }
}

#[test]
fn aes_network_encrypts_correctly_end_to_end() {
    use c2nn::circuits::aes::reference;
    let nl = c2nn::circuits::aes128();
    let nn = compile(&nl, CompileOptions::with_l(4)).unwrap();
    let key: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
        0x0f,
    ];
    let pt: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee,
        0xff,
    ];
    let pack = |bytes: &[u8]| -> Vec<bool> {
        bytes
            .iter()
            .flat_map(|&b| (0..8).map(move |k| b >> k & 1 == 1))
            .collect()
    };
    let mut sim = Simulator::new(&nn, 1, Device::Serial);
    let mut start = vec![true];
    start.extend(pack(&key));
    start.extend(pack(&pt));
    sim.step(&Dense::<f32>::from_lanes(&[start]));
    let idle = vec![false; 257];
    let mut out = Vec::new();
    for _ in 0..12 {
        out = sim
            .step(&Dense::<f32>::from_lanes(std::slice::from_ref(&idle)))
            .to_lanes()
            .remove(0);
        if out[129] {
            break;
        }
    }
    assert!(out[129], "NN-simulated AES never finished");
    let ct: Vec<u8> = out[..128]
        .chunks(8)
        .map(|c| c.iter().enumerate().map(|(k, &b)| (b as u8) << k).sum())
        .collect();
    assert_eq!(ct, reference::encrypt(key, pt).to_vec());
}
