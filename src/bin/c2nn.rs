//! `c2nn` — command-line front door to the compiler.
//!
//! ```text
//! c2nn compile <file.v|.blif> --top <module> [--l <n>] [--wide] [--out model.json]
//! c2nn stats   <file.v|.blif> --top <module> [--l <n>] [--wide]
//! c2nn sim     <model.json> --cycles <n> [--batch <n>]
//! c2nn trace   <file.v|.blif> --top <module> --cycles <n> [--out wave.vcd]
//! c2nn dot     <file.v|.blif> --top <module>
//! ```
//!
//! `.blif` inputs skip the Verilog frontend (`--top` then optional).

use c2nn::prelude::*;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  c2nn compile <file.v|.blif> --top <module> [--l <n>] [--wide] [--out model.json]\n  \
         c2nn stats   <file.v|.blif> --top <module> [--l <n>] [--wide]\n  \
         c2nn sim     <model.json> --cycles <n> [--batch <n>]\n  \
         c2nn bench   <model.json> <tb.stim>... (batched testbenches)\n  \
         c2nn trace   <file.v|.blif> --top <module> --cycles <n> [--out wave.vcd]\n  \
         c2nn dot     <file.v|.blif> --top <module>"
    );
    exit(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load_netlist(path: &str, top: Option<&str>) -> Netlist {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    if path.ends_with(".blif") {
        return c2nn::netlist::from_blif(&src).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });
    }
    let top = top.unwrap_or_else(|| {
        eprintln!("--top <module> is required for Verilog input");
        exit(2)
    });
    c2nn::verilog::compile(&src, top).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "compile" | "stats" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let top = flag(&args, "--top");
            let l: usize = flag(&args, "--l")
                .map(|s| s.parse().expect("--l must be an integer"))
                .unwrap_or(7);
            let nl = load_netlist(file, top.as_deref());
            let mut opts = CompileOptions::with_l(l);
            if args.iter().any(|a| a == "--wide") {
                opts = opts.with_wide_gates();
            }
            let t0 = std::time::Instant::now();
            let nn = compile(&nl, opts).unwrap_or_else(|e| {
                eprintln!("compile error: {e}");
                exit(1)
            });
            let gen = t0.elapsed().as_secs_f64();
            println!("circuit   : {} ({file})", nl.name);
            println!("gates     : {} (+{} flip-flops)", nl.gates.len(), nl.flipflops.len());
            println!("L         : {l}");
            println!("gen time  : {gen:.3} s");
            println!("layers    : {}", nn.num_layers());
            println!("connections: {}", nn.connections());
            println!("memory    : {:.2} MB", nn.memory_bytes() as f64 / 1e6);
            println!("sparsity  : {:.5}", nn.mean_sparsity());
            if cmd == "compile" {
                let out = flag(&args, "--out").unwrap_or_else(|| "model.json".into());
                let json = serde_json::to_string(&nn).expect("serialize");
                std::fs::write(&out, json).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(1)
                });
                println!("model written to {out}");
            }
        }
        "bench" => {
            // c2nn bench <model.json> <tb1.stim> [<tb2.stim> ...]
            let file = args.get(1).unwrap_or_else(|| usage());
            let json = std::fs::read_to_string(file).unwrap_or_else(|e| {
                eprintln!("cannot read {file}: {e}");
                exit(1)
            });
            let nn: CompiledNn<f32> = serde_json::from_str(&json).unwrap_or_else(|e| {
                eprintln!("not a c2nn model: {e}");
                exit(1)
            });
            let tb_files: Vec<&String> = args[2..].iter().filter(|a| !a.starts_with("--")).collect();
            if tb_files.is_empty() {
                eprintln!("no .stim testbenches given");
                exit(2)
            }
            let benches: Vec<c2nn::core::Stimulus> = tb_files
                .iter()
                .map(|f| {
                    let text = std::fs::read_to_string(f).unwrap_or_else(|e| {
                        eprintln!("cannot read {f}: {e}");
                        exit(1)
                    });
                    c2nn::core::parse_stim(&text, nn.num_primary_inputs).unwrap_or_else(|e| {
                        eprintln!("{f}: {e}");
                        exit(1)
                    })
                })
                .collect();
            let t0 = std::time::Instant::now();
            let results = c2nn::core::run_batch(&nn, &benches, Device::Serial);
            let dt = t0.elapsed().as_secs_f64();
            let total_cycles: usize = benches.iter().map(|b| b.cycles.len()).sum();
            println!(
                "{} testbenches, {total_cycles} total cycles, one batched simulation in {dt:.3}s",
                benches.len()
            );
            for (f, r) in tb_files.iter().zip(&results) {
                let last = r.cycles.last().map(|c| {
                    c.iter().rev().map(|&b| if b { '1' } else { '0' }).collect::<String>()
                });
                println!("  {f}: {} cycles, final outputs {}", r.cycles.len(), last.unwrap_or_default());
            }
        }
        "sim" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let cycles: u64 = flag(&args, "--cycles")
                .map(|s| s.parse().expect("--cycles must be an integer"))
                .unwrap_or(16);
            let batch: usize = flag(&args, "--batch")
                .map(|s| s.parse().expect("--batch must be an integer"))
                .unwrap_or(1);
            let json = std::fs::read_to_string(file).unwrap_or_else(|e| {
                eprintln!("cannot read {file}: {e}");
                exit(1)
            });
            let nn: CompiledNn<f32> = serde_json::from_str(&json).unwrap_or_else(|e| {
                eprintln!("not a c2nn model: {e}");
                exit(1)
            });
            let mut sim = Simulator::new(&nn, batch, Device::Serial);
            let zeros = Dense::<f32>::zeros(nn.num_primary_inputs, batch);
            let t0 = std::time::Instant::now();
            let mut last = None;
            for _ in 0..cycles {
                last = Some(sim.step(&zeros));
            }
            let dt = t0.elapsed().as_secs_f64();
            println!(
                "{cycles} cycles × {batch} lanes in {dt:.3}s — {:.3e} gates·cycles/s",
                nn.gate_count as f64 * cycles as f64 * batch as f64 / dt
            );
            if let Some(out) = last {
                let lane0 = &out.to_lanes()[0];
                let word: String = lane0.iter().rev().map(|&b| if b { '1' } else { '0' }).collect();
                println!("lane 0 outputs after final cycle: {word}");
            }
        }
        "trace" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let top = flag(&args, "--top");
            let cycles: usize = flag(&args, "--cycles")
                .map(|s| s.parse().expect("--cycles must be an integer"))
                .unwrap_or(32);
            let out = flag(&args, "--out").unwrap_or_else(|| "wave.vcd".into());
            let nl = load_netlist(file, top.as_deref());
            // free-running trace with a simple walking-ones stimulus
            let n_in = nl.inputs.len();
            let stimuli: Vec<Vec<bool>> = (0..cycles)
                .map(|c| (0..n_in).map(|j| n_in != 0 && c % (n_in + 1) == j).collect())
                .collect();
            let rec = c2nn::refsim::trace_run(&nl, &stimuli).unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(1)
            });
            rec.write_to(&out).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
            println!("{cycles} cycles traced to {out} (view with GTKWave)");
        }
        "dot" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let top = flag(&args, "--top");
            let nl = load_netlist(file, top.as_deref());
            print!("{}", c2nn::netlist::to_dot(&nl));
        }
        _ => usage(),
    }
}
