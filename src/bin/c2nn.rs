//! `c2nn` — command-line front door to the compiler.
//!
//! ```text
//! c2nn compile <file.v|.blif> --top <module> [--l <n>] [--wide] [--passes <list>] [--stats] [--out model.json]
//! c2nn stats   <file.v|.blif> --top <module> [--l <n>] [--wide] [--passes <list>] [--stats]
//! c2nn sim     <model.json> --cycles <n> [--batch <n>] [--backend <name>|auto] [--guard]
//! c2nn serve   <model.json>... [--addr host:port] [--max-batch <n>] [--max-wait-ms <n>] [--mem-mb <n>] [--max-inflight <n>] [--backend <name>|auto] [--chaos <spec>]
//! c2nn calibrate [--quick] [--out results/DEVICE.json] [--check <path>]
//! c2nn client  <addr> --model <name> --stim <tb.stim> [--clients <n>] [--repeat <n>] [--deadline-ms <n>] [--retries <n>] [--seed <n>]
//! c2nn trace   <file.v|.blif> --top <module> --cycles <n> [--out wave.vcd]
//! c2nn dot     <file.v|.blif> --top <module>
//! ```
//!
//! `.blif` inputs skip the Verilog frontend (`--top` then optional).

use c2nn::prelude::*;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  c2nn compile <file.v|.blif> --top <module> [--l <n>] [--wide] [--passes <list>] [--stats] [--out model.json]\n  \
         c2nn stats   <file.v|.blif> --top <module> [--l <n>] [--wide] [--passes <list>] [--stats]\n  \
         (--passes: all | none | comma list of fold,cse,dce,merge)\n  \
         c2nn sim     <model.json> --cycles <n> [--batch <n>] [--backend <name>|auto] [--guard]\n  \
         c2nn bench   <model.json> <tb.stim>... (batched testbenches)\n  \
         c2nn serve   <model.json>... [--addr host:port] [--io auto|threads|epoll] [--wire any|json] [--max-batch <n>] [--max-wait-ms <n>] [--mem-mb <n>] [--max-inflight <n>] [--backend <name>|auto] [--chaos <spec>]\n  \
         c2nn calibrate [--quick] [--out results/DEVICE.json] [--check <path>]\n  \
         (--chaos: seed=<n>,worker_panic=<p>,worker_panic_budget=<n>,stall=<p>,stall_ms=<n>,stall_budget=<n>)\n  \
         c2nn client  <addr> [--wire json|binary] [--ping | --stats | --metrics [--check] | --shutdown | --load <model.json> [--name <n>]]\n  \
         c2nn client  <addr> --model <name> --stim <tb.stim> [--wire json|binary] [--clients <n>] [--repeat <n>] [--deadline-ms <n>] [--retries <n>] [--seed <n>]\n  \
         c2nn client  <addr> --model <name> --stim <tb.stim> --rate <req/s> [--wire json|binary] [--connections <n>] [--duration-s <s>] [--deadline-ms <n>] [--json]\n  \
         c2nn trace   <file.v|.blif> --top <module> --cycles <n> [--out wave.vcd]\n  \
         c2nn dot     <file.v|.blif> --top <module>"
    );
    exit(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse an integer flag, exiting with a friendly usage error (status 2, the
/// same convention as [`usage`]) instead of panicking on garbage. `min`
/// rejects nonsensical values like `--batch 0`.
fn int_flag<T>(args: &[String], name: &str, default: T, min: T) -> T
where
    T: std::str::FromStr + PartialOrd + std::fmt::Display + Copy,
{
    let Some(s) = flag(args, name) else {
        return default;
    };
    let v = s.parse::<T>().unwrap_or_else(|_| {
        eprintln!("error: {name} expects an integer, got `{s}`");
        exit(2)
    });
    if v < min {
        eprintln!("error: {name} must be at least {min}, got {v}");
        exit(2)
    }
    v
}

/// Parse `--backend`. Unknown names exit with the usage convention and list
/// the backends actually registered in the [`c2nn::hal::BackendRegistry`] —
/// the CLI never hard-codes backend names.
fn backend_flag(args: &[String]) -> c2nn::hal::Choice {
    let Some(s) = flag(args, "--backend") else {
        return c2nn::hal::Choice::Auto;
    };
    let choice = c2nn::hal::Choice::parse(&s);
    if let c2nn::hal::Choice::Named(name) = &choice {
        let registry = c2nn::hal::BackendRegistry::global();
        if registry.get(name).is_none() {
            eprintln!(
                "error: unknown backend `{name}`; available: {}, auto",
                registry.names().join(", ")
            );
            exit(2)
        }
    }
    choice
}

/// Default calibration file, written by `c2nn calibrate` and read back by
/// `sim`/`serve` for `--backend auto` cost-model decisions.
const DEVICE_JSON: &str = "results/DEVICE.json";

/// Load `results/DEVICE.json` if present; otherwise fall back to the
/// conservative built-in host calibration. A present-but-corrupt file is an
/// error (silently ignoring it would make `--backend auto` nondeterministic
/// across checkouts).
fn load_calibration() -> c2nn::hal::DeviceCalibration {
    match std::fs::read_to_string(DEVICE_JSON) {
        Ok(text) => c2nn::hal::DeviceCalibration::from_json_text(&text).unwrap_or_else(|e| {
            eprintln!("{DEVICE_JSON}: {e} (re-run `c2nn calibrate`)");
            exit(1)
        }),
        Err(_) => {
            c2nn::hal::DeviceCalibration::default_host(c2nn::tensor::Pool::global().threads())
        }
    }
}

/// Load and validate a model file, turning every defect — unreadable file,
/// bad JSON, corrupt CSR, failed validation — into a friendly diagnostic.
fn load_model(path: &str) -> CompiledNn<f32> {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    CompiledNn::<f32>::from_json_str(&json).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1)
    })
}

fn load_netlist(path: &str, top: Option<&str>) -> Netlist {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    if path.ends_with(".blif") {
        return c2nn::netlist::from_blif(&src).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });
    }
    let top = top.unwrap_or_else(|| {
        eprintln!("--top <module> is required for Verilog input");
        exit(2)
    });
    c2nn::verilog::compile(&src, top).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "compile" | "stats" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let top = flag(&args, "--top");
            let l: usize = int_flag(&args, "--l", 7, 2);
            let nl = load_netlist(file, top.as_deref());
            let mut opts = CompileOptions::with_l(l);
            if args.iter().any(|a| a == "--wide") {
                opts = opts.with_wide_gates();
            }
            if let Some(spec) = flag(&args, "--passes") {
                opts = opts.with_passes(PassSet::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("error: --passes: {e}");
                    exit(2)
                }));
            }
            let t0 = std::time::Instant::now();
            let (nn, report) = compile_with_report::<f32>(&nl, opts).unwrap_or_else(|e| {
                eprintln!("compile error: {e}");
                exit(1)
            });
            let gen = t0.elapsed().as_secs_f64();
            println!("circuit   : {} ({file})", nl.name);
            println!(
                "gates     : {} (+{} flip-flops)",
                nl.gates.len(),
                nl.flipflops.len()
            );
            println!("L         : {l}");
            println!("gen time  : {gen:.3} s");
            println!("layers    : {}", nn.num_layers());
            println!("connections: {}", nn.connections());
            println!("memory    : {:.2} MB", nn.memory_bytes() as f64 / 1e6);
            println!("sparsity  : {:.5}", nn.mean_sparsity());
            if args.iter().any(|a| a == "--stats") {
                println!("\nper-pass compile report:");
                print!("{}", report.to_table());
            }
            if cmd == "compile" {
                if let Err(e) = nn.validate() {
                    eprintln!("compiled model failed validation (compiler bug?): {e}");
                    exit(1)
                }
                let out = flag(&args, "--out").unwrap_or_else(|| "model.json".into());
                std::fs::write(&out, nn.to_json_string()).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(1)
                });
                println!("model written to {out}");
            }
        }
        "bench" => {
            // c2nn bench <model.json> <tb1.stim> [<tb2.stim> ...]
            let file = args.get(1).unwrap_or_else(|| usage());
            let nn = load_model(file);
            let tb_files: Vec<&String> =
                args[2..].iter().filter(|a| !a.starts_with("--")).collect();
            if tb_files.is_empty() {
                eprintln!("no .stim testbenches given");
                exit(2)
            }
            let benches: Vec<c2nn::core::Stimulus> = tb_files
                .iter()
                .map(|f| {
                    let text = std::fs::read_to_string(f).unwrap_or_else(|e| {
                        eprintln!("cannot read {f}: {e}");
                        exit(1)
                    });
                    c2nn::core::parse_stim(&text, nn.num_primary_inputs).unwrap_or_else(|e| {
                        eprintln!("{f}: {e}");
                        exit(1)
                    })
                })
                .collect();
            let t0 = std::time::Instant::now();
            let results = c2nn::core::run_batch(&nn, &benches, Device::Serial);
            let dt = t0.elapsed().as_secs_f64();
            let total_cycles: usize = benches.iter().map(|b| b.cycles.len()).sum();
            println!(
                "{} testbenches, {total_cycles} total cycles, one batched simulation in {dt:.3}s",
                benches.len()
            );
            for (f, r) in tb_files.iter().zip(&results) {
                let last = r.cycles.last().map(|c| {
                    c.iter()
                        .rev()
                        .map(|&b| if b { '1' } else { '0' })
                        .collect::<String>()
                });
                println!(
                    "  {f}: {} cycles, final outputs {}",
                    r.cycles.len(),
                    last.unwrap_or_default()
                );
            }
        }
        "sim" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let cycles: u64 = int_flag(&args, "--cycles", 16, 1);
            let batch: usize = int_flag(&args, "--batch", 1, 1);
            let guard = args.iter().any(|a| a == "--guard");
            let choice = backend_flag(&args);
            let nn = load_model(file);
            if guard {
                // the numeric-integrity guard instruments the float
                // simulator directly, bypassing backend selection
                let mut sim = Simulator::new(&nn, batch, Device::Serial);
                sim.enable_guard();
                let zeros = Dense::<f32>::zeros(nn.num_primary_inputs, batch);
                let t0 = std::time::Instant::now();
                let mut last = None;
                for _ in 0..cycles {
                    last = Some(sim.try_step(&zeros).unwrap_or_else(|e| {
                        eprintln!("guard tripped at cycle {}: {e}", sim.cycles());
                        exit(1)
                    }));
                }
                let dt = t0.elapsed().as_secs_f64();
                println!(
                    "{cycles} cycles × {batch} lanes (guarded scalar) in {dt:.3}s — {:.3e} gates·cycles/s",
                    nn.gate_count as f64 * cycles as f64 * batch as f64 / dt
                );
                if let Some(out) = last {
                    let lane0 = &out.to_lanes()[0];
                    let word: String = lane0
                        .iter()
                        .rev()
                        .map(|&b| if b { '1' } else { '0' })
                        .collect();
                    println!("lane 0 outputs after final cycle: {word}");
                }
                return;
            }
            let calibration = load_calibration();
            let nn = std::sync::Arc::new(nn);
            let selection = c2nn::hal::BackendRegistry::global()
                .select(&nn, &choice, &calibration, batch)
                .unwrap_or_else(|e| {
                    eprintln!("{file}: {e}");
                    exit(1)
                });
            println!(
                "backend   : {}{}",
                selection.backend,
                if selection.auto {
                    " (selected by cost model)"
                } else {
                    ""
                }
            );
            if let Some(cps) = selection.predicted_lane_cps {
                println!("predicted : {cps:.3e} lane-cycles/s");
            }
            let stim = c2nn::core::Stimulus {
                cycles: vec![vec![false; nn.num_primary_inputs]; cycles as usize],
            };
            let stims = vec![stim; batch];
            let t0 = std::time::Instant::now();
            let results = selection.plan.execute_batch(&stims).unwrap_or_else(|e| {
                eprintln!("simulation failed: {e}");
                exit(1)
            });
            let dt = t0.elapsed().as_secs_f64();
            println!(
                "{cycles} cycles × {batch} lanes in {dt:.3}s — {:.3e} gates·cycles/s",
                nn.gate_count as f64 * cycles as f64 * batch as f64 / dt
            );
            if let Some(last) = results.first().and_then(|r| r.cycles.last()) {
                let word: String = last
                    .iter()
                    .rev()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect();
                println!("lane 0 outputs after final cycle: {word}");
            }
        }
        "calibrate" => {
            let quick = args.iter().any(|a| a == "--quick");
            if let Some(path) = flag(&args, "--check") {
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    exit(1)
                });
                let cal = c2nn::hal::DeviceCalibration::from_json_text(&text).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    exit(1)
                });
                println!(
                    "{path}: valid calibration for `{}` ({} backends, {} threads{})",
                    cal.device,
                    cal.backends.len(),
                    cal.threads,
                    if cal.quick { ", quick" } else { "" }
                );
                return;
            }
            let out = flag(&args, "--out").unwrap_or_else(|| DEVICE_JSON.into());
            let opts = c2nn::hal::CalibrateOptions {
                quick,
                ..Default::default()
            };
            eprintln!(
                "calibrating {} backends ({}) ...",
                c2nn::hal::BackendRegistry::global().names().len(),
                if quick { "quick" } else { "full" }
            );
            let cal = c2nn::hal::calibrate(c2nn::hal::BackendRegistry::global(), &opts)
                .unwrap_or_else(|e| {
                    eprintln!("calibration failed: {e}");
                    exit(1)
                });
            for b in &cal.backends {
                println!(
                    "{:12} {:.3e} unit/s, launch {:.2e} s, weighted ×{:.2}, coverage {:.3}",
                    b.backend, b.unit_per_s, b.launch_s, b.weighted_unit_factor, b.coverage
                );
            }
            if let Some(dir) = std::path::Path::new(&out).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                        eprintln!("cannot create {}: {e}", dir.display());
                        exit(1)
                    });
                }
            }
            std::fs::write(&out, cal.to_json_text()).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
            println!("calibration written to {out}");
        }
        "serve" => {
            // c2nn serve <model.json>... — each model registered under its
            // file stem
            use c2nn::serve::{spawn_server, BatchConfig, RegistryConfig, ServerConfig};
            let model_files: Vec<&String> = args[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            if model_files.is_empty() {
                eprintln!("no model files given");
                exit(2)
            }
            let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
            let max_batch: usize = int_flag(&args, "--max-batch", 64, 1);
            let max_wait_ms: u64 = int_flag(&args, "--max-wait-ms", 2, 0);
            let mem_mb: usize = int_flag(&args, "--mem-mb", 512, 1);
            let max_inflight: usize = int_flag(&args, "--max-inflight", 1024, 1);
            let io: c2nn::serve::IoModel = flag(&args, "--io")
                .map(|s| {
                    s.parse().unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        exit(2)
                    })
                })
                .unwrap_or_default();
            let wire: c2nn::serve::WirePolicy = flag(&args, "--wire")
                .map(|s| {
                    s.parse().unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        exit(2)
                    })
                })
                .unwrap_or_default();
            let backend = backend_flag(&args);
            let chaos = flag(&args, "--chaos").map(|spec| {
                let cfg = c2nn::serve::ChaosConfig::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    exit(2)
                });
                eprintln!("CHAOS ARMED: {cfg:?} — this server will inject faults on purpose");
                c2nn::serve::Chaos::new(cfg)
            });
            let cfg = ServerConfig {
                addr,
                io,
                registry: RegistryConfig {
                    byte_budget: mem_mb << 20,
                    batch: BatchConfig {
                        max_batch,
                        max_wait: std::time::Duration::from_millis(max_wait_ms),
                        backend: backend.clone(),
                    },
                    calibration: std::sync::Arc::new(load_calibration()),
                    max_inflight,
                    chaos,
                    ..RegistryConfig::default()
                },
                wire,
                ..ServerConfig::default()
            };
            let server = spawn_server(cfg).unwrap_or_else(|e| {
                eprintln!("cannot start server: {e}");
                exit(1)
            });
            for file in &model_files {
                let name = std::path::Path::new(file.as_str())
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(file)
                    .to_string();
                let nn = load_model(file);
                let model = server.registry().install(&name, nn).unwrap_or_else(|e| {
                    eprintln!("{file}: {e}");
                    exit(1)
                });
                println!(
                    "loaded {name} ({:.2} MB) from {file} — backend {}{}",
                    model.bytes as f64 / 1e6,
                    model.backend,
                    if model.auto_selected {
                        " (selected by cost model)"
                    } else {
                        ""
                    }
                );
            }
            c2nn::serve::signal::install_sigint_handler();
            println!(
                "serving on {} (io {:?}, wire {wire:?}, backend {backend}, max_batch {max_batch}, max_wait {max_wait_ms}ms, max_inflight {max_inflight}) — Ctrl-C or a `shutdown` request stops it",
                server.local_addr(),
                io.resolve()
            );
            server.join();
            println!("server stopped");
        }
        "client" => {
            use c2nn::serve::{Client, WireFormat};
            let addr = args.get(1).unwrap_or_else(|| usage()).clone();
            let wire: WireFormat = flag(&args, "--wire")
                .map(|s| {
                    s.parse().unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        exit(2)
                    })
                })
                .unwrap_or_default();
            let connect = |what: &str| -> Client {
                Client::connect_wire(&addr, wire).unwrap_or_else(|e| {
                    eprintln!("cannot connect to {addr} for {what}: {e}");
                    exit(1)
                })
            };
            if args.iter().any(|a| a == "--ping") {
                let version = connect("ping").ping().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(1)
                });
                println!("pong (protocol v{version})");
            } else if args.iter().any(|a| a == "--stats") {
                let stats = connect("stats").stats().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(1)
                });
                for m in &stats.models {
                    println!(
                        "{} [{}{}]: {} requests, {} batches, occupancy {:.2}, queue {}, p50 {}us, p99 {}us, {} deadline-exceeded, {:.2} MB",
                        m.name, m.backend, if m.auto_selected { ", auto" } else { "" },
                        m.requests, m.batches, m.mean_occupancy,
                        m.queue_depth, m.p50_us, m.p99_us, m.deadline_exceeded,
                        m.bytes as f64 / 1e6
                    );
                }
                for b in &stats.server.backends {
                    println!(
                        "backend {}: {} models ({} auto-selected), {} requests",
                        b.backend, b.models, b.auto_selected, b.requests
                    );
                }
                let s = &stats.server;
                println!(
                    "server: {}/{} in flight, pressure {}, draining {}, rejected {} sims / {} loads / {} draining, {} poisoned pool epochs, {} chaos injections",
                    s.inflight, s.max_inflight, s.pressure, s.draining,
                    s.rejected_sims, s.rejected_loads, s.rejected_draining,
                    s.pool_poisoned_epochs, s.chaos_injected
                );
            } else if args.iter().any(|a| a == "--metrics") {
                // scrape the Prometheus endpoint over plain HTTP/1.1;
                // --check additionally validates the exposition shape
                let body = c2nn::serve::client::fetch_metrics(&addr).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(1)
                });
                print!("{body}");
                if args.iter().any(|a| a == "--check") {
                    if let Err(e) = c2nn::serve::metrics::validate_exposition(&body) {
                        eprintln!("metrics validation FAILED: {e}");
                        exit(1)
                    }
                    eprintln!("metrics validation OK");
                }
            } else if args.iter().any(|a| a == "--shutdown") {
                connect("shutdown").shutdown().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(1)
                });
                println!("server is shutting down");
            } else if let Some(file) = flag(&args, "--load") {
                let name = flag(&args, "--name").unwrap_or_else(|| {
                    std::path::Path::new(&file)
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or(&file)
                        .to_string()
                });
                let json = std::fs::read_to_string(&file).unwrap_or_else(|e| {
                    eprintln!("cannot read {file}: {e}");
                    exit(1)
                });
                let bytes = connect("load").load(&name, &json).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(1)
                });
                println!("loaded {name} ({:.2} MB)", bytes as f64 / 1e6);
            } else {
                // simulate: one-shot, or a load generator with --clients
                let model = flag(&args, "--model").unwrap_or_else(|| usage());
                let stim_file = flag(&args, "--stim").unwrap_or_else(|| usage());
                let stim = std::fs::read_to_string(&stim_file).unwrap_or_else(|e| {
                    eprintln!("cannot read {stim_file}: {e}");
                    exit(1)
                });
                let clients: usize = int_flag(&args, "--clients", 1, 1);
                let repeat: usize = int_flag(&args, "--repeat", 1, 1);
                let deadline_ms: Option<u64> = flag(&args, "--deadline-ms")
                    .map(|_| int_flag(&args, "--deadline-ms", 0u64, 1u64));
                let max_retries: u32 = int_flag(&args, "--retries", 8, 0);
                let seed: u64 = int_flag(&args, "--seed", 0, 0);
                if let Some(rate) = flag(&args, "--rate") {
                    // open-loop load generation: arrivals on a fixed
                    // schedule at --rate req/s, latency measured from the
                    // scheduled time (no coordinated omission)
                    let rate: f64 = rate.parse().unwrap_or_else(|_| {
                        eprintln!("--rate must be a number (req/s)");
                        exit(2)
                    });
                    let connections: usize = int_flag(&args, "--connections", 64, 1);
                    let duration_s: u64 = int_flag(&args, "--duration-s", 10, 1);
                    let report = c2nn::serve::loadgen::run(&c2nn::serve::LoadgenConfig {
                        addr: addr.clone(),
                        model,
                        stim,
                        connections,
                        mode: c2nn::serve::ArrivalMode::Open {
                            rate,
                            duration: std::time::Duration::from_secs(duration_s),
                        },
                        deadline_ms,
                        max_retries,
                        seed,
                        wire,
                    });
                    if args.iter().any(|a| a == "--json") {
                        println!(
                            "{}",
                            c2nn::json::ToJson::to_json(&report).to_string_pretty()
                        );
                    } else {
                        println!(
                            "open loop: {} sent over {} conns in {:.2}s — {:.1} req/s ok ({} ok, {} overloaded, {} deadline, {} shutdown, {} failed)",
                            report.sent, connections, report.elapsed_s, report.req_per_s,
                            report.ok, report.overloaded, report.deadline_exceeded,
                            report.shutting_down, report.failed
                        );
                        println!(
                            "latency from scheduled arrival: p50 {}us p90 {}us p99 {}us max {}us",
                            report.p50_us, report.p90_us, report.p99_us, report.max_us
                        );
                    }
                    if report.failed > 0 {
                        exit(1)
                    }
                } else if clients == 1 && repeat == 1 {
                    let outputs = connect("sim")
                        .sim_with_deadline(&model, &stim, deadline_ms)
                        .unwrap_or_else(|e| {
                            eprintln!("error: {e}");
                            exit(1)
                        });
                    println!("outputs: {}", outputs.join(" "));
                } else {
                    // load generator: `clients` connections in parallel,
                    // each sending the testbench `repeat` times; transient
                    // failures (overload, connection races) retry under
                    // capped jittered exponential backoff, deterministic
                    // per --seed
                    use c2nn::serve::{Backoff, ClientError};
                    use std::time::Duration;
                    let before = connect("stats").stats().ok();
                    let t0 = std::time::Instant::now();
                    let handles: Vec<_> = (0..clients)
                        .map(|i| {
                            let addr = addr.clone();
                            let model = model.clone();
                            let stim = stim.clone();
                            std::thread::spawn(move || {
                                // decorrelate threads without losing
                                // determinism: each gets its own stream
                                let mut backoff = Backoff::new(
                                    seed.wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                                    Duration::from_millis(5),
                                    Duration::from_millis(500),
                                );
                                let (mut ok, mut failed, mut retries) = (0usize, 0usize, 0usize);
                                let mut conn: Option<Client> = None;
                                for _ in 0..repeat {
                                    let mut left = max_retries;
                                    loop {
                                        if conn.is_none() {
                                            match Client::connect_wire(&addr, wire) {
                                                Ok(c) => conn = Some(c),
                                                Err(e) if e.is_transient() && left > 0 => {
                                                    left -= 1;
                                                    retries += 1;
                                                    std::thread::sleep(
                                                        backoff.next_delay(e.retry_after()),
                                                    );
                                                    continue;
                                                }
                                                Err(_) => {
                                                    failed += 1;
                                                    break;
                                                }
                                            }
                                        }
                                        let c = conn.as_mut().expect("connected above");
                                        match c.sim_with_deadline(&model, &stim, deadline_ms) {
                                            Ok(_) => {
                                                ok += 1;
                                                backoff.reset();
                                                break;
                                            }
                                            Err(e) if e.is_transient() && left > 0 => {
                                                left -= 1;
                                                retries += 1;
                                                if matches!(e, ClientError::Io(_)) {
                                                    conn = None; // connection is gone
                                                }
                                                std::thread::sleep(
                                                    backoff.next_delay(e.retry_after()),
                                                );
                                            }
                                            Err(_) => {
                                                failed += 1;
                                                break;
                                            }
                                        }
                                    }
                                }
                                (ok, failed, retries)
                            })
                        })
                        .collect();
                    let (mut ok, mut failures, mut retries) = (0usize, 0usize, 0usize);
                    for h in handles {
                        match h.join() {
                            Ok((o, f, r)) => {
                                ok += o;
                                failures += f;
                                retries += r;
                            }
                            Err(_) => failures += repeat,
                        }
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    let total = clients * repeat;
                    println!(
                        "{total} requests from {clients} clients in {dt:.3}s — {:.1} req/s ({ok} ok, {failures} failed, {retries} retries)",
                        ok as f64 / dt
                    );
                    if let (Some(before), Ok(after)) = (before, connect("stats").stats()) {
                        let find = |list: &[c2nn::serve::ModelStatsReport]| {
                            list.iter()
                                .find(|m| m.name == model)
                                .map(|m| (m.lanes, m.batches))
                                .unwrap_or((0, 0))
                        };
                        let (l0, b0) = find(&before.models);
                        let (l1, b1) = find(&after.models);
                        if b1 > b0 {
                            println!(
                                "mean batch occupancy over this run: {:.2} lanes/batch",
                                (l1 - l0) as f64 / (b1 - b0) as f64
                            );
                        }
                        let (s0, s1) = (&before.server, &after.server);
                        let shed = (s1.rejected_sims - s0.rejected_sims)
                            + (s1.rejected_draining - s0.rejected_draining);
                        if shed > 0 {
                            println!(
                                "server shed {shed} requests with typed rejections during this run"
                            );
                        }
                    }
                    if failures > 0 {
                        exit(1)
                    }
                }
            }
        }
        "trace" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let top = flag(&args, "--top");
            let cycles: usize = int_flag(&args, "--cycles", 32, 1);
            let out = flag(&args, "--out").unwrap_or_else(|| "wave.vcd".into());
            let nl = load_netlist(file, top.as_deref());
            // free-running trace with a simple walking-ones stimulus
            let n_in = nl.inputs.len();
            let stimuli: Vec<Vec<bool>> = (0..cycles)
                .map(|c| {
                    (0..n_in)
                        .map(|j| n_in != 0 && c % (n_in + 1) == j)
                        .collect()
                })
                .collect();
            let rec = c2nn::refsim::trace_run(&nl, &stimuli).unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(1)
            });
            rec.write_to(&out).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
            println!("{cycles} cycles traced to {out} (view with GTKWave)");
        }
        "dot" => {
            let file = args.get(1).unwrap_or_else(|| usage());
            let top = flag(&args, "--top");
            let nl = load_netlist(file, top.as_deref());
            print!("{}", c2nn::netlist::to_dot(&nl));
        }
        _ => usage(),
    }
}
