//! # c2nn — circuit-to-neural-network compiler
//!
//! Rust reproduction of *"Neural Network Compiler for Parallel
//! High-Throughput Simulation of Digital Circuits"* (IPPS 2023): compile
//! any digital circuit into a computationally equivalent sparse neural
//! network and simulate thousands of testbenches per forward pass.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | role |
//! |---|---|
//! | [`netlist`] | gate-level IR, builders, sequential transforms |
//! | [`verilog`] | Verilog frontend (lexer/parser/elaborator) |
//! | [`boolfn`] | truth tables, multilinear polynomials, Algorithm 1 |
//! | [`lutmap`] | LUT technology mapping (FlowMap-style) |
//! | [`core`] | the compiler: polynomials → merged sparse NN |
//! | [`tensor`] | sparse kernels (the PyTorch/cuSPARSE stand-in) |
//! | [`refsim`] | reference simulators (the Verilator stand-in) |
//! | [`circuits`] | AES/SHA/SPI/UART/DMA/RV32I benchmark suite |
//! | [`hal`] | pluggable execution backends + calibrated cost model |
//! | [`serve`] | batching simulation service (registry + coalescing) |
//!
//! ## Quickstart
//!
//! ```
//! use c2nn::prelude::*;
//!
//! let netlist = c2nn::verilog::compile(
//!     "module maj(input a, input b, input c, output y);
//!        assign y = (a & b) | (a & c) | (b & c);
//!      endmodule",
//!     "maj",
//! ).unwrap();
//! let nn = compile(&netlist, CompileOptions::with_l(3)).unwrap();
//! assert_eq!(nn.eval(&[true, true, false]), vec![true]);
//! ```

pub use c2nn_boolfn as boolfn;
pub use c2nn_circuits as circuits;
pub use c2nn_core as core;
pub use c2nn_hal as hal;
pub use c2nn_json as json;
pub use c2nn_lutmap as lutmap;
pub use c2nn_netlist as netlist;
pub use c2nn_refsim as refsim;
pub use c2nn_serve as serve;
pub use c2nn_tensor as tensor;
pub use c2nn_verilog as verilog;

/// The most common imports in one place.
pub mod prelude {
    pub use c2nn_core::{
        compile, compile_as, compile_with_report, CompileOptions, CompileReport, CompiledNn,
        PassId, PassSet, Simulator,
    };
    pub use c2nn_netlist::{Netlist, NetlistBuilder, WordOps};
    pub use c2nn_refsim::CycleSim;
    pub use c2nn_tensor::{Dense, Device};
}
