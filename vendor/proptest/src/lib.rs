//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment is fully offline, so the real crates-io `proptest`
//! cannot be fetched. This vendored crate implements the subset of the API
//! that the workspace's property tests use:
//!
//! - [`proptest!`] with an optional `#![proptest_config(..)]` header,
//! - [`Strategy`] with `prop_map`, `prop_recursive`, and `boxed`,
//! - integer range strategies (`a..b`, `a..=b`, `a..`),
//! - tuple strategies (2–4 elements), [`Just`], [`any`], `prop_oneof!`,
//! - [`collection::vec`] with `usize`/range size specs,
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Cases are generated from a deterministic per-test seed (derived
//! from the test function name via FNV-1a), so failures reproduce exactly
//! across runs. Set `PROPTEST_CASES` to override the case count globally.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::rc::Rc;

/// Run-time configuration for a `proptest!` block.
///
/// Only `cases` is honoured; the other fields exist so that
/// `ProptestConfig { cases: N, ..ProptestConfig::default() }` from real
/// proptest-based tests compiles unchanged.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; ignored.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// Deterministic RNG (splitmix64) used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the RNG directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derive a stable seed from a test name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero and fit in 65 bits.
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree: `generate` produces a value
/// directly and failures are reported without shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy behind a cheap clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `self` is the leaf, and `recurse` wraps a
    /// strategy for depth-`k` values into one for depth-`k+1` values. `depth`
    /// bounds the nesting; `_desired_size`/`_expected_branch` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            // 1-in-3 chance of bottoming out early at each level keeps the
            // expected tree size finite while still exercising full depth.
            cur = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
        }
        cur
    }
}

/// Clonable type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of type-erased options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + rng.below(span as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                ((*self.start() as i128) + rng.below(span as u128) as i128) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128) - (self.start as i128) + 1;
                ((self.start as i128) + rng.below(span as u128) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias towards ASCII (useful for parser fuzzing) but cover the full
        // scalar-value range as well.
        if rng.next_u64() & 3 != 0 {
            (rng.below(0x80) as u8) as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for a generated collection.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

thread_local! {
    static CURRENT_CASE: Cell<u64> = const { Cell::new(0) };
}

#[doc(hidden)]
pub fn __set_case(i: u64) {
    CURRENT_CASE.with(|c| c.set(i));
}

#[doc(hidden)]
pub fn __current_case() -> u64 {
    CURRENT_CASE.with(|c| c.get())
}

/// Declare property tests. Matches the real proptest surface used in-tree:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u32..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $crate::__set_case(case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property; reports the failing case index on panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed (case {})", $crate::__current_case())
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b, "property failed (case {})", $crate::__current_case())
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b, "property failed (case {})", $crate::__current_case())
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    /// Re-export so `proptest::collection::vec` paths work via the prelude.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (-4i32..5).generate(&mut rng);
            assert!((-4..5).contains(&v));
            let u = (1u64..).generate(&mut rng);
            assert!(u >= 1);
            let w = (1u8..=8).generate(&mut rng);
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        #[test]
        fn vec_lengths(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }
    }
}
