//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment is fully offline, so the real crates-io `criterion`
//! cannot be fetched. This vendored crate implements the subset of the API the
//! workspace's benches use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros — with straightforward
//! wall-clock timing: each sample runs a calibrated number of iterations and
//! the median ns/iter across samples is printed to stdout.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _c: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.default_sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Run a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to time.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample takes >= 2 ms (or
    // the count is clearly large enough), so cheap bodies are still resolvable
    // against timer quantisation.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        if b.elapsed_ns >= 2_000_000 || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut per_iter: Vec<u128> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            b.elapsed_ns / iters as u128
        })
        .collect();
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    println!("bench: {label:<40} {median:>12} ns/iter ({samples} samples x {iters} iters)");
}

/// Define a benchmark group function calling each target with a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` for convenience.
pub use std::hint::black_box;
