//! Criterion microbenches for the sparse forward kernels (the paper's
//! §III-E/F execution layer): dtype and sparse-vs-dense comparisons.

use c2nn_tensor::{forward_dense, forward_sparse, Activation, Csr, Dense, Device};
use criterion::{criterion_group, criterion_main, Criterion};

fn build_layer(rows: usize, cols: usize, nnz_per_row: usize) -> Csr<f32> {
    let mut seed = 42u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut trips = Vec::new();
    for r in 0..rows as u32 {
        for _ in 0..nnz_per_row {
            trips.push((r, (rng() % cols as u64) as u32, 1.0f32));
        }
    }
    Csr::from_triplets(rows, cols, trips)
}

fn kernels(c: &mut Criterion) {
    let rows = 2048;
    let cols = 2048;
    let batch = 64;
    let w = build_layer(rows, cols, 4);
    let bias = vec![-1.0f32; rows];
    let x = Dense::<f32>::zeros(cols, batch);
    let mut g = c.benchmark_group("forward");
    g.sample_size(20);
    g.bench_function("sparse_f32", |b| {
        b.iter(|| {
            std::hint::black_box(forward_sparse(
                &w,
                &bias,
                &x,
                Activation::Threshold,
                Device::Serial,
            ))
        })
    });
    let wi: Csr<i32> = w.cast(|v| v as i32);
    let biasi = vec![-1i32; rows];
    let xi = Dense::<i32>::zeros(cols, batch);
    g.bench_function("sparse_i32", |b| {
        b.iter(|| {
            std::hint::black_box(forward_sparse(
                &wi,
                &biasi,
                &xi,
                Activation::Threshold,
                Device::Serial,
            ))
        })
    });
    // dense baseline on a smaller layer (full dense 2048² is slow)
    let wd_small = build_layer(256, 256, 4);
    let dvals = wd_small.to_dense();
    let wd = Dense::from_vec(256, 256, dvals);
    let bias_s = vec![-1.0f32; 256];
    let xs = Dense::<f32>::zeros(256, batch);
    g.bench_function("dense_f32_256", |b| {
        b.iter(|| {
            std::hint::black_box(forward_dense(
                &wd,
                &bias_s,
                &xs,
                Activation::Threshold,
                Device::Serial,
            ))
        })
    });
    let ws_small = wd_small;
    g.bench_function("sparse_f32_256", |b| {
        b.iter(|| {
            std::hint::black_box(forward_sparse(
                &ws_small,
                &bias_s,
                &xs,
                Activation::Threshold,
                Device::Serial,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, kernels);
criterion_main!(benches);
