//! Criterion microbenches for the truth-table → polynomial transforms
//! (the machinery behind Figure 4).

use c2nn_boolfn::{lut_to_poly, lut_to_poly_dnf, Lut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn transforms(c: &mut Criterion) {
    let mut seed = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut g = c.benchmark_group("lut_to_poly");
    g.sample_size(20);
    for l in [4u8, 6, 8, 10, 12] {
        let lut = Lut::random(l, &mut rng);
        g.bench_with_input(BenchmarkId::new("alg1", l), &lut, |b, lut| {
            b.iter(|| std::hint::black_box(lut_to_poly(lut)))
        });
        if l <= 10 {
            g.bench_with_input(BenchmarkId::new("dnf", l), &lut, |b, lut| {
                b.iter(|| std::hint::black_box(lut_to_poly_dnf(lut)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, transforms);
criterion_main!(benches);
