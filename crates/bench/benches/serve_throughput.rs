//! Serving-path throughput: requests/s and mean batch occupancy as the
//! number of concurrent clients grows.
//!
//! This is the serving analogue of the paper's batch-size sweep: with
//! micro-batch coalescing, N concurrent clients should approach the
//! throughput of one N-lane batched simulation, not N× the single-lane
//! cost. Results are written to `results/BENCH_serve.json`.
//!
//! Plain `fn main` (harness = false): the measurement loop manages its own
//! server and client threads, which criterion's iteration model doesn't
//! fit.

use c2nn_core::{compile, CompileOptions};
use c2nn_json::{Json, ToJson};
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, ServerConfig};
use c2nn_serve::{Client, RegistryConfig};
use c2nn_tensor::Device;
use std::time::{Duration, Instant};

#[derive(Clone)]
struct Point {
    clients: usize,
    requests: u64,
    elapsed_s: f64,
    req_per_s: f64,
    mean_occupancy: f64,
}

fn measure(addr: &str, clients: usize, repeat: usize) -> Point {
    let stim = "1 x32\n0 x16\n1 x16\n".to_string();
    let (l0, b0) = lanes_batches(addr);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            let stim = stim.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                for _ in 0..repeat {
                    c.sim("ctr", &stim).expect("sim");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let (l1, b1) = lanes_batches(addr);
    let requests = (clients * repeat) as u64;
    Point {
        clients,
        requests,
        elapsed_s,
        req_per_s: requests as f64 / elapsed_s,
        mean_occupancy: if b1 > b0 {
            (l1 - l0) as f64 / (b1 - b0) as f64
        } else {
            0.0
        },
    }
}

fn lanes_batches(addr: &str) -> (u64, u64) {
    let mut c = Client::connect(addr).expect("connect");
    let stats = c.stats().expect("stats");
    stats
        .iter()
        .find(|m| m.name == "ctr")
        .map(|m| (m.lanes, m.batches))
        .unwrap_or((0, 0))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let repeat = if quick { 8 } else { 40 };

    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                device: Device::Parallel,
            },
        },
    })
    .expect("start server");
    let nn = compile(&c2nn_circuits::generators::counter(8), CompileOptions::with_l(4))
        .expect("compile");
    server.registry().install("ctr", nn).expect("install");
    let addr = server.local_addr().to_string();

    // warm up connections, pool threads, and the batcher
    measure(&addr, 2, 4);

    println!("serve_throughput: 64-cycle counter testbench, max_wait 1ms");
    println!("{:>8} {:>10} {:>12} {:>12}", "clients", "requests", "req/s", "occupancy");
    let mut points = Vec::new();
    let single_client_baseline = measure(&addr, 1, repeat);
    for clients in [1usize, 2, 4, 8, 16] {
        let p = if clients == 1 {
            // reuse the baseline run rather than measuring twice
            single_client_baseline.clone()
        } else {
            measure(&addr, clients, repeat)
        };
        println!(
            "{:>8} {:>10} {:>12.1} {:>12.2}",
            p.clients, p.requests, p.req_per_s, p.mean_occupancy
        );
        points.push(p);
    }

    let json = Json::Obj(vec![
        ("bench".into(), "serve_throughput".to_json()),
        ("stim_cycles".into(), 64u64.to_json()),
        ("max_wait_ms".into(), 1u64.to_json()),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("clients".into(), (p.clients as u64).to_json()),
                            ("requests".into(), p.requests.to_json()),
                            ("elapsed_s".into(), p.elapsed_s.to_json()),
                            ("req_per_s".into(), p.req_per_s.to_json()),
                            ("mean_occupancy".into(), p.mean_occupancy.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::create_dir_all("results").ok();
    let path = "results/BENCH_serve.json";
    match std::fs::write(path, c2nn_json::to_string_pretty(&json)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }

    let mut c = Client::connect(&addr).expect("connect");
    c.shutdown().expect("shutdown");
    server.join();
}
