//! Serving-path throughput: requests/s and mean batch occupancy as the
//! number of concurrent clients grows.
//!
//! This is the serving analogue of the paper's batch-size sweep: with
//! micro-batch coalescing, N concurrent clients should approach the
//! throughput of one N-lane batched simulation, not N× the single-lane
//! cost. Results are written to `results/BENCH_serve.json`.
//!
//! Plain `fn main` (harness = false): the measurement loop manages its own
//! server and client threads, which criterion's iteration model doesn't
//! fit.

use c2nn_core::{compile, CompileOptions};
use c2nn_hal::Choice;
use c2nn_json::{Json, ToJson};
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, ServerConfig};
use c2nn_serve::{Client, ClientError, RegistryConfig};
use std::time::{Duration, Instant};

fn counter_model() -> c2nn_core::CompiledNn<f32> {
    compile(
        &c2nn_circuits::generators::counter(8),
        CompileOptions::with_l(4),
    )
    .expect("compile")
}

#[derive(Clone)]
struct Point {
    clients: usize,
    requests: u64,
    elapsed_s: f64,
    req_per_s: f64,
    mean_occupancy: f64,
}

fn measure(addr: &str, clients: usize, repeat: usize) -> Point {
    let stim = "1 x32\n0 x16\n1 x16\n".to_string();
    let (l0, b0) = lanes_batches(addr);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            let stim = stim.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                for _ in 0..repeat {
                    c.sim("ctr", &stim).expect("sim");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let (l1, b1) = lanes_batches(addr);
    let requests = (clients * repeat) as u64;
    Point {
        clients,
        requests,
        elapsed_s,
        req_per_s: requests as f64 / elapsed_s,
        mean_occupancy: if b1 > b0 {
            (l1 - l0) as f64 / (b1 - b0) as f64
        } else {
            0.0
        },
    }
}

fn lanes_batches(addr: &str) -> (u64, u64) {
    let mut c = Client::connect(addr).expect("connect");
    let stats = c.stats().expect("stats");
    stats
        .models
        .iter()
        .find(|m| m.name == "ctr")
        .map(|m| (m.lanes, m.batches))
        .unwrap_or((0, 0))
}

/// Saturation behaviour: a tiny-budget server driven by `clients`
/// connections at full tilt. Every reply must be a sim result or a typed
/// `Overloaded`; anything else (garbled frame, reset, untyped error)
/// counts as `other_errors` and means the overload contract is broken.
struct OverloadRun {
    max_inflight: usize,
    clients: usize,
    offered: u64,
    ok: u64,
    overloaded: u64,
    other_errors: u64,
    goodput_req_per_s: f64,
    min_retry_hint_ms: u64,
    max_retry_hint_ms: u64,
}

fn measure_overload(repeat: usize) -> OverloadRun {
    let max_inflight = 4;
    let clients = 16; // 4× the admission budget
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                backend: Choice::Named("pooled-csr".to_string()),
            },
            max_inflight,
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start overload server");
    server
        .registry()
        .install("ctr", counter_model())
        .expect("install");
    let addr = server.local_addr().to_string();

    let stim = "1 x32\n0 x16\n1 x16\n".to_string();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            let stim = stim.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                let (mut ok, mut overloaded, mut other) = (0u64, 0u64, 0u64);
                let (mut hint_min, mut hint_max) = (u64::MAX, 0u64);
                for _ in 0..repeat {
                    match c.sim("ctr", &stim) {
                        Ok(_) => ok += 1,
                        Err(ClientError::Overloaded { retry_after_ms }) => {
                            overloaded += 1;
                            hint_min = hint_min.min(retry_after_ms);
                            hint_max = hint_max.max(retry_after_ms);
                        }
                        Err(_) => other += 1,
                    }
                }
                (ok, overloaded, other, hint_min, hint_max)
            })
        })
        .collect();
    let (mut ok, mut overloaded, mut other) = (0u64, 0u64, 0u64);
    let (mut hint_min, mut hint_max) = (u64::MAX, 0u64);
    for h in handles {
        let (o, ov, ot, hmin, hmax) = h.join().expect("overload client");
        ok += o;
        overloaded += ov;
        other += ot;
        hint_min = hint_min.min(hmin);
        hint_max = hint_max.max(hmax);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut c = Client::connect(&addr).expect("connect");
    c.shutdown().expect("shutdown");
    server.join();

    OverloadRun {
        max_inflight,
        clients,
        offered: (clients * repeat) as u64,
        ok,
        overloaded,
        other_errors: other,
        goodput_req_per_s: ok as f64 / elapsed_s,
        min_retry_hint_ms: if hint_min == u64::MAX { 0 } else { hint_min },
        max_retry_hint_ms: hint_max,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let repeat = if quick { 8 } else { 40 };

    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                backend: Choice::Named("pooled-csr".to_string()),
            },
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start server");
    server
        .registry()
        .install("ctr", counter_model())
        .expect("install");
    let addr = server.local_addr().to_string();

    // warm up connections, pool threads, and the batcher
    measure(&addr, 2, 4);

    println!("serve_throughput: 64-cycle counter testbench, max_wait 1ms");
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "clients", "requests", "req/s", "occupancy"
    );
    let mut points = Vec::new();
    let single_client_baseline = measure(&addr, 1, repeat);
    for clients in [1usize, 2, 4, 8, 16] {
        let p = if clients == 1 {
            // reuse the baseline run rather than measuring twice
            single_client_baseline.clone()
        } else {
            measure(&addr, clients, repeat)
        };
        println!(
            "{:>8} {:>10} {:>12.1} {:>12.2}",
            p.clients, p.requests, p.req_per_s, p.mean_occupancy
        );
        points.push(p);
    }

    // shut the sweep server down before the overload run so the two don't
    // share the worker pool's attention
    let mut c = Client::connect(&addr).expect("connect");
    c.shutdown().expect("shutdown");
    server.join();

    let peak_req_per_s = points.iter().map(|p| p.req_per_s).fold(0.0, f64::max);
    let ov = measure_overload(repeat);
    println!(
        "overload: {} clients vs max_inflight {} — {} offered, {} ok, {} overloaded, {} other; goodput {:.1} req/s (peak {:.1})",
        ov.clients, ov.max_inflight, ov.offered, ov.ok, ov.overloaded, ov.other_errors,
        ov.goodput_req_per_s, peak_req_per_s
    );

    let json = Json::Obj(vec![
        ("bench".into(), "serve_throughput".to_json()),
        ("stim_cycles".into(), 64u64.to_json()),
        ("max_wait_ms".into(), 1u64.to_json()),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("clients".into(), (p.clients as u64).to_json()),
                            ("requests".into(), p.requests.to_json()),
                            ("elapsed_s".into(), p.elapsed_s.to_json()),
                            ("req_per_s".into(), p.req_per_s.to_json()),
                            ("mean_occupancy".into(), p.mean_occupancy.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "overload".into(),
            Json::Obj(vec![
                ("max_inflight".into(), (ov.max_inflight as u64).to_json()),
                ("clients".into(), (ov.clients as u64).to_json()),
                ("offered".into(), ov.offered.to_json()),
                ("ok".into(), ov.ok.to_json()),
                ("overloaded".into(), ov.overloaded.to_json()),
                ("other_errors".into(), ov.other_errors.to_json()),
                ("goodput_req_per_s".into(), ov.goodput_req_per_s.to_json()),
                ("peak_req_per_s".into(), peak_req_per_s.to_json()),
                ("min_retry_hint_ms".into(), ov.min_retry_hint_ms.to_json()),
                ("max_retry_hint_ms".into(), ov.max_retry_hint_ms.to_json()),
            ]),
        ),
    ]);
    std::fs::create_dir_all("results").ok();
    let path = "results/BENCH_serve.json";
    match std::fs::write(path, c2nn_json::to_string_pretty(&json)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
