//! Criterion benches over the full pipeline: compile and simulate the UART
//! benchmark circuit, against the reference simulator.

use c2nn_core::{compile, CompileOptions, Simulator};
use c2nn_refsim::{CycleSim, EventSim, WordSim};
use c2nn_tensor::{Dense, Device};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn compile_uart(c: &mut Criterion) {
    let nl = c2nn_circuits::uart();
    let mut g = c.benchmark_group("compile_uart");
    g.sample_size(10);
    for l in [3usize, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| std::hint::black_box(compile(&nl, CompileOptions::with_l(l)).unwrap()))
        });
    }
    g.finish();
}

fn simulate_uart(c: &mut Criterion) {
    let nl = c2nn_circuits::uart();
    let nn = compile(&nl, CompileOptions::with_l(5)).unwrap();
    let mut g = c.benchmark_group("simulate_uart");
    g.sample_size(20);
    for batch in [1usize, 64] {
        let mut sim = Simulator::new(&nn, batch, Device::Serial);
        let x = Dense::<f32>::zeros(nn.num_primary_inputs, batch);
        g.bench_with_input(BenchmarkId::new("nn_step", batch), &batch, |b, _| {
            b.iter(|| std::hint::black_box(sim.step(&x)))
        });
    }
    let mut cy = CycleSim::new(&nl).unwrap();
    let stim = vec![false; cy.num_inputs()];
    g.bench_function("refsim_step", |b| {
        b.iter(|| std::hint::black_box(cy.step(&stim)))
    });
    let mut ev = EventSim::new(&nl).unwrap();
    g.bench_function("eventsim_step", |b| {
        b.iter(|| std::hint::black_box(ev.step(&stim)))
    });
    let mut ws = WordSim::new(&nl).unwrap();
    let wstim = vec![0u64; ws.num_inputs()];
    g.bench_function("wordsim_step64", |b| {
        b.iter(|| std::hint::black_box(ws.step(&wstim)))
    });
    g.finish();
}

criterion_group!(benches, compile_uart, simulate_uart);
criterion_main!(benches);
