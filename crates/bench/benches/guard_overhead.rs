//! Guarded vs unguarded simulation: what does opt-in self-checking cost?
//!
//! `Simulator::step` is the unguarded hot path — shape asserts only.
//! `Simulator::try_step` with the guard enabled adds per-cycle work: an
//! FNV-1a checksum over every weight and bias, plus binary-domain checks
//! on the inputs, the pre-step state, the outputs and the next state.
//! This bench quantifies that overhead so the results note can report it.

use c2nn_core::{compile, CompileOptions, Simulator};
use c2nn_tensor::{Dense, Device};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn guard_overhead(c: &mut Criterion) {
    let nl = c2nn_circuits::uart();
    let nn = compile(&nl, CompileOptions::with_l(5)).unwrap();
    let mut g = c.benchmark_group("guard_overhead");
    g.sample_size(20);
    for batch in [1usize, 64, 256] {
        let x = Dense::<f32>::zeros(nn.num_primary_inputs, batch);

        let mut plain = Simulator::new(&nn, batch, Device::Serial);
        g.bench_with_input(BenchmarkId::new("unguarded_step", batch), &batch, |b, _| {
            b.iter(|| std::hint::black_box(plain.step(&x)))
        });

        let mut guarded = Simulator::new(&nn, batch, Device::Serial);
        guarded.enable_guard();
        g.bench_with_input(
            BenchmarkId::new("guarded_try_step", batch),
            &batch,
            |b, _| b.iter(|| std::hint::black_box(guarded.try_step(&x).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(benches, guard_overhead);
criterion_main!(benches);
