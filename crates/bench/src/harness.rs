//! Measurement utilities shared by the `reproduce` binary and the
//! criterion benches: adaptive wall-clock timing and the paper's
//! gates·cycles/s throughput metric.

use std::time::{Duration, Instant};

/// Run `f` repeatedly until at least `budget` has elapsed (minimum
/// `min_iters` runs), returning the mean seconds per call.
pub fn time_adaptive(budget: Duration, min_iters: u32, mut f: impl FnMut()) -> f64 {
    // one warmup call (populates caches / faults pages)
    f();
    let mut iters = 0u32;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed();
        if elapsed >= budget && iters >= min_iters {
            return elapsed.as_secs_f64() / iters as f64;
        }
        // safety valve for very slow calls
        if iters >= 1 && elapsed >= budget * 4 {
            return elapsed.as_secs_f64() / iters as f64;
        }
    }
}

/// Time a single call.
pub fn time_once(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// The paper's throughput unit: gates × cycles / second. For batched
/// simulation, `cycles` counts per-testbench cycles (batch × steps).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    pub gates: usize,
    pub cycles: f64,
    pub seconds: f64,
}

impl Throughput {
    /// gates·cycles/s.
    pub fn gcs(&self) -> f64 {
        self.gates as f64 * self.cycles / self.seconds
    }

    /// Speed-up of `self` over `baseline`.
    pub fn speedup_over(&self, baseline: &Throughput) -> f64 {
        self.gcs() / baseline.gcs()
    }
}

/// Format a float in the paper's `1.23E+04` scientific style.
pub fn sci(v: f64) -> String {
    if v == 0.0 || !v.is_finite() {
        return format!("{v:.2}");
    }
    let exp = v.abs().log10().floor() as i32;
    let mant = v / 10f64.powi(exp);
    format!("{mant:.2}E{exp:+03}")
}

/// Render labeled values as a log-scale ASCII bar chart (the terminal
/// stand-in for the paper's figures).
pub fn log_bars(rows: &[(String, f64)], width: usize) -> String {
    let finite: Vec<f64> = rows.iter().map(|r| r.1).filter(|v| *v > 0.0).collect();
    if finite.is_empty() {
        return String::new();
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min).ln();
    let hi = finite.iter().cloned().fold(0.0f64, f64::max).ln();
    let span = (hi - lo).max(1e-9);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut s = String::new();
    for (label, v) in rows {
        let bar = if *v > 0.0 {
            let frac = (v.ln() - lo) / span;
            1 + (frac * (width - 1) as f64).round() as usize
        } else {
            0
        };
        s.push_str(&format!(
            "  {label:<label_w$} |{} {}
",
            "█".repeat(bar),
            sci(*v)
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let t = Throughput {
            gates: 1000,
            cycles: 50.0,
            seconds: 0.5,
        };
        assert_eq!(t.gcs(), 100_000.0);
        let base = Throughput {
            gates: 1000,
            cycles: 50.0,
            seconds: 5.0,
        };
        assert!((t.speedup_over(&base) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(771_000_000.0), "7.71E+08");
        assert_eq!(sci(0.00123), "1.23E-03");
        assert_eq!(sci(0.0), "0.00");
    }

    #[test]
    fn log_bars_scale_monotonically() {
        let rows = vec![
            ("a".to_string(), 1e-6),
            ("bb".to_string(), 1e-4),
            ("c".to_string(), 1e-2),
        ];
        let chart = log_bars(&rows, 40);
        let lens: Vec<usize> = chart
            .lines()
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        assert!(lens[0] < lens[1] && lens[1] < lens[2], "{chart}");
        assert!(chart.contains("1.00E-06"));
    }

    #[test]
    fn adaptive_timer_returns_positive() {
        let mut x = 0u64;
        let t = time_adaptive(Duration::from_millis(5), 3, || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(x);
        });
        assert!(t > 0.0);
    }
}
