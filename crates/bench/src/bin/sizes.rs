fn main() {
    for b in c2nn_circuits::table1_suite() {
        let nl = (b.build)();
        println!(
            "{:<18} gates={:<8} ffs={:<6} inputs={} outputs={}",
            b.name,
            nl.gate_count(),
            nl.flipflops.len(),
            nl.inputs.len(),
            nl.outputs.len()
        );
    }
}
