//! Compile-stats gate (CI): compile every suite circuit with and without
//! the cross-LUT optimization passes, write
//! `results/BENCH_compile_passes.json`, and **fail** (exit 1) if any
//! optimization pass (`constant-fold`, `monomial-cse`, `dead-neuron-elim`)
//! increased total nonzeros on any circuit. `layer-merge` is recorded but
//! not gated — it deliberately trades nonzeros for depth (Fig. 5).
//!
//! ```text
//! compile_stats [--l N]
//! ```

use c2nn_bench::experiments::{compile_passes, format_compile_passes};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let l = args
        .iter()
        .position(|a| a == "--l")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);

    let rows = compile_passes(l);
    print!("{}", format_compile_passes(&rows));

    std::fs::create_dir_all("results").ok();
    let path = "results/BENCH_compile_passes.json";
    std::fs::write(path, c2nn_json::to_string_pretty(&rows)).expect("write results");
    eprintln!("wrote {path}");

    let mut failed = false;
    for r in &rows {
        for (pass, removed) in [
            ("constant-fold", r.fold_nnz_removed),
            ("monomial-cse", r.cse_nnz_removed),
            ("dead-neuron-elim", r.dce_nnz_removed),
        ] {
            if removed < 0 {
                eprintln!(
                    "FAIL: {pass} increased nnz by {} on {}",
                    -removed, r.circuit
                );
                failed = true;
            }
        }
    }
    let reduced = rows
        .iter()
        .filter(|r| r.cse_nnz_removed + r.dce_nnz_removed > 0)
        .count();
    eprintln!(
        "monomial-cse + dead-neuron-elim reduced nnz on {reduced}/{} circuits",
        rows.len()
    );
    if reduced * 2 < rows.len() {
        eprintln!("FAIL: expected a reduction on at least half the suite");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
