//! Regenerate the paper's tables and figures (DESIGN.md §4).
//!
//! ```text
//! reproduce [--quick] [table1|fig4|fig6|ablate-merge|ablate-sparse|
//!            batch-sweep|ablate-dtype|all]
//! ```
//!
//! Results print as text tables and are also written to `results/*.json`.
//! `--quick` shrinks measurement budgets and sweep ranges for smoke runs.

use c2nn_bench::experiments::*;
use c2nn_bench::harness::sci;
use std::time::Duration;

fn save_json<T: c2nn_json::ToJson>(name: &str, value: &T) {
    std::fs::create_dir_all("results").ok();
    let path = format!("results/{name}.json");
    if let Err(e) = std::fs::write(&path, c2nn_json::to_string_pretty(value)) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

struct Cfg {
    budget: Duration,
    table1_ls: Vec<usize>,
    table1_batch: usize,
    fig4_max_dc: usize,
    fig4_max_dnf: usize,
    fig6_ls: Vec<usize>,
    sweep_batches: Vec<usize>,
}

impl Cfg {
    fn new(quick: bool) -> Self {
        if quick {
            Cfg {
                budget: Duration::from_millis(30),
                table1_ls: vec![3, 7],
                table1_batch: 32,
                fig4_max_dc: 12,
                fig4_max_dnf: 10,
                fig6_ls: vec![2, 3, 5, 7, 9, 11],
                sweep_batches: vec![1, 8, 64, 256],
            }
        } else {
            Cfg {
                budget: Duration::from_millis(300),
                table1_ls: vec![3, 7, 11],
                table1_batch: 64,
                fig4_max_dc: 16,
                fig4_max_dnf: 12,
                fig6_ls: vec![2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
                sweep_batches: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let cfg = Cfg::new(quick);
    let run_all = what == "all";

    if run_all || what == "table1" {
        println!("== Table I: circuits × L — compilation and throughput ==");
        let rows = table1(&cfg.table1_ls, cfg.table1_batch, cfg.budget);
        println!("{}", format_table1(&rows));
        save_json("table1", &rows);
    }
    if run_all || what == "fig4" {
        println!("== Figure 4: polynomial generation time, Algorithm 1 vs DNF ==");
        let pts = fig4(cfg.fig4_max_dc, cfg.fig4_max_dnf, cfg.budget);
        println!("{}", format_fig4(&pts));
        save_json("fig4", &pts);
    }
    if run_all || what == "fig6" {
        println!("== Figure 6: UART layers/connections and sim time vs L ==");
        let pts = fig6(&cfg.fig6_ls, cfg.budget);
        println!("{}", format_fig6(&pts));
        save_json("fig6", &pts);
    }
    if run_all || what == "ablate-merge" {
        println!("== Ablation A1: Fig. 5 layer merging ==");
        let rows = ablate_merge(&[3, 5, 7], cfg.budget);
        println!("  L  layers(merged/un)  cpu merged/unmerged (s)  gpu-model merged/unmerged (s)");
        for r in &rows {
            println!(
                " {:>2}  {:>6}/{:<6}  {:>10}/{:<10}  {:>10}/{:<10}",
                r.l,
                r.layers_merged,
                r.layers_unmerged,
                sci(r.cpu_merged_s),
                sci(r.cpu_unmerged_s),
                sci(r.gpu_modeled_merged_s),
                sci(r.gpu_modeled_unmerged_s)
            );
        }
        save_json("ablate_merge", &rows);
    }
    if run_all || what == "ablate-sparse" {
        println!("== Ablation A2: sparse vs dense kernels ==");
        let rows = ablate_sparse(&[3, 7], 64, cfg.budget);
        println!("  L  sparsity   sparse(s)    dense(s)    dense/sparse");
        for r in &rows {
            println!(
                " {:>2}  {:>8.5}  {:>10}  {:>10}  {:>10.1}",
                r.l,
                r.sparsity,
                sci(r.sparse_s),
                sci(r.dense_s),
                r.dense_s / r.sparse_s
            );
        }
        save_json("ablate_sparse", &rows);
    }
    if run_all || what == "batch-sweep" {
        println!("== Ablation A3: stimulus parallelism (AES, L=3) ==");
        let pts = batch_sweep(3, &cfg.sweep_batches, cfg.budget);
        println!("  batch   measured g*c/s   modeled-GPU g*c/s");
        for p in &pts {
            println!(
                " {:>6}   {:>14}   {:>17}",
                p.batch,
                sci(p.measured_gcs),
                sci(p.modeled_gcs)
            );
        }
        save_json("batch_sweep", &pts);
    }
    if run_all || what == "ablate-wide" {
        println!("== Ablation A5: §V known-function shortcut (AND/OR reduction + XOR) ==");
        let rows = ablate_wide(&[9, 16, 32, 64, 128]);
        println!("  width  layers tree/wide   conns tree/wide   gpu-model tree/wide (s)");
        for r in &rows {
            println!(
                " {:>6}  {:>6}/{:<6}  {:>8}/{:<8}  {:>10}/{:<10}",
                r.width,
                r.layers_tree,
                r.layers_wide,
                r.conns_tree,
                r.conns_wide,
                sci(r.gpu_modeled_tree_s),
                sci(r.gpu_modeled_wide_s)
            );
        }
        save_json("ablate_wide", &rows);
    }
    if run_all || what == "ablate-dtype" {
        println!("== Ablation A4: f32 vs i32 kernels (UART) ==");
        let rows = ablate_dtype(&[3, 7], 64, cfg.budget);
        println!("  L   f32 step (s)   i32 step (s)   f32/i32");
        for r in &rows {
            println!(
                " {:>2}   {:>12}   {:>12}   {:>7.2}",
                r.l,
                sci(r.f32_s),
                sci(r.i32_s),
                r.f32_s / r.i32_s
            );
        }
        save_json("ablate_dtype", &rows);
    }
    if !run_all
        && ![
            "table1",
            "fig4",
            "fig6",
            "ablate-merge",
            "ablate-sparse",
            "batch-sweep",
            "ablate-wide",
            "ablate-dtype",
        ]
        .contains(&what.as_str())
    {
        eprintln!(
            "unknown experiment '{what}'. Options: table1 fig4 fig6 ablate-merge \
             ablate-sparse batch-sweep ablate-dtype all (plus --quick)"
        );
        std::process::exit(2);
    }
}
