//! Serving scale bench + gate (CI): sweep closed-loop client counts against
//! the event-loop server, probe past saturation, scrape `/metrics`, write
//! `results/BENCH_serve_scale.json`, and **fail** (exit 1) if throughput
//! stops scaling with client count, if overload sheds anything untyped, or
//! if the metrics exposition is malformed.
//!
//! ```text
//! serve_scale [--levels 1,2,4,8,16,32,64] [--duration-ms N] [--max-wait-ms N]
//!             [--min-scaling X] [--io auto|threads|epoll] [--out PATH]
//! ```

use c2nn_bench::serve_scale::run_scale;
use c2nn_serve::server::IoModel;
use std::time::Duration;

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let levels_spec = args
        .iter()
        .position(|a| a == "--levels")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "1,2,4,8,16,32,64".to_string());
    let levels: Vec<usize> = levels_spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .expect("--levels takes a comma list of client counts")
        })
        .collect();
    let duration_ms: u64 = flag(&args, "--duration-ms", 500);
    let max_wait_ms: u64 = flag(&args, "--max-wait-ms", 2);
    let min_scaling: f64 = flag(&args, "--min-scaling", 10.0);
    let io: IoModel = flag(&args, "--io", IoModel::Auto);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_serve_scale.json".to_string());

    eprintln!(
        "serve_scale: io {:?}, levels {levels:?}, {duration_ms}ms per level, max_wait {max_wait_ms}ms",
        io.resolve()
    );
    let report = run_scale(
        &levels,
        Duration::from_millis(duration_ms),
        Duration::from_millis(max_wait_ms),
        io,
    );

    std::fs::create_dir_all("results").ok();
    std::fs::write(&out, c2nn_json::to_string_pretty(&report)).expect("write results");
    eprintln!("wrote {out}");

    let mut failed = false;
    eprintln!(
        "scaling 1 -> {} clients: {:.1}x (gate: >= {min_scaling:.1}x)",
        levels.iter().max().unwrap_or(&1),
        report.scaling
    );
    if report.scaling < min_scaling {
        eprintln!("FAIL: batching must let throughput scale with client count");
        failed = true;
    }
    if report.overload.failed > 0 {
        eprintln!(
            "FAIL: {} untyped failures past saturation — overload must shed with typed replies",
            report.overload.failed
        );
        failed = true;
    }
    if report.overload.overloaded + report.overload.deadline_exceeded == 0
        && report.overload.ok < report.overload.sent
    {
        eprintln!("FAIL: unserved overload requests vanished without a typed rejection");
        failed = true;
    }
    if !report.metrics_valid {
        eprintln!("FAIL: /metrics scrape did not validate");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
