//! Regression gate (CI): compare a fresh `BENCH_serve_scale.json` against
//! the committed baseline and **fail** (exit 1) outside the tolerance band.
//!
//! Absolute req/s moves with the runner, so the gate is relative: the
//! candidate must keep at least `(1 - tolerance)` of the baseline's best
//! throughput *and* of its scaling factor, must shed overload typed, and
//! must pass metrics validation. Improvements always pass (and print, so a
//! better baseline can be committed).
//!
//! ```text
//! bench_gate <candidate.json> [--baseline results/BASELINE_serve_scale.json]
//!            [--tolerance 0.5]
//! ```

use c2nn_bench::serve_scale::ScaleReport;

fn read_report(path: &str) -> ScaleReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        std::process::exit(2)
    });
    let json = c2nn_json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: {path} is not valid JSON: {e}");
        std::process::exit(2)
    });
    c2nn_json::FromJson::from_json(&json).unwrap_or_else(|e| {
        eprintln!("bench_gate: {path} is not a ScaleReport: {e}");
        std::process::exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let candidate_path = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_serve_scale.json".to_string());
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BASELINE_serve_scale.json".to_string());
    let tolerance: f64 = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);

    let candidate = read_report(&candidate_path);
    let baseline = read_report(&baseline_path);
    let floor = 1.0 - tolerance;

    println!(
        "bench_gate: candidate {candidate_path} vs baseline {baseline_path} (tolerance {:.0}%)",
        tolerance * 100.0
    );
    println!(
        "  best req/s : {:>10.1} vs {:>10.1}  ({:+.1}%)",
        candidate.best_req_per_s,
        baseline.best_req_per_s,
        (candidate.best_req_per_s / baseline.best_req_per_s.max(1e-9) - 1.0) * 100.0
    );
    println!(
        "  scaling    : {:>10.1}x vs {:>9.1}x  ({:+.1}%)",
        candidate.scaling,
        baseline.scaling,
        (candidate.scaling / baseline.scaling.max(1e-9) - 1.0) * 100.0
    );

    let mut failures = Vec::new();
    if candidate.best_req_per_s < baseline.best_req_per_s * floor {
        failures.push(format!(
            "best throughput regressed below {:.0}% of baseline ({:.1} < {:.1})",
            floor * 100.0,
            candidate.best_req_per_s,
            baseline.best_req_per_s * floor
        ));
    }
    if candidate.scaling < baseline.scaling * floor {
        failures.push(format!(
            "scaling regressed below {:.0}% of baseline ({:.1}x < {:.1}x)",
            floor * 100.0,
            candidate.scaling,
            baseline.scaling * floor
        ));
    }
    if candidate.overload.failed > 0 {
        failures.push(format!(
            "{} untyped failures past saturation (baseline had {})",
            candidate.overload.failed, baseline.overload.failed
        ));
    }
    if !candidate.metrics_valid {
        failures.push("candidate /metrics scrape did not validate".to_string());
    }

    if failures.is_empty() {
        println!("bench_gate: PASS");
    } else {
        for f in &failures {
            eprintln!("bench_gate: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
