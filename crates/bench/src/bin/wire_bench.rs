//! Wire-codec bench + gate (CI): drive the same wide-I/O, 256-cycle
//! workload over the JSON and binary codecs against the epoll server,
//! write `results/BENCH_wire.json`, and **fail** (exit 1) if the binary
//! codec does not beat JSON by `--min-ratio` or if either run sheds
//! anything untyped.
//!
//! ```text
//! wire_bench [--connections N] [--duration-ms N] [--min-ratio X] [--out PATH]
//! ```

use c2nn_bench::wire::run_wire;
use std::time::Duration;

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let connections: usize = flag(&args, "--connections", 8);
    let duration_ms: u64 = flag(&args, "--duration-ms", 2000);
    let min_ratio: f64 = flag(&args, "--min-ratio", 2.0);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_wire.json".to_string());

    eprintln!(
        "wire_bench: {connections} connections, {duration_ms}ms per codec, gate binary >= {min_ratio:.1}x json"
    );
    let report = run_wire(connections, Duration::from_millis(duration_ms));

    std::fs::create_dir_all("results").ok();
    std::fs::write(&out, c2nn_json::to_string_pretty(&report)).expect("write results");
    eprintln!("wrote {out}");

    let mut failed = false;
    eprintln!(
        "binary/json throughput ratio: {:.2}x (gate: >= {min_ratio:.1}x)",
        report.ratio
    );
    if report.ratio < min_ratio {
        eprintln!("FAIL: binary codec does not clear the gate");
        failed = true;
    }
    for row in [&report.json, &report.binary] {
        if row.failed > 0 {
            eprintln!(
                "FAIL: {} run had {} untyped failures",
                row.codec, row.failed
            );
            failed = true;
        }
        if row.ok == 0 {
            eprintln!("FAIL: {} run completed no requests", row.codec);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("wire gate OK");
}
