//! Bit-plane throughput gate (CI): race the bit-plane backend against the
//! pooled-CSR simulator on every suite circuit, write
//! `results/BENCH_bitplane.json`, and **fail** (exit 1) if the best
//! speedup falls below `--min-speedup` (default 10×) or popcount
//! fallbacks stop being rare (≥1% of a circuit's rows — cse coefficient
//! merging leaves a handful of weight-2 rows on the full DMA, which is
//! fine; a legalization regression is not).
//!
//! ```text
//! bitplane_throughput [--l N] [--batch N] [--budget-ms N] [--min-speedup X]
//! ```

use c2nn_bench::experiments::{bitplane_throughput, format_bitplane};
use std::time::Duration;

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let l: usize = flag(&args, "--l", 4);
    let batch: usize = flag(&args, "--batch", 4096);
    let budget_ms: u64 = flag(&args, "--budget-ms", 200);
    let min_speedup: f64 = flag(&args, "--min-speedup", 10.0);

    let rows = bitplane_throughput(l, batch, Duration::from_millis(budget_ms));
    print!("{}", format_bitplane(&rows));

    std::fs::create_dir_all("results").ok();
    let path = "results/BENCH_bitplane.json";
    std::fs::write(path, c2nn_json::to_string_pretty(&rows)).expect("write results");
    eprintln!("wrote {path}");

    let mut failed = false;
    for r in &rows {
        let total = r.gate_ops + r.weighted_ops;
        if r.weighted_ops * 100 >= total {
            eprintln!(
                "FAIL: {} needed {} popcount-fallback rows of {total} — legalization regressed",
                r.circuit, r.weighted_ops
            );
            failed = true;
        } else if r.weighted_ops > 0 {
            eprintln!(
                "note: {} has {} popcount-fallback rows of {total} (rare fallbacks are expected)",
                r.circuit, r.weighted_ops
            );
        }
    }
    let best = rows.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
    eprintln!("best speedup over pooled CSR: {best:.1}x (gate: >= {min_speedup:.1}x)");
    if best < min_speedup {
        eprintln!("FAIL: bit-plane backend must beat pooled CSR by {min_speedup:.1}x somewhere");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
