//! Wire-codec throughput experiment: the same wide-I/O workload served
//! over the JSON and binary codecs, on the epoll event loop, pinned to
//! the bit-plane backend.
//!
//! The workload is chosen so codec CPU dominates: a 64-in/64-out random
//! DAG driven for 256 cycles means every JSON request parses a 256-line
//! `.stim` text and renders 256 output strings, while every binary
//! request moves the same bits as length-prefixed bit-plane words that
//! flow socket → backend with no per-lane parsing. The ratio between the
//! two is the price of the text wire — the binary codec must clear
//! `--min-ratio` (CI gates at 2×) at this batch depth.

use c2nn_circuits::generators::random_dag;
use c2nn_core::{compile, CompileOptions};
use c2nn_hal::Choice;
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, IoModel, ServerConfig};
use c2nn_serve::{ArrivalMode, LoadgenConfig, RegistryConfig, WireFormat};
use std::time::Duration;

/// Primary inputs / outputs of the benchmark DAG (one plane word per
/// 64 cycles, so I/O is genuinely wide on both wires).
const WIDTH: usize = 256;

/// Internal gates of the benchmark DAG — kept shallow so the request's
/// cost is moving bits, not simulating gates (the wire is what's under
/// test; `serve_scale` covers compute-bound serving).
const GATES: usize = 32;

/// Stimulus cycles per request — the "batch ≥ 256" depth the binary
/// codec is gated at.
const CYCLES: usize = 256;

/// One codec's side of the comparison.
#[derive(Clone, Debug, Default)]
pub struct WireRow {
    /// Codec label (`"json"` / `"binary"`).
    pub codec: String,
    /// Requests sent in the window.
    pub sent: u64,
    /// Successful replies.
    pub ok: u64,
    /// Transport errors / garbled replies — must be zero.
    pub failed: u64,
    /// Successful replies per second.
    pub req_per_s: f64,
    /// Median latency, µs.
    pub p50_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
}

c2nn_json::json_struct!(WireRow {
    codec,
    sent,
    ok,
    failed,
    req_per_s,
    p50_us,
    p99_us
});

/// The full experiment result, as written to `results/BENCH_wire.json`.
#[derive(Clone, Debug, Default)]
pub struct WireReport {
    /// Primary inputs (= outputs) of the DAG.
    pub width: u64,
    /// Gates in the DAG.
    pub gates: u64,
    /// Stimulus cycles per request.
    pub cycles: u64,
    /// Concurrent closed-loop connections per codec run.
    pub connections: u64,
    /// Measurement window per codec, milliseconds.
    pub duration_ms: u64,
    /// The JSON-codec run.
    pub json: WireRow,
    /// The binary-codec run.
    pub binary: WireRow,
    /// `binary.req_per_s / json.req_per_s`.
    pub ratio: f64,
}

c2nn_json::json_struct!(WireReport {
    width,
    gates,
    cycles,
    connections,
    duration_ms,
    json,
    binary,
    ratio
});

/// Alternating 0/1 stimulus text: `CYCLES` lines of `WIDTH` bits with
/// every lane toggling, so packed planes are dense (no all-zero words for
/// the binary codec to luck into).
fn stim_text() -> String {
    let mut text = String::with_capacity(CYCLES * (WIDTH + 1));
    for c in 0..CYCLES {
        for i in 0..WIDTH {
            text.push(if (c + i) % 2 == 0 { '1' } else { '0' });
        }
        text.push('\n');
    }
    text
}

/// Run the two-codec comparison against a fresh in-process epoll server.
pub fn run_wire(connections: usize, duration: Duration) -> WireReport {
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        io: IoModel::EventLoop,
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 256,
                max_wait: Duration::from_millis(1),
                backend: Choice::Named("bitplane".to_string()),
            },
            max_inflight: 4096,
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start wire-bench server");
    let nl = random_dag(WIDTH, GATES, WIDTH, 0xB17_F1A6);
    let nn = compile(&nl, CompileOptions::with_l(4)).expect("compile DAG");
    server.registry().install("dag", nn).expect("install DAG");
    let addr = server.local_addr().to_string();
    let stim = stim_text();

    let run_one = |wire: WireFormat| -> WireRow {
        let report = c2nn_serve::loadgen::run(&LoadgenConfig {
            addr: addr.clone(),
            model: "dag".to_string(),
            stim: stim.clone(),
            connections,
            mode: ArrivalMode::ClosedTimed { duration },
            deadline_ms: None,
            max_retries: 4,
            seed: 7,
            wire,
        });
        eprintln!(
            "  {:>6}: {:>9.1} req/s  (p50 {}us, p99 {}us, {} ok / {} sent, {} failed)",
            wire.name(),
            report.req_per_s,
            report.p50_us,
            report.p99_us,
            report.ok,
            report.sent,
            report.failed
        );
        WireRow {
            codec: wire.name().to_string(),
            sent: report.sent,
            ok: report.ok,
            failed: report.failed,
            req_per_s: report.req_per_s,
            p50_us: report.p50_us,
            p99_us: report.p99_us,
        }
    };

    // JSON first, binary second; same server, same model, same stimulus
    let json = run_one(WireFormat::Json);
    let binary = run_one(WireFormat::Binary);

    server.shutdown();
    server.join();

    let ratio = binary.req_per_s / json.req_per_s.max(1e-9);
    WireReport {
        width: WIDTH as u64,
        gates: GATES as u64,
        cycles: CYCLES as u64,
        connections: connections as u64,
        duration_ms: duration.as_millis() as u64,
        json,
        binary,
        ratio,
    }
}
