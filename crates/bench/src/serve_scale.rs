//! Serving-scale experiment: how does request throughput grow with client
//! count under the event-loop server?
//!
//! The paper's thesis applied to serving: batch lanes are nearly free, so a
//! lone closed-loop client pays the full coalescing wait per request while
//! 64 concurrent clients amortize it across one forward pass — throughput
//! should scale roughly with the client count until the core saturates.
//! This module measures that curve end-to-end over real sockets (in-process
//! server, epoll event loop), probes behavior past saturation (every
//! rejection must be *typed* — a bench failure if anything comes back
//! garbled), and scrapes `/metrics` through the same HTTP path CI uses.

use c2nn_circuits::generators::counter;
use c2nn_core::{compile, CompileOptions};
use c2nn_hal::Choice;
use c2nn_serve::client::fetch_metrics;
use c2nn_serve::metrics::validate_exposition;
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, IoModel, ServerConfig};
use c2nn_serve::{ArrivalMode, LoadgenConfig, RegistryConfig, WireFormat};
use std::time::Duration;

/// Width of the benchmark counter circuit.
const WIDTH: usize = 8;

/// One point on the scaling curve: `clients` closed-loop connections
/// hammering the server for a fixed wall-clock window.
#[derive(Clone, Debug, Default)]
pub struct ScaleRow {
    /// Concurrent closed-loop connections.
    pub clients: u64,
    /// Requests sent in the window.
    pub sent: u64,
    /// Successful replies.
    pub ok: u64,
    /// Successful replies per second.
    pub req_per_s: f64,
    /// Median latency, µs.
    pub p50_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
}

c2nn_json::json_struct!(ScaleRow {
    clients,
    sent,
    ok,
    req_per_s,
    p50_us,
    p99_us
});

/// Outcome of the past-saturation probe: open-loop arrivals well beyond
/// capacity, where the contract is *typed* shedding, not garbled frames.
#[derive(Clone, Debug, Default)]
pub struct OverloadProbe {
    /// Open-loop target arrival rate, req/s.
    pub target_rate: f64,
    /// Requests sent.
    pub sent: u64,
    /// Successful replies.
    pub ok: u64,
    /// Typed `Overloaded` rejections.
    pub overloaded: u64,
    /// Typed `DeadlineExceeded` rejections.
    pub deadline_exceeded: u64,
    /// Typed `ShuttingDown` rejections.
    pub shutting_down: u64,
    /// Transport errors / garbled replies — must be zero.
    pub failed: u64,
}

c2nn_json::json_struct!(OverloadProbe {
    target_rate,
    sent,
    ok,
    overloaded,
    deadline_exceeded,
    shutting_down,
    failed,
});

/// The full experiment result, as written to `results/BENCH_serve_scale.json`.
#[derive(Clone, Debug, Default)]
pub struct ScaleReport {
    /// I/O model the server ran (`"EventLoop"` or `"Threaded"`).
    pub io: String,
    /// Coalescing window used, milliseconds.
    pub max_wait_ms: u64,
    /// Measurement window per client level, milliseconds.
    pub duration_ms: u64,
    /// The scaling curve.
    pub rows: Vec<ScaleRow>,
    /// Best throughput on the curve, req/s.
    pub best_req_per_s: f64,
    /// `best_req_per_s` over the single-client throughput.
    pub scaling: f64,
    /// Past-saturation probe.
    pub overload: OverloadProbe,
    /// Whether the `/metrics` scrape passed exposition validation.
    pub metrics_valid: bool,
}

c2nn_json::json_struct!(ScaleReport {
    io,
    max_wait_ms,
    duration_ms,
    rows,
    best_req_per_s,
    scaling,
    overload,
    metrics_valid,
});

/// Run the scaling sweep + overload probe + metrics scrape against a fresh
/// in-process server.
pub fn run_scale(
    levels: &[usize],
    duration: Duration,
    max_wait: Duration,
    io: IoModel,
) -> ScaleReport {
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        io,
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 256,
                max_wait,
                backend: Choice::Auto,
            },
            max_inflight: 4096,
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start scale server");
    let nn = compile(&counter(WIDTH), CompileOptions::with_l(4)).expect("compile model");
    server.registry().install("ctr", nn).expect("install model");
    let addr = server.local_addr().to_string();

    let mut rows = Vec::new();
    for &clients in levels {
        let report = c2nn_serve::loadgen::run(&LoadgenConfig {
            addr: addr.clone(),
            model: "ctr".to_string(),
            stim: "1 x4\n".to_string(),
            connections: clients,
            mode: ArrivalMode::ClosedTimed { duration },
            deadline_ms: None,
            max_retries: 4,
            seed: 42,
            wire: WireFormat::Json,
        });
        eprintln!(
            "  {clients:>4} clients: {:>9.1} req/s  (p50 {}us, p99 {}us, {} ok / {} sent)",
            report.req_per_s, report.p50_us, report.p99_us, report.ok, report.sent
        );
        rows.push(ScaleRow {
            clients: clients as u64,
            sent: report.sent,
            ok: report.ok,
            req_per_s: report.req_per_s,
            p50_us: report.p50_us,
            p99_us: report.p99_us,
        });
    }
    let base = rows.first().map(|r| r.req_per_s).unwrap_or(0.0).max(1e-9);
    let best = rows.iter().map(|r| r.req_per_s).fold(0.0f64, f64::max);

    // past saturation: an open-loop schedule against a server whose
    // admission budget is a fraction of the arrival rate, so most arrivals
    // *must* be rejected — the contract under test is that every rejection
    // is typed (`Overloaded`/`DeadlineExceeded`), never a garbled frame or
    // a dropped connection
    let budgeted = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        io,
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 4,
                max_wait,
                backend: Choice::Auto,
            },
            max_inflight: 8,
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start budgeted server");
    let nn = compile(&counter(WIDTH), CompileOptions::with_l(4)).expect("compile model");
    budgeted
        .registry()
        .install("ctr", nn)
        .expect("install model");
    let target_rate = (best * 1.5).max(100.0);
    let probe = c2nn_serve::loadgen::run(&LoadgenConfig {
        addr: budgeted.local_addr().to_string(),
        model: "ctr".to_string(),
        stim: "1 x4\n".to_string(),
        connections: levels.iter().copied().max().unwrap_or(64),
        mode: ArrivalMode::Open {
            rate: target_rate,
            duration,
        },
        deadline_ms: Some(100),
        max_retries: 0,
        seed: 43,
        wire: WireFormat::Json,
    });
    eprintln!(
        "  overload @ {target_rate:.0} req/s vs budget 8: {} ok, {} overloaded, {} deadline, {} failed",
        probe.ok, probe.overloaded, probe.deadline_exceeded, probe.failed
    );
    budgeted.shutdown();
    budgeted.join();

    let metrics_valid = match fetch_metrics(&addr) {
        Ok(body) => match validate_exposition(&body) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("  metrics validation failed: {e}");
                false
            }
        },
        Err(e) => {
            eprintln!("  metrics scrape failed: {e}");
            false
        }
    };

    server.shutdown();
    server.join();

    ScaleReport {
        io: format!("{:?}", io.resolve()),
        max_wait_ms: max_wait.as_millis() as u64,
        duration_ms: duration.as_millis() as u64,
        rows,
        best_req_per_s: best,
        scaling: best / base,
        overload: OverloadProbe {
            target_rate,
            sent: probe.sent,
            ok: probe.ok,
            overloaded: probe.overloaded,
            deadline_exceeded: probe.deadline_exceeded,
            shutting_down: probe.shutting_down,
            failed: probe.failed,
        },
        metrics_valid,
    }
}
