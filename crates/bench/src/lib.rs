//! # c2nn-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper (see DESIGN.md §4 for the experiment index):
//!
//! * [`experiments`] — one function per artifact: Table I, Figure 4,
//!   Figure 6, and the ablations (merging, sparse-vs-dense, batch sweep,
//!   f32-vs-i32);
//! * [`model`] — the analytic GPU device model standing in for the paper's
//!   GTX TITAN X (this machine has one CPU core; DESIGN.md §2 documents the
//!   substitution);
//! * [`harness`] — adaptive timing and the gates·cycles/s metric;
//! * [`serve_scale`] — the serving scaling curve (closed-loop client sweep,
//!   past-saturation probe, `/metrics` scrape) behind the `serve_scale`
//!   binary and its CI gate (`bench_gate`);
//! * [`wire`] — the JSON-vs-binary codec comparison behind the
//!   `wire_bench` binary and its CI gate (binary ≥ 2× JSON at 256-cycle
//!   batches).
//!
//! Entry point: `cargo run -p c2nn-bench --release --bin reproduce -- all`.

pub mod experiments;
pub mod harness;
pub mod model;
pub mod serve_scale;
pub mod wire;
