//! The experiment implementations behind the `reproduce` binary: one
//! function per paper table/figure plus the ablations (DESIGN.md §4).

use crate::harness::{sci, time_adaptive, time_once, Throughput};
use crate::model::DeviceModel;
use c2nn_boolfn::{lut_to_poly, lut_to_poly_dnf, Lut};
use c2nn_circuits::table1_suite;
use c2nn_core::{
    compile, compile_as, compile_with_report, CompileOptions, CompiledNn, IrMetrics, PassId,
    PassSet, Simulator,
};
use c2nn_json::json_obj;
use c2nn_refsim::CycleSim;
use c2nn_tensor::{Dense, Device};
use std::time::Duration;

/// One Table I row (per circuit × L).
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub circuit: String,
    pub gates: usize,
    pub refsim_gcs: f64,
    pub l: usize,
    pub generation_s: f64,
    pub memory_mb: f64,
    pub connections_m: f64,
    pub layers: usize,
    pub mean_sparsity: f64,
    /// measured on this machine's single core, batched serial kernels
    pub nn_measured_gcs: f64,
    pub nn_measured_speedup: f64,
    /// modeled GPU throughput (see `DeviceModel`)
    pub nn_modeled_gcs: f64,
    pub nn_modeled_speedup: f64,
}
json_obj!(Table1Row {
    circuit,
    gates,
    refsim_gcs,
    l,
    generation_s,
    memory_mb,
    connections_m,
    layers,
    mean_sparsity,
    nn_measured_gcs,
    nn_measured_speedup,
    nn_modeled_gcs,
    nn_modeled_speedup
});

/// Measure the reference (Verilator-substitute) throughput of a netlist.
pub fn refsim_throughput(nl: &c2nn_netlist::Netlist, budget: Duration) -> Throughput {
    let mut sim = CycleSim::new(nl).expect("refsim build");
    let stim = vec![false; sim.num_inputs()];
    // batch the timing into chunks of cycles
    let chunk = 64u64;
    let secs = time_adaptive(budget, 3, || {
        for _ in 0..chunk {
            sim.step(&stim);
        }
    });
    Throughput {
        gates: sim.gate_count(),
        cycles: chunk as f64,
        seconds: secs,
    }
}

/// Measure the NN's *single-core* batched throughput.
pub fn nn_measured_throughput(nn: &CompiledNn<f32>, batch: usize, budget: Duration) -> Throughput {
    let mut sim = Simulator::new(nn, batch, Device::Serial);
    let x = Dense::<f32>::zeros(nn.num_primary_inputs, batch);
    let secs = time_adaptive(budget, 2, || {
        sim.step(&x);
    });
    Throughput {
        gates: nn.gate_count,
        cycles: batch as f64,
        seconds: secs,
    }
}

/// Reproduce Table I.
pub fn table1(ls: &[usize], batch: usize, budget: Duration) -> Vec<Table1Row> {
    let gpu = DeviceModel::titan_x();
    let mut rows = Vec::new();
    for bench in table1_suite() {
        let nl = (bench.build)();
        let reft = refsim_throughput(&nl, budget);
        eprintln!(
            "[table1] {}: {} gates, refsim {} g*c/s",
            bench.name,
            nl.gate_count(),
            sci(reft.gcs())
        );
        for &l in ls {
            let mut nn_opt = None;
            let generation_s = time_once(|| {
                nn_opt = Some(compile(&nl, CompileOptions::with_l(l)).expect("compile"));
            });
            let nn = nn_opt.unwrap();
            let meas = nn_measured_throughput(&nn, batch, budget);
            let modeled = gpu.throughput(&nn, 1024);
            eprintln!(
                "[table1]   L={l}: gen {:.1}s, {} layers, {} conns, measured {} modeled {}",
                generation_s,
                nn.num_layers(),
                nn.connections(),
                sci(meas.gcs()),
                sci(modeled)
            );
            rows.push(Table1Row {
                circuit: bench.name.to_string(),
                gates: nl.gate_count(),
                refsim_gcs: reft.gcs(),
                l,
                generation_s,
                memory_mb: nn.memory_bytes() as f64 / 1e6,
                connections_m: nn.connections() as f64 / 1e6,
                layers: nn.num_layers(),
                mean_sparsity: nn.mean_sparsity(),
                nn_measured_gcs: meas.gcs(),
                nn_measured_speedup: meas.gcs() / reft.gcs(),
                nn_modeled_gcs: modeled,
                nn_modeled_speedup: modeled / reft.gcs(),
            });
        }
    }
    rows
}

/// Render Table I like the paper (plus the measured/modeled distinction).
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<17} {:>7} {:>9} | {:>2} {:>8} {:>8} {:>8} {:>6} {:>8} | {:>9} {:>7} | {:>9} {:>8}\n",
        "Circuit",
        "Gates",
        "RefSim",
        "L",
        "Gen(s)",
        "Mem(MB)",
        "Conns(M)",
        "Layers",
        "Sparsity",
        "Meas g*c/s",
        "Spd-up",
        "Model g*c/s",
        "Spd-up"
    ));
    s.push_str(&"-".repeat(132));
    s.push('\n');
    let mut last = "";
    for r in rows {
        let (name, gates, refsim) = if r.circuit != last {
            last = &r.circuit;
            (
                r.circuit.as_str(),
                format!("{}", r.gates),
                sci(r.refsim_gcs),
            )
        } else {
            ("", String::new(), String::new())
        };
        s.push_str(&format!(
            "{:<17} {:>7} {:>9} | {:>2} {:>8.2} {:>8.2} {:>8.3} {:>6} {:>8.5} | {:>9} {:>7.1} | {:>9} {:>8.1}\n",
            name,
            gates,
            refsim,
            r.l,
            r.generation_s,
            r.memory_mb,
            r.connections_m,
            r.layers,
            r.mean_sparsity,
            sci(r.nn_measured_gcs),
            r.nn_measured_speedup,
            sci(r.nn_modeled_gcs),
            r.nn_modeled_speedup,
        ));
    }
    s
}

/// One Figure 4 point.
#[derive(Clone, Debug)]
pub struct Fig4Point {
    pub l: usize,
    pub dnf_s: Option<f64>,
    pub dc_s: f64,
}
json_obj!(Fig4Point { l, dnf_s, dc_s });

/// Reproduce Figure 4: polynomial generation time, DNF vs Algorithm 1.
pub fn fig4(max_l_dc: usize, max_l_dnf: usize, budget: Duration) -> Vec<Fig4Point> {
    let mut seed = 0x5deece66du64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut pts = Vec::new();
    for l in 2..=max_l_dc {
        let lut = Lut::random(l as u8, &mut rng);
        let dc_s = time_adaptive(budget, 3, || {
            std::hint::black_box(lut_to_poly(&lut));
        });
        let dnf_s = if l <= max_l_dnf {
            Some(time_adaptive(budget, 1, || {
                std::hint::black_box(lut_to_poly_dnf(&lut));
            }))
        } else {
            None
        };
        eprintln!(
            "[fig4] L={l}: D&C {}s DNF {}",
            sci(dc_s),
            dnf_s.map(sci).unwrap_or_else(|| "—".into())
        );
        pts.push(Fig4Point { l, dnf_s, dc_s });
    }
    pts
}

pub fn format_fig4(pts: &[Fig4Point]) -> String {
    let mut s = String::from("  L   D&C (Alg.1)      DNF baseline\n");
    for p in pts {
        s.push_str(&format!(
            " {:>2}   {:>12}    {:>12}\n",
            p.l,
            sci(p.dc_s),
            p.dnf_s.map(sci).unwrap_or_else(|| "(skipped)".into())
        ));
    }
    s
}

/// One Figure 6 point: UART compiled at a given L.
#[derive(Clone, Debug)]
pub struct Fig6Point {
    pub l: usize,
    pub layers: usize,
    pub connections: usize,
    /// measured serial single-stimulus forward time (the paper's CPU curve)
    pub cpu_s: f64,
    /// modeled parallel single-stimulus forward time (the paper's GPU curve)
    pub gpu_modeled_s: f64,
}
json_obj!(Fig6Point {
    l,
    layers,
    connections,
    cpu_s,
    gpu_modeled_s
});

/// Reproduce Figure 6 on the UART circuit.
pub fn fig6(ls: &[usize], budget: Duration) -> Vec<Fig6Point> {
    let nl = c2nn_circuits::uart();
    let gpu = DeviceModel::titan_x();
    let mut pts = Vec::new();
    for &l in ls {
        let nn = compile(&nl, CompileOptions::with_l(l)).expect("compile uart");
        let mut sim = Simulator::new(&nn, 1, Device::Serial);
        let x = Dense::<f32>::zeros(nn.num_primary_inputs, 1);
        let cpu_s = time_adaptive(budget, 3, || {
            sim.step(&x);
        });
        let gpu_modeled_s = gpu.cycle_seconds(&nn, 1);
        eprintln!(
            "[fig6] L={l}: layers={} conns={} cpu={} gpu(model)={}",
            nn.num_layers(),
            nn.connections(),
            sci(cpu_s),
            sci(gpu_modeled_s)
        );
        pts.push(Fig6Point {
            l,
            layers: nn.num_layers(),
            connections: nn.connections(),
            cpu_s,
            gpu_modeled_s,
        });
    }
    pts
}

pub fn format_fig6(pts: &[Fig6Point]) -> String {
    let mut s = String::from("  L  Layers  Connections   CPU time (meas.)   GPU time (modeled)\n");
    for p in pts {
        s.push_str(&format!(
            " {:>2}  {:>6}  {:>11}   {:>16}   {:>18}\n",
            p.l,
            p.layers,
            p.connections,
            sci(p.cpu_s),
            sci(p.gpu_modeled_s)
        ));
    }
    s.push_str("\nGPU-modeled time tracks layers (log scale):\n");
    let rows: Vec<(String, f64)> = pts
        .iter()
        .map(|p| {
            (
                format!("L={:<2} ({} layers)", p.l, p.layers),
                p.gpu_modeled_s,
            )
        })
        .collect();
    s.push_str(&crate::harness::log_bars(&rows, 48));
    s.push_str("\nCPU-measured time tracks connections (log scale):\n");
    let rows: Vec<(String, f64)> = pts
        .iter()
        .map(|p| (format!("L={:<2} ({} conns)", p.l, p.connections), p.cpu_s))
        .collect();
    s.push_str(&crate::harness::log_bars(&rows, 48));
    s
}

/// Ablation A1: layer merging on/off (Fig. 5 claim).
#[derive(Clone, Debug)]
pub struct MergeAblationRow {
    pub l: usize,
    pub layers_merged: usize,
    pub layers_unmerged: usize,
    pub cpu_merged_s: f64,
    pub cpu_unmerged_s: f64,
    pub gpu_modeled_merged_s: f64,
    pub gpu_modeled_unmerged_s: f64,
}
json_obj!(MergeAblationRow {
    l,
    layers_merged,
    layers_unmerged,
    cpu_merged_s,
    cpu_unmerged_s,
    gpu_modeled_merged_s,
    gpu_modeled_unmerged_s
});

pub fn ablate_merge(ls: &[usize], budget: Duration) -> Vec<MergeAblationRow> {
    let nl = c2nn_circuits::uart();
    let gpu = DeviceModel::titan_x();
    let mut rows = Vec::new();
    for &l in ls {
        let opts = CompileOptions::with_l(l);
        let merged = compile(&nl, opts).unwrap();
        let unmerged = compile(
            &nl,
            opts.with_passes(PassSet::all().without(PassId::LayerMerge)),
        )
        .unwrap();
        let t = |nn: &CompiledNn<f32>| {
            let mut sim = Simulator::new(nn, 64, Device::Serial);
            let x = Dense::<f32>::zeros(nn.num_primary_inputs, 64);
            time_adaptive(budget, 3, || {
                sim.step(&x);
            })
        };
        rows.push(MergeAblationRow {
            l,
            layers_merged: merged.num_layers(),
            layers_unmerged: unmerged.num_layers(),
            cpu_merged_s: t(&merged),
            cpu_unmerged_s: t(&unmerged),
            gpu_modeled_merged_s: gpu.cycle_seconds(&merged, 1),
            gpu_modeled_unmerged_s: gpu.cycle_seconds(&unmerged, 1),
        });
    }
    rows
}

/// Ablation A3: throughput vs batch size (stimulus parallelism).
#[derive(Clone, Debug)]
pub struct BatchSweepPoint {
    pub batch: usize,
    pub measured_gcs: f64,
    pub modeled_gcs: f64,
}
json_obj!(BatchSweepPoint {
    batch,
    measured_gcs,
    modeled_gcs
});

pub fn batch_sweep(l: usize, batches: &[usize], budget: Duration) -> Vec<BatchSweepPoint> {
    let nl = c2nn_circuits::aes128();
    let nn = compile(&nl, CompileOptions::with_l(l)).unwrap();
    let gpu = DeviceModel::titan_x();
    batches
        .iter()
        .map(|&batch| {
            let meas = nn_measured_throughput(&nn, batch, budget);
            let p = BatchSweepPoint {
                batch,
                measured_gcs: meas.gcs(),
                modeled_gcs: gpu.throughput(&nn, batch),
            };
            eprintln!(
                "[batch-sweep] B={batch}: measured {} modeled {}",
                sci(p.measured_gcs),
                sci(p.modeled_gcs)
            );
            p
        })
        .collect()
}

/// Ablation A4: f32 vs i32 kernels (paper §V future work).
#[derive(Clone, Debug)]
pub struct DtypeRow {
    pub l: usize,
    pub f32_s: f64,
    pub i32_s: f64,
}
json_obj!(DtypeRow { l, f32_s, i32_s });

pub fn ablate_dtype(ls: &[usize], batch: usize, budget: Duration) -> Vec<DtypeRow> {
    let nl = c2nn_circuits::uart();
    ls.iter()
        .map(|&l| {
            let nf = compile(&nl, CompileOptions::with_l(l)).unwrap();
            let ni = compile_as::<i32>(&nl, CompileOptions::with_l(l)).unwrap();
            let mut sf = Simulator::new(&nf, batch, Device::Serial);
            let xf = Dense::<f32>::zeros(nf.num_primary_inputs, batch);
            let f32_s = time_adaptive(budget, 3, || {
                sf.step(&xf);
            });
            let mut si = Simulator::new(&ni, batch, Device::Serial);
            let xi = Dense::<i32>::zeros(ni.num_primary_inputs, batch);
            let i32_s = time_adaptive(budget, 3, || {
                si.step(&xi);
            });
            eprintln!("[dtype] L={l}: f32 {} i32 {}", sci(f32_s), sci(i32_s));
            DtypeRow { l, f32_s, i32_s }
        })
        .collect()
}

/// Ablation A2: sparse vs dense execution of one compiled layer set.
#[derive(Clone, Debug)]
pub struct SparseAblationRow {
    pub l: usize,
    pub sparsity: f64,
    pub sparse_s: f64,
    pub dense_s: f64,
}
json_obj!(SparseAblationRow {
    l,
    sparsity,
    sparse_s,
    dense_s
});

pub fn ablate_sparse(ls: &[usize], batch: usize, budget: Duration) -> Vec<SparseAblationRow> {
    use c2nn_tensor::{forward_dense, forward_sparse, Activation};
    let nl = c2nn_circuits::uart();
    ls.iter()
        .map(|&l| {
            let nn = compile(&nl, CompileOptions::with_l(l)).unwrap();
            // pick the widest layer
            let layer = nn.layers.iter().max_by_key(|ly| ly.weights.nnz()).unwrap();
            let x = Dense::<f32>::zeros(layer.in_width(), batch);
            let sparse_s = time_adaptive(budget, 3, || {
                std::hint::black_box(forward_sparse(
                    &layer.weights,
                    &layer.bias,
                    &x,
                    Activation::Threshold,
                    Device::Serial,
                ));
            });
            // densify
            let d = layer.weights.to_dense();
            let wd = Dense::from_vec(layer.out_width(), layer.in_width(), d);
            let dense_s = time_adaptive(budget, 1, || {
                std::hint::black_box(forward_dense(
                    &wd,
                    &layer.bias,
                    &x,
                    Activation::Threshold,
                    Device::Serial,
                ));
            });
            eprintln!(
                "[sparse] L={l}: sparsity {:.5} sparse {} dense {}",
                layer.weights.sparsity(),
                sci(sparse_s),
                sci(dense_s)
            );
            SparseAblationRow {
                l,
                sparsity: layer.weights.sparsity(),
                sparse_s,
                dense_s,
            }
        })
        .collect()
}

/// Ablation A5 (paper §V future work): the known-function shortcut for
/// wide gates, measured on reduction-tree circuits.
#[derive(Clone, Debug)]
pub struct WideGateRow {
    pub width: usize,
    pub layers_tree: usize,
    pub layers_wide: usize,
    pub conns_tree: usize,
    pub conns_wide: usize,
    pub gpu_modeled_tree_s: f64,
    pub gpu_modeled_wide_s: f64,
}
json_obj!(WideGateRow {
    width,
    layers_tree,
    layers_wide,
    conns_tree,
    conns_wide,
    gpu_modeled_tree_s,
    gpu_modeled_wide_s
});

pub fn ablate_wide(widths: &[usize]) -> Vec<WideGateRow> {
    use c2nn_netlist::NetlistBuilder;
    let gpu = DeviceModel::titan_x();
    widths
        .iter()
        .map(|&w| {
            let mut b = NetlistBuilder::new(format!("and{w}"));
            let x = b.input_word("x", w);
            let all = b.and_many(&x);
            let any = b.or_many(&x);
            let y = b.xor2(all, any);
            b.output(y, "y");
            let nl = b.finish().unwrap();
            let tree = compile(&nl, CompileOptions::with_l(3)).unwrap();
            let wide = compile(&nl, CompileOptions::with_l(3).with_wide_gates()).unwrap();
            let row = WideGateRow {
                width: w,
                layers_tree: tree.num_layers(),
                layers_wide: wide.num_layers(),
                conns_tree: tree.connections(),
                conns_wide: wide.connections(),
                gpu_modeled_tree_s: gpu.cycle_seconds(&tree, 1),
                gpu_modeled_wide_s: gpu.cycle_seconds(&wide, 1),
            };
            eprintln!(
                "[wide] n={w}: layers {}→{} conns {}→{}",
                row.layers_tree, row.layers_wide, row.conns_tree, row.conns_wide
            );
            row
        })
        .collect()
}

/// One compile-stats row: a suite circuit compiled with only the legacy
/// layer merge (`baseline`) vs the full pass pipeline (`optimized`), plus
/// the per-pass nonzero reductions (positive = nnz removed).
#[derive(Clone, Debug)]
pub struct CompilePassRow {
    pub circuit: String,
    pub l: usize,
    pub gates: usize,
    pub baseline: IrMetrics,
    pub optimized: IrMetrics,
    pub fold_nnz_removed: i64,
    pub cse_nnz_removed: i64,
    pub dce_nnz_removed: i64,
    /// May be negative: the Fig. 5 merge trades nonzeros for depth.
    pub merge_nnz_removed: i64,
    pub compile_s: f64,
}
json_obj!(CompilePassRow {
    circuit,
    l,
    gates,
    baseline,
    optimized,
    fold_nnz_removed,
    cse_nnz_removed,
    dce_nnz_removed,
    merge_nnz_removed,
    compile_s
});

/// Compile every suite circuit with and without the cross-LUT optimization
/// passes, recording per-pass size deltas (the `BENCH_compile_passes.json`
/// artifact and its CI gate).
pub fn compile_passes(l: usize) -> Vec<CompilePassRow> {
    let merge_only = PassSet::none().with(PassId::LayerMerge);
    let mut rows = Vec::new();
    for bench in table1_suite() {
        let nl = (bench.build)();
        let (base_nn, _) =
            compile_with_report::<f32>(&nl, CompileOptions::with_l(l).with_passes(merge_only))
                .expect("baseline compile");
        let (opt_nn, report) =
            compile_with_report::<f32>(&nl, CompileOptions::with_l(l)).expect("compile");
        let delta = |pass: &str| report.stat(pass).map(|p| p.nnz_delta()).unwrap_or(0);
        let metrics = |nn: &CompiledNn<f32>| IrMetrics {
            layers: nn.num_layers(),
            neurons: nn.layers.iter().map(|ly| ly.out_width()).sum(),
            nnz: nn.connections(),
        };
        let row = CompilePassRow {
            circuit: bench.name.to_string(),
            l,
            gates: nl.gate_count(),
            baseline: metrics(&base_nn),
            optimized: metrics(&opt_nn),
            fold_nnz_removed: delta("constant-fold"),
            cse_nnz_removed: delta("monomial-cse"),
            dce_nnz_removed: delta("dead-neuron-elim"),
            merge_nnz_removed: delta("layer-merge"),
            compile_s: report.total_s,
        };
        eprintln!(
            "[compile-passes] {}: nnz {} → {} (fold {} cse {} dce {} merge {})",
            bench.name,
            row.baseline.nnz,
            row.optimized.nnz,
            row.fold_nnz_removed,
            row.cse_nnz_removed,
            row.dce_nnz_removed,
            row.merge_nnz_removed,
        );
        rows.push(row);
    }
    rows
}

pub fn format_compile_passes(rows: &[CompilePassRow]) -> String {
    let mut s = format!(
        "{:<17} {:>2} {:>9} | {:>7} {:>10} | {:>7} {:>10} | {:>8} {:>8} {:>8} {:>9}\n",
        "Circuit",
        "L",
        "Gates",
        "Layers",
        "nnz(base)",
        "Layers",
        "nnz(opt)",
        "Δfold",
        "Δcse",
        "Δdce",
        "Δmerge"
    );
    s.push_str(&"-".repeat(118));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<17} {:>2} {:>9} | {:>7} {:>10} | {:>7} {:>10} | {:>8} {:>8} {:>8} {:>9}\n",
            r.circuit,
            r.l,
            r.gates,
            r.baseline.layers,
            r.baseline.nnz,
            r.optimized.layers,
            r.optimized.nnz,
            -r.fold_nnz_removed,
            -r.cse_nnz_removed,
            -r.dce_nnz_removed,
            -r.merge_nnz_removed,
        ));
    }
    s
}

/// One circuit's pooled-CSR vs bit-plane throughput comparison (the
/// `BENCH_bitplane.json` artifact and its ≥10× CI gate).
#[derive(Clone, Debug)]
pub struct BitplaneRow {
    pub circuit: String,
    pub l: usize,
    pub gates: usize,
    pub batch: usize,
    /// pooled-CSR simulator on `Device::Parallel`, gates·cycles/s
    pub csr_gcs: f64,
    /// bit-plane backend on `Device::Parallel`, gates·cycles/s
    pub bitplane_gcs: f64,
    pub speedup: f64,
    /// bit-plane plan shape: layer count and op mix
    pub plan_layers: usize,
    pub gate_ops: usize,
    /// popcount-fallback rows — 0 whenever the unmerged pipeline legalizes
    pub weighted_ops: usize,
}
json_obj!(BitplaneRow {
    circuit,
    l,
    gates,
    batch,
    csr_gcs,
    bitplane_gcs,
    speedup,
    plan_layers,
    gate_ops,
    weighted_ops
});

/// Race the bit-plane backend against the pooled-CSR path on every suite
/// circuit: same compile pipeline L, same batch width, both on the global
/// thread pool, zero stimulus (throughput is data-independent — every lane
/// runs every op).
pub fn bitplane_throughput(l: usize, batch: usize, budget: Duration) -> Vec<BitplaneRow> {
    use c2nn_core::{compile_bitplane, BitTensor, BitplaneSimulator};
    let mut rows = Vec::new();
    for bench in table1_suite() {
        let nl = (bench.build)();
        let nn = compile(&nl, CompileOptions::with_l(l)).expect("compile");
        let mut csr_sim = Simulator::new(&nn, batch, Device::Parallel);
        let x = Dense::<f32>::zeros(nn.num_primary_inputs, batch);
        let csr_secs = time_adaptive(budget, 2, || {
            csr_sim.step(&x);
        });
        let csr = Throughput {
            gates: nn.gate_count,
            cycles: batch as f64,
            seconds: csr_secs,
        };

        let (_, plan) = compile_bitplane(&nl, CompileOptions::with_l(l)).expect("legalize");
        let census = plan.op_census();
        let mut bp_sim = BitplaneSimulator::new(&plan, batch, Device::Parallel);
        let packed = BitTensor::zeros(plan.num_primary_inputs, batch);
        let mut out = BitTensor::zeros(0, 0);
        let bp_secs = time_adaptive(budget, 2, || {
            bp_sim.step_packed_into(&packed, &mut out).expect("step");
        });
        let bp = Throughput {
            gates: nn.gate_count,
            cycles: batch as f64,
            seconds: bp_secs,
        };

        let row = BitplaneRow {
            circuit: bench.name.to_string(),
            l,
            gates: nl.gate_count(),
            batch,
            csr_gcs: csr.gcs(),
            bitplane_gcs: bp.gcs(),
            speedup: bp.gcs() / csr.gcs(),
            plan_layers: plan.num_layers(),
            gate_ops: census.total() - census.weighted,
            weighted_ops: census.weighted,
        };
        eprintln!(
            "[bitplane] {}: csr {} bitplane {} g*c/s — {:.1}x ({} gate ops, {} weighted)",
            bench.name,
            sci(row.csr_gcs),
            sci(row.bitplane_gcs),
            row.speedup,
            row.gate_ops,
            row.weighted_ops,
        );
        rows.push(row);
    }
    rows
}

pub fn format_bitplane(rows: &[BitplaneRow]) -> String {
    let mut s = format!(
        "{:<17} {:>2} {:>9} {:>6} | {:>10} {:>10} {:>8} | {:>6} {:>8} {:>8}\n",
        "Circuit",
        "L",
        "Gates",
        "Batch",
        "csr g*c/s",
        "bp g*c/s",
        "speedup",
        "layers",
        "gate-ops",
        "weighted"
    );
    s.push_str(&"-".repeat(100));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<17} {:>2} {:>9} {:>6} | {:>10} {:>10} {:>7.1}x | {:>6} {:>8} {:>8}\n",
            r.circuit,
            r.l,
            r.gates,
            r.batch,
            sci(r.csr_gcs),
            sci(r.bitplane_gcs),
            r.speedup,
            r.plan_layers,
            r.gate_ops,
            r.weighted_ops,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_points_monotone_ish() {
        // Expected DNF cost on random tables is Θ(3^L) vs Θ(2^L·L) for
        // Algorithm 1, so the separation is only unambiguous for larger L.
        let pts = fig4(12, 12, Duration::from_millis(5));
        let p = pts.iter().find(|p| p.l == 12).unwrap();
        assert!(
            p.dnf_s.unwrap() > 2.0 * p.dc_s,
            "DNF ({:?}) should clearly trail Algorithm 1 ({}) at L=12",
            p.dnf_s,
            p.dc_s
        );
    }

    #[test]
    fn refsim_throughput_positive() {
        let nl = c2nn_circuits::generators::counter(8);
        let t = refsim_throughput(&nl, Duration::from_millis(5));
        assert!(t.gcs() > 0.0);
    }

    #[test]
    fn table1_row_formatting() {
        let rows = vec![Table1Row {
            circuit: "AES".into(),
            gates: 9826,
            refsim_gcs: 1.4e8,
            l: 3,
            generation_s: 0.05,
            memory_mb: 1.2,
            connections_m: 0.11,
            layers: 13,
            mean_sparsity: 0.998,
            nn_measured_gcs: 2.5e8,
            nn_measured_speedup: 1.7,
            nn_modeled_gcs: 2.0e10,
            nn_modeled_speedup: 140.0,
        }];
        let s = format_table1(&rows);
        assert!(s.contains("AES"));
        assert!(s.contains("1.40E+08"));
    }
}
