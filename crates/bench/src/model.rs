//! Analytic device model for the GPU we do not have (DESIGN.md §2).
//!
//! The model itself now lives in `c2nn-hal` ([`c2nn_hal::DeviceModel`]),
//! where it doubles as the analytic half of the live backend cost model:
//! the same two-term `layers × t_launch + work / rate` shape prices both
//! the paper's modeled TITAN X and the calibrated host backends. This
//! module re-exports it so bench experiment code keeps its historical
//! import path.

pub use c2nn_hal::DeviceModel;
