//! Analytic device model for the GPU we do not have (DESIGN.md §2).
//!
//! The paper ran its networks on a GeForce GTX TITAN X through PyTorch.
//! This reproduction runs on a single CPU core, so absolute GPU wall-clock
//! cannot be measured; instead it is *modeled* with the standard two-term
//! kernel model the paper itself appeals to in §IV-B:
//!
//! ```text
//! t_cycle(batch) = layers × t_launch  +  MACs(batch) / rate_effective
//! ```
//!
//! * `layers × t_launch` — every NN layer is one kernel launch; at batch 1
//!   this term dominates, making GPU time proportional to the number of
//!   layers — exactly the correlation the paper measures in Figure 6 (top).
//! * `MACs / rate` — the compute term: one multiply-accumulate per nonzero
//!   weight per testbench. For large batches this dominates and throughput
//!   saturates at the device's effective sparse-kernel rate.
//!
//! The default parameters approximate the TITAN X running cuSPARSE on
//! ≳99.9 %-sparse operands: 6.1 TFLOP/s peak fp32, of which sparse SpMM
//! sustains ~10 % (Gale et al., SC'20, the paper's [36]), and ~5 µs per
//! kernel launch. Every number is a plain struct field: EXPERIMENTS.md
//! reports the parameters next to every modeled figure, and the
//! `measured`-vs-`modeled` distinction is kept everywhere.

use c2nn_core::CompiledNn;
use c2nn_tensor::Scalar;
use c2nn_json::json_obj;

/// A simple launch-latency + throughput device model.
#[derive(Clone, Copy, Debug)]
pub struct DeviceModel {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Effective sustained rate in multiply-accumulates per second.
    pub mac_per_s: f64,
    /// Fixed cost per layer (kernel launch + sync), seconds.
    pub launch_s: f64,
}
json_obj!(DeviceModel { name, mac_per_s, launch_s });

impl DeviceModel {
    /// GTX TITAN X (Maxwell) analogue: 6.1 TFLOP/s ≈ 3.05e12 MAC/s peak,
    /// ×10 % sparse efficiency, 5 µs launches.
    pub fn titan_x() -> Self {
        DeviceModel {
            name: "modeled GTX TITAN X (10% sparse eff.)",
            mac_per_s: 3.05e11,
            launch_s: 5e-6,
        }
    }

    /// A deliberately modest "small GPU" for sensitivity checks.
    pub fn small_gpu() -> Self {
        DeviceModel {
            name: "modeled small GPU (1e10 MAC/s)",
            mac_per_s: 1e10,
            launch_s: 5e-6,
        }
    }

    /// Modeled seconds for one batched forward pass (one simulated cycle
    /// for the whole batch).
    pub fn cycle_seconds<T: Scalar>(&self, nn: &CompiledNn<T>, batch: usize) -> f64 {
        let macs = nn.connections() as f64 * batch as f64;
        nn.num_layers() as f64 * self.launch_s + macs / self.mac_per_s
    }

    /// Modeled throughput in gates·cycles/s at the given batch size.
    pub fn throughput<T: Scalar>(&self, nn: &CompiledNn<T>, batch: usize) -> f64 {
        let t = self.cycle_seconds(nn, batch);
        nn.gate_count as f64 * batch as f64 / t
    }

    /// Batch size at which the compute term overtakes launch latency
    /// (the knee of the throughput curve).
    pub fn saturation_batch<T: Scalar>(&self, nn: &CompiledNn<T>) -> f64 {
        let launch = nn.num_layers() as f64 * self.launch_s;
        launch * self.mac_per_s / nn.connections() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_core::{compile, CompileOptions};
    use c2nn_netlist::{NetlistBuilder, WordOps};

    fn nn() -> CompiledNn<f32> {
        let mut b = NetlistBuilder::new("a");
        let x = b.input_word("a", 8);
        let y = b.input_word("b", 8);
        let s = b.add_word(&x, &y);
        b.output_word(&s, "s");
        compile(&b.finish().unwrap(), CompileOptions::with_l(4)).unwrap()
    }

    #[test]
    fn launch_latency_dominates_single_stimulus() {
        let nn = nn();
        let m = DeviceModel::titan_x();
        let t1 = m.cycle_seconds(&nn, 1);
        let launch = nn.num_layers() as f64 * m.launch_s;
        assert!(
            (t1 - launch) / t1 < 0.05,
            "batch-1 time should be ≥95% launch latency: {t1} vs {launch}"
        );
    }

    #[test]
    fn throughput_grows_then_saturates() {
        let nn = nn();
        let m = DeviceModel::titan_x();
        let t_small = m.throughput(&nn, 1);
        let t_big = m.throughput(&nn, 1 << 20);
        assert!(t_big > 10.0 * t_small);
        // beyond saturation, throughput stops improving much
        let t_bigger = m.throughput(&nn, 1 << 24);
        assert!(t_bigger < t_big * 2.0);
    }

    #[test]
    fn saturation_batch_is_finite_positive() {
        let nn = nn();
        let m = DeviceModel::titan_x();
        let b = m.saturation_batch(&nn);
        assert!(b > 0.0 && b.is_finite());
    }
}
