//! Constant-expression evaluation for parameters, ranges, literal widths and
//! case labels.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use std::collections::HashMap;

/// Evaluate `e` to an integer if every leaf is a literal or a parameter in
/// `params`. Returns `None` for anything referencing signals.
pub fn eval_const(e: &Expr, params: &HashMap<String, i64>) -> Option<i64> {
    // Sized (< 32-bit) expressions wrap at their self-determined width, as
    // in Verilog constant arithmetic; 32-bit-and-up values stay as signed
    // integers so parameter arithmetic (ranges, counts) keeps its sign.
    let mask = |v: i64| -> i64 {
        let w = const_width(e);
        if w < 32 {
            v & ((1i64 << w) - 1)
        } else {
            v
        }
    };
    Some(mask(match e {
        Expr::Number { value, .. } => *value as i64,
        Expr::Ident(name) => *params.get(name)?,
        Expr::Unary(op, a) => {
            let a = eval_const(a, params)?;
            match op {
                // wrapping: `-(i64::MIN)` must not abort the compiler
                UnaryOp::Neg => a.wrapping_neg(),
                UnaryOp::Not => !a,
                UnaryOp::LogicNot => (a == 0) as i64,
                UnaryOp::ReduceOr => (a != 0) as i64,
                UnaryOp::ReduceXor => (a.count_ones() % 2) as i64,
                UnaryOp::ReduceAnd => return None, // width-dependent
            }
        }
        Expr::Binary(op, a, b) => {
            let a = eval_const(a, params)?;
            let b = eval_const(b, params)?;
            match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                // wrapping: `i64::MIN / -1` must not abort the compiler
                BinaryOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinaryOp::Shl => a.checked_shl(b as u32)?,
                BinaryOp::Shr => ((a as u64) >> (b as u32).min(63)) as i64,
                BinaryOp::And => a & b,
                BinaryOp::Or => a | b,
                BinaryOp::Xor => a ^ b,
                BinaryOp::Xnor => !(a ^ b),
                BinaryOp::LogicAnd => (a != 0 && b != 0) as i64,
                BinaryOp::LogicOr => (a != 0 || b != 0) as i64,
                BinaryOp::Eq => (a == b) as i64,
                BinaryOp::Ne => (a != b) as i64,
                BinaryOp::Lt => (a < b) as i64,
                BinaryOp::Le => (a <= b) as i64,
                BinaryOp::Gt => (a > b) as i64,
                BinaryOp::Ge => (a >= b) as i64,
            }
        }
        Expr::Ternary(c, t, f) => {
            if eval_const(c, params)? != 0 {
                eval_const(t, params)?
            } else {
                eval_const(f, params)?
            }
        }
        Expr::Bit(..) | Expr::Part(..) | Expr::Concat(..) | Expr::Repeat(..) => return None,
    }))
}

/// The self-determined bit width of a constant expression, following the
/// Verilog sizing rules: sized literals keep their size, unsized literals
/// and parameters are 32 bits, arithmetic/bitwise operators take the max of
/// their operand widths, shifts take the left operand, comparisons and
/// logic/reduction operators are 1 bit.
pub fn const_width(e: &Expr) -> u32 {
    match e {
        Expr::Number { size: Some(s), .. } => *s,
        Expr::Number { size: None, .. } | Expr::Ident(_) => 32,
        Expr::Unary(op, a) => match op {
            UnaryOp::Not | UnaryOp::Neg => const_width(a),
            UnaryOp::LogicNot | UnaryOp::ReduceAnd | UnaryOp::ReduceOr | UnaryOp::ReduceXor => 1,
        },
        Expr::Binary(op, a, b) => match op {
            BinaryOp::Add
            | BinaryOp::Sub
            | BinaryOp::Mul
            | BinaryOp::Div
            | BinaryOp::Mod
            | BinaryOp::And
            | BinaryOp::Or
            | BinaryOp::Xor
            | BinaryOp::Xnor => const_width(a).max(const_width(b)),
            BinaryOp::Shl | BinaryOp::Shr => const_width(a),
            BinaryOp::LogicAnd
            | BinaryOp::LogicOr
            | BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => 1,
        },
        Expr::Ternary(_, t, f) => const_width(t).max(const_width(f)),
        // these are never constant-foldable (eval_const returns None), so
        // the width is immaterial; keep the conservative default
        Expr::Bit(..) | Expr::Part(..) | Expr::Concat(..) | Expr::Repeat(..) => 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn arithmetic_and_params() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Ident("W".into())),
            Box::new(Expr::num(1)),
        );
        assert_eq!(eval_const(&e, &p(&[("W", 7)])), Some(8));
        assert_eq!(eval_const(&e, &p(&[])), None);
    }

    #[test]
    fn shifts_and_comparisons() {
        let e = Expr::Binary(
            BinaryOp::Shl,
            Box::new(Expr::num(1)),
            Box::new(Expr::num(4)),
        );
        assert_eq!(eval_const(&e, &p(&[])), Some(16));
        let c = Expr::Binary(BinaryOp::Lt, Box::new(Expr::num(3)), Box::new(Expr::num(5)));
        assert_eq!(eval_const(&c, &p(&[])), Some(1));
    }

    #[test]
    fn ternary_selects() {
        let e = Expr::Ternary(
            Box::new(Expr::num(0)),
            Box::new(Expr::num(10)),
            Box::new(Expr::num(20)),
        );
        assert_eq!(eval_const(&e, &p(&[])), Some(20));
    }

    #[test]
    fn division_by_zero_is_none() {
        let e = Expr::Binary(
            BinaryOp::Div,
            Box::new(Expr::num(4)),
            Box::new(Expr::num(0)),
        );
        assert_eq!(eval_const(&e, &p(&[])), None);
    }

    #[test]
    fn widths() {
        assert_eq!(
            const_width(&Expr::Number {
                size: Some(4),
                value: 9
            }),
            4
        );
        assert_eq!(const_width(&Expr::num(9)), 32);
    }
}
