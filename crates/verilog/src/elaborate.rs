//! Elaboration: AST → gate-level [`Netlist`].
//!
//! Hierarchy is flattened during elaboration (the paper's §III-C *module
//! unpacking*): every instance is inlined into one flat netlist so the LUT
//! mapper can grab logic across module boundaries. Vectors are bit-blasted;
//! operators are synthesized through [`WordOps`]. Forward references are
//! resolved with placeholder nets connected by buffers, which
//! [`c2nn_netlist::collapse_buffers`] removes at the end.

use crate::ast::*;
use crate::constexpr::{const_width, eval_const};
use c2nn_netlist::{collapse_buffers, Net, Netlist, NetlistBuilder, WordOps};
use std::collections::HashMap;
use std::fmt;

/// Elaboration error with instance path context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElabError {
    pub message: String,
    pub path: String,
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error in {}: {}", self.path, self.message)
    }
}

impl std::error::Error for ElabError {}

/// A declared signal: placeholder nets (LSB first) plus addressing info.
#[derive(Clone, Debug)]
struct Sig {
    nets: Vec<Net>,
    /// Declared LSB index (`wire [7:4] x` has lsb = 4).
    lsb: i64,
    is_reg: bool,
    init: u64,
}

impl Sig {
    fn width(&self) -> usize {
        self.nets.len()
    }
}

/// A memory array: `depth` words, each a register signal stored in the
/// scope under the synthetic key produced by [`mem_word_key`].
#[derive(Clone, Debug)]
struct MemInfo {
    width: usize,
    depth: usize,
}

/// Scope key for word `w` of memory `name` (cannot collide with user
/// identifiers because of the control-character separator).
fn mem_word_key(name: &str, w: usize) -> String {
    format!("{name}\x01{w}")
}

/// Per-module-instance scope.
struct Scope {
    params: HashMap<String, i64>,
    signals: HashMap<String, Sig>,
    memories: HashMap<String, MemInfo>,
}

/// How an instance's ports are bound by its parent (absent = top level).
enum Binding {
    /// Input port: the parent-provided nets.
    Input(Vec<Net>),
    /// Output port: parent destination nets (None = unconnected).
    Output(Option<Vec<Net>>),
}

/// Shadow environment for procedural blocks: signal name → current value.
type ProcEnv = HashMap<String, Vec<Net>>;

struct Elab<'a> {
    mods: HashMap<&'a str, &'a Module>,
    b: NetlistBuilder,
    /// net → clock id (clocks are identified by the driving net).
    clock_ids: HashMap<Net, u32>,
    path: Vec<String>,
}

/// Elaborate `top` (and everything it instantiates) into a flat netlist.
pub fn elaborate(file: &SourceFile, top: &str) -> Result<Netlist, ElabError> {
    let mut mods = HashMap::new();
    for m in &file.modules {
        if mods.insert(m.name.as_str(), m).is_some() {
            return Err(ElabError {
                message: format!("duplicate module '{}'", m.name),
                path: top.to_string(),
            });
        }
    }
    let top_mod = *mods.get(top).ok_or_else(|| ElabError {
        message: format!("top module '{top}' not found"),
        path: top.to_string(),
    })?;
    let mut e = Elab {
        mods,
        b: NetlistBuilder::new(top),
        clock_ids: HashMap::new(),
        path: vec![top.to_string()],
    };
    e.elab_module(top_mod, &HashMap::new(), None)?;
    let mut nl = e.b.finish().map_err(|err| ElabError {
        message: err.to_string(),
        path: top.to_string(),
    })?;
    nl = strip_clock_inputs(nl, &e.clock_ids).map_err(|m| ElabError {
        message: m,
        path: top.to_string(),
    })?;
    let nl = collapse_buffers(&nl);
    nl.validate().map_err(|err| ElabError {
        message: err.to_string(),
        path: top.to_string(),
    })?;
    Ok(nl)
}

/// Remove primary inputs that serve purely as clocks; error on gated clocks
/// (clock nets driven by logic) or clocks also used as data.
fn strip_clock_inputs(mut nl: Netlist, clock_ids: &HashMap<Net, u32>) -> Result<Netlist, String> {
    if clock_ids.is_empty() {
        return Ok(nl);
    }
    let drivers = nl.drivers().map_err(|e| e.to_string())?;
    let fanout = c2nn_netlist::fanout_counts(&nl);
    for &net in clock_ids.keys() {
        match drivers[net.index()] {
            c2nn_netlist::Driver::Input(_) => {}
            _ => {
                return Err(format!(
                    "clock net {net:?} is driven by logic; gated/derived clocks are unsupported"
                ))
            }
        }
        if fanout[net.index()] != 0 {
            return Err(format!(
                "clock net {net:?} is also read as data; clocks must be dedicated"
            ));
        }
    }
    nl.inputs.retain(|n| !clock_ids.contains_key(n));
    Ok(nl)
}

impl<'a> Elab<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ElabError> {
        Err(ElabError {
            message: msg.into(),
            path: self.path.join("."),
        })
    }

    fn range_width(
        &self,
        range: &Option<(Expr, Expr)>,
        params: &HashMap<String, i64>,
    ) -> Result<(usize, i64), ElabError> {
        match range {
            None => Ok((1, 0)),
            Some((msb_e, lsb_e)) => {
                let msb = eval_const(msb_e, params)
                    .ok_or_else(|| self.err::<()>("non-constant range bound").unwrap_err())?;
                let lsb = eval_const(lsb_e, params)
                    .ok_or_else(|| self.err::<()>("non-constant range bound").unwrap_err())?;
                if msb < lsb {
                    return self.err(format!("descending range [{msb}:{lsb}] not supported"));
                }
                Ok(((msb - lsb + 1) as usize, lsb))
            }
        }
    }

    fn elab_module(
        &mut self,
        m: &'a Module,
        overrides: &HashMap<String, i64>,
        bindings: Option<HashMap<String, Binding>>,
    ) -> Result<(), ElabError> {
        if self.path.len() > 64 {
            return self.err("instance hierarchy too deep (recursive modules?)");
        }
        // 1. parameters
        let mut params: HashMap<String, i64> = HashMap::new();
        for p in &m.params {
            let v = match overrides.get(&p.name) {
                Some(&v) if !p.local => v,
                _ => eval_const(&p.value, &params).ok_or_else(|| {
                    self.err::<()>(format!("non-constant parameter '{}'", p.name))
                        .unwrap_err()
                })?,
            };
            params.insert(p.name.clone(), v);
        }
        for item in &m.items {
            if let Item::Param(p) = item {
                let v = match overrides.get(&p.name) {
                    Some(&v) if !p.local => v,
                    _ => eval_const(&p.value, &params).ok_or_else(|| {
                        self.err::<()>(format!("non-constant parameter '{}'", p.name))
                            .unwrap_err()
                    })?,
                };
                params.insert(p.name.clone(), v);
            }
        }

        // 2. signals: ports first, then body declarations
        let mut signals: HashMap<String, Sig> = HashMap::new();
        // deferred output-port connections for instance mode: (src, dst)
        let mut out_connects: Vec<(Vec<Net>, Vec<Net>)> = Vec::new();
        // deferred top-level output registration: (name, nets)
        let mut top_outputs: Vec<(String, Vec<Net>)> = Vec::new();
        let hier = self.path.join(".");
        for port in &m.ports {
            let (w, lsb) = self.range_width(&port.range, &params)?;
            let nets: Vec<Net> = match (&bindings, port.direction) {
                (None, Direction::Input) => {
                    // top-level primary input
                    if w == 1 {
                        vec![self.b.input(&port.name)]
                    } else {
                        self.b.input_word(&port.name, w)
                    }
                }
                (None, Direction::Output) => {
                    let nets = self.b.fresh_word(&format!("{hier}.{}", port.name), w);
                    top_outputs.push((port.name.clone(), nets.clone()));
                    nets
                }
                (Some(b), Direction::Input) => match b.get(&port.name) {
                    Some(Binding::Input(src)) => {
                        let src = src.clone();
                        self.b.resize_word(&src, w)
                    }
                    Some(Binding::Output(_)) => {
                        return self.err(format!("input port '{}' bound as output", port.name))
                    }
                    None => return self.err(format!("input port '{}' unconnected", port.name)),
                },
                (Some(b), Direction::Output) => {
                    let nets = self.b.fresh_word(&format!("{hier}.{}", port.name), w);
                    match b.get(&port.name) {
                        Some(Binding::Output(Some(dst))) => {
                            out_connects.push((nets.clone(), dst.clone()));
                        }
                        Some(Binding::Output(None)) | None => {}
                        Some(Binding::Input(_)) => {
                            return self.err(format!("output port '{}' bound as input", port.name))
                        }
                    }
                    nets
                }
            };
            let init = match &port.init {
                None => 0u64,
                Some(e) => eval_const(e, &params).ok_or_else(|| {
                    self.err::<()>(format!("non-constant initializer for port '{}'", port.name))
                        .unwrap_err()
                })? as u64,
            };
            signals.insert(
                port.name.clone(),
                Sig {
                    nets,
                    lsb,
                    is_reg: port.is_reg,
                    init,
                },
            );
        }
        // `wire x = expr;` is shorthand for a continuous assignment
        let mut wire_assigns: Vec<(String, &Expr)> = Vec::new();
        for item in &m.items {
            if let Item::NetDecl {
                is_reg,
                range,
                names,
            } = item
            {
                let (w, lsb) = self.range_width(range, &params)?;
                for (name, init_e) in names {
                    if !is_reg {
                        if let Some(e) = init_e {
                            wire_assigns.push((name.clone(), e));
                        }
                    }
                    let init = match init_e {
                        None => 0u64,
                        Some(e) if !is_reg => {
                            let _ = e;
                            0u64
                        }
                        Some(e) => eval_const(e, &params).ok_or_else(|| {
                            self.err::<()>(format!("non-constant initializer for '{name}'"))
                                .unwrap_err()
                        })? as u64,
                    };
                    if let Some(existing) = signals.get_mut(name) {
                        // non-ANSI style re-declaration of a port as reg
                        if existing.width() != w {
                            return self
                                .err(format!("redeclaration of '{name}' with different width"));
                        }
                        existing.is_reg |= is_reg;
                        if init_e.is_some() {
                            existing.init = init;
                        }
                        continue;
                    }
                    let nets = self.b.fresh_word(&format!("{hier}.{name}"), w);
                    signals.insert(
                        name.clone(),
                        Sig {
                            nets,
                            lsb,
                            is_reg: *is_reg,
                            init,
                        },
                    );
                }
            }
        }
        // memory arrays: one register signal per word
        let mut memories: HashMap<String, MemInfo> = HashMap::new();
        for item in &m.items {
            if let Item::MemDecl { range, name, depth } = item {
                let (w, _lsb) = self.range_width(range, &params)?;
                let (d0, d1) = (
                    eval_const(&depth.0, &params)
                        .ok_or_else(|| self.err::<()>("non-constant memory depth").unwrap_err())?,
                    eval_const(&depth.1, &params)
                        .ok_or_else(|| self.err::<()>("non-constant memory depth").unwrap_err())?,
                );
                let (lo, hi) = (d0.min(d1), d0.max(d1));
                if lo != 0 {
                    return self.err(format!("memory '{name}' must start at index 0"));
                }
                let depth_n = (hi + 1) as usize;
                if depth_n > 1024 {
                    return self.err(format!("memory '{name}' too deep ({depth_n} words)"));
                }
                if signals.contains_key(name) || memories.contains_key(name) {
                    return self.err(format!("redeclaration of '{name}'"));
                }
                for wi in 0..depth_n {
                    let nets = self.b.fresh_word(&format!("{hier}.{name}[{wi}]"), w);
                    signals.insert(
                        mem_word_key(name, wi),
                        Sig {
                            nets,
                            lsb: 0,
                            is_reg: true,
                            init: 0,
                        },
                    );
                }
                memories.insert(
                    name.clone(),
                    MemInfo {
                        width: w,
                        depth: depth_n,
                    },
                );
            }
        }
        let mut sc = Scope {
            params,
            signals,
            memories,
        };

        // wire initializers lower to continuous assignments
        for (name, e) in wire_assigns {
            let dst = match sc.signals.get(&name) {
                Some(sig) => sig.nets.clone(),
                None => unreachable!("wire '{name}' declared above"),
            };
            let src = self.elab_expr(e, &sc, None, Some(dst.len()))?;
            let src = self.b.resize_word(&src, dst.len());
            for (s, d) in src.iter().zip(&dst) {
                self.b.connect(*s, *d);
            }
        }

        // 3. behavioral & structural items
        for item in &m.items {
            match item {
                Item::NetDecl { .. } | Item::Param(_) | Item::MemDecl { .. } => {}
                Item::Assign { lhs, rhs } => {
                    let dst = self.resolve_lvalue(lhs, &sc)?;
                    let src = self.elab_expr(rhs, &sc, None, Some(dst.len()))?;
                    let src = self.b.resize_word(&src, dst.len());
                    for (s, d) in src.iter().zip(&dst) {
                        self.b.connect(*s, *d);
                    }
                }
                Item::AlwaysFf { clock, body } => {
                    self.elab_always_ff(clock, body, &sc)?;
                }
                Item::AlwaysComb { body } => {
                    self.elab_always_comb(body, &sc)?;
                }
                Item::Instance {
                    module,
                    name,
                    param_overrides,
                    connections,
                } => {
                    self.elab_instance(module, name, param_overrides, connections, &mut sc)?;
                }
            }
        }

        // 4. finalize ports
        for (name, nets) in top_outputs {
            if nets.len() == 1 {
                self.b.output(nets[0], &name);
            } else {
                self.b.output_word(&nets, &name);
            }
        }
        for (src, dst) in out_connects {
            let src = self.b.resize_word(&src, dst.len());
            for (s, d) in src.iter().zip(&dst) {
                self.b.connect(*s, *d);
            }
        }
        Ok(())
    }

    fn elab_instance(
        &mut self,
        module: &str,
        inst_name: &str,
        param_overrides: &[(String, Expr)],
        connections: &[(Option<String>, Option<Expr>)],
        sc: &mut Scope,
    ) -> Result<(), ElabError> {
        let child = match self.mods.get(module) {
            Some(&c) => c,
            None => return self.err(format!("unknown module '{module}'")),
        };
        let mut overrides = HashMap::new();
        for (p, e) in param_overrides {
            let v = eval_const(e, &sc.params).ok_or_else(|| {
                self.err::<()>(format!("non-constant parameter override '{p}'"))
                    .unwrap_err()
            })?;
            overrides.insert(p.clone(), v);
        }
        // pair connections with child ports
        let mut bindings: HashMap<String, Binding> = HashMap::new();
        let named = connections.iter().any(|(n, _)| n.is_some());
        for (i, (port_name, expr)) in connections.iter().enumerate() {
            let port = match port_name {
                Some(n) => match child.ports.iter().find(|p| &p.name == n) {
                    Some(p) => p,
                    None => {
                        return self.err(format!("module '{module}' has no port '{n}'"));
                    }
                },
                None => {
                    if named {
                        return self.err("cannot mix named and positional connections");
                    }
                    match child.ports.get(i) {
                        Some(p) => p,
                        None => return self.err(format!("too many connections for '{module}'")),
                    }
                }
            };
            let binding = match (port.direction, expr) {
                (Direction::Input, Some(e)) => Binding::Input(self.elab_expr(e, sc, None, None)?),
                (Direction::Input, None) => {
                    return self.err(format!("input port '{}' connected to nothing", port.name))
                }
                (Direction::Output, Some(e)) => {
                    // output connection target must be assignable
                    let lv = expr_as_lvalue(e).ok_or_else(|| {
                        self.err::<()>(format!(
                            "output port '{}' must connect to a signal, got an expression",
                            port.name
                        ))
                        .unwrap_err()
                    })?;
                    Binding::Output(Some(self.resolve_lvalue(&lv, sc)?))
                }
                (Direction::Output, None) => Binding::Output(None),
            };
            bindings.insert(port.name.clone(), binding);
        }
        self.path.push(inst_name.to_string());
        let res = self.elab_module(child, &overrides, Some(bindings));
        self.path.pop();
        res
    }

    // ---------- procedural blocks ----------

    fn elab_always_ff(&mut self, clock: &str, body: &Stmt, sc: &Scope) -> Result<(), ElabError> {
        let clk_id = self.clock_id(clock, sc)?;
        let mut env: ProcEnv = HashMap::new();
        self.walk_stmt(body, &mut env, sc, true)?;
        for (name, next) in env {
            let sig = &sc.signals[&name];
            if !sig.is_reg {
                return self.err(format!(
                    "'{name}' assigned in always@(posedge) but not a reg"
                ));
            }
            for (j, (&d, &q)) in next.iter().zip(&sig.nets).enumerate() {
                self.b
                    .push_ff_raw(d, q, clk_id, None, None, false, sig.init >> j & 1 == 1);
            }
        }
        Ok(())
    }

    fn elab_always_comb(&mut self, body: &Stmt, sc: &Scope) -> Result<(), ElabError> {
        let mut env: ProcEnv = HashMap::new();
        self.walk_stmt(body, &mut env, sc, false)?;
        for (name, value) in env {
            let sig = &sc.signals[&name];
            for (&v, &dst) in value.iter().zip(&sig.nets) {
                self.b.connect(v, dst);
            }
        }
        Ok(())
    }

    /// Walk a statement, updating the symbolic next-value/shadow environment.
    /// `seq = true` for `always @(posedge …)` (nonblocking, reads see old
    /// values), `false` for combinational blocks (blocking, reads see the
    /// updated environment).
    fn walk_stmt(
        &mut self,
        st: &Stmt,
        env: &mut ProcEnv,
        sc: &Scope,
        seq: bool,
    ) -> Result<(), ElabError> {
        match st {
            Stmt::Empty => Ok(()),
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.walk_stmt(s, env, sc, seq)?;
                }
                Ok(())
            }
            Stmt::Assign {
                lhs,
                rhs,
                nonblocking,
            } => {
                if seq && !*nonblocking {
                    return self.err("blocking '=' inside always@(posedge); use '<='");
                }
                if !seq && *nonblocking {
                    return self.err("nonblocking '<=' inside combinational always; use '='");
                }
                let width = self.lvalue_width(lhs, sc)?;
                let shadow = if seq { None } else { Some(&*env) };
                let rhs_nets = self.elab_expr(rhs, sc, shadow, Some(width))?;
                self.proc_assign(env, sc, lhs, rhs_nets, seq)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let shadow = if seq { None } else { Some(&*env) };
                let cond_nets = self.elab_expr(cond, sc, shadow, None)?;
                let c = self.b.reduce_or(&cond_nets);
                let mut env_t = env.clone();
                self.walk_stmt(then_branch, &mut env_t, sc, seq)?;
                let mut env_e = env.clone();
                if let Some(e) = else_branch {
                    self.walk_stmt(e, &mut env_e, sc, seq)?;
                }
                *env = self.merge_envs(c, env_t, env_e, sc, seq)?;
                Ok(())
            }
            Stmt::Case {
                subject,
                arms,
                default,
            } => {
                let shadow = if seq { None } else { Some(&*env) };
                let subj = self.elab_expr(subject, sc, shadow, None)?;
                // result starts at the default (or fallthrough) environment
                let mut result = env.clone();
                if let Some(d) = default {
                    self.walk_stmt(d, &mut result, sc, seq)?;
                }
                // earlier arms take priority: fold from last to first
                for (vals, stmt) in arms.iter().rev() {
                    let mut conds = Vec::with_capacity(vals.len());
                    for v in vals {
                        let val = eval_const(v, &sc.params).ok_or_else(|| {
                            self.err::<()>("case label must be constant").unwrap_err()
                        })?;
                        conds.push(self.b.eq_const(&subj, val as u64));
                    }
                    let c = self.b.or_many(&conds);
                    let mut env_arm = env.clone();
                    self.walk_stmt(stmt, &mut env_arm, sc, seq)?;
                    result = self.merge_envs(c, env_arm, result, sc, seq)?;
                }
                *env = result;
                Ok(())
            }
        }
    }

    /// `merged = cond ? env_then : env_else` per signal bit.
    fn merge_envs(
        &mut self,
        cond: Net,
        env_then: ProcEnv,
        env_else: ProcEnv,
        sc: &Scope,
        seq: bool,
    ) -> Result<ProcEnv, ElabError> {
        let mut keys: Vec<&String> = env_then.keys().chain(env_else.keys()).collect();
        keys.sort();
        keys.dedup();
        let keys: Vec<String> = keys.into_iter().cloned().collect();
        let mut merged = ProcEnv::new();
        for name in keys {
            let base = self.proc_base_value(&name, sc, seq)?;
            let t = env_then.get(&name).unwrap_or(&base).clone();
            let e = env_else.get(&name).unwrap_or(&base).clone();
            // mux(cond, a=else, b=then) = cond ? then : else
            let m = self.b.mux_word(cond, &e, &t);
            merged.insert(name, m);
        }
        Ok(merged)
    }

    /// The value a signal holds when a branch does not assign it: for
    /// sequential blocks the registered value (hold); for combinational
    /// blocks the signal's placeholder — if that placeholder ends up fed by
    /// this very block, validation reports a combinational cycle, which is
    /// this subset's latch-inference error.
    fn proc_base_value(
        &mut self,
        name: &str,
        sc: &Scope,
        _seq: bool,
    ) -> Result<Vec<Net>, ElabError> {
        match sc.signals.get(name) {
            Some(sig) => Ok(sig.nets.clone()),
            None => self.err(format!("unknown signal '{name}' in process")),
        }
    }

    /// Apply a procedural assignment into the environment.
    fn proc_assign(
        &mut self,
        env: &mut ProcEnv,
        sc: &Scope,
        lhs: &LValue,
        rhs: Vec<Net>,
        seq: bool,
    ) -> Result<(), ElabError> {
        match lhs {
            LValue::Ident(name) => {
                let sig = match sc.signals.get(name) {
                    Some(s) => s,
                    None => return self.err(format!("assignment to undeclared '{name}'")),
                };
                if !sig.is_reg {
                    return self.err(format!("procedural assignment to non-reg '{name}'"));
                }
                let v = self.b.resize_word(&rhs, sig.width());
                env.insert(name.clone(), v);
                Ok(())
            }
            LValue::Bit(name, idx_e) => {
                // memory word write: mem[addr] <= data
                if let Some(mem) = sc.memories.get(name) {
                    let mem = mem.clone();
                    let data = self.b.resize_word(&rhs, mem.width);
                    match eval_const(idx_e, &sc.params) {
                        Some(i) => {
                            if i < 0 || i as usize >= mem.depth {
                                return self
                                    .err(format!("memory index {i} out of range for '{name}'"));
                            }
                            env.insert(mem_word_key(name, i as usize), data);
                        }
                        None => {
                            let shadow_env = env.clone();
                            let shadow = if seq { None } else { Some(&shadow_env) };
                            let addr = self.elab_expr(idx_e, sc, shadow, None)?;
                            for w in 0..mem.depth {
                                let key = mem_word_key(name, w);
                                let cur = match env.get(&key) {
                                    Some(v) => v.clone(),
                                    None => self.proc_base_value(&key, sc, seq)?,
                                };
                                let hit = self.b.eq_const(&addr, w as u64);
                                let next = self.b.mux_word(hit, &cur, &data);
                                env.insert(key, next);
                            }
                        }
                    }
                    return Ok(());
                }
                let sig = match sc.signals.get(name) {
                    Some(s) => s.clone(),
                    None => return self.err(format!("assignment to undeclared '{name}'")),
                };
                if !sig.is_reg {
                    return self.err(format!("procedural assignment to non-reg '{name}'"));
                }
                let mut cur = match env.get(name) {
                    Some(v) => v.clone(),
                    None => self.proc_base_value(name, sc, seq)?,
                };
                let bit = self.b.resize_word(&rhs, 1)[0];
                match eval_const(idx_e, &sc.params) {
                    Some(i) => {
                        let pos = i - sig.lsb;
                        if pos < 0 || pos as usize >= sig.width() {
                            return self.err(format!("bit index {i} out of range for '{name}'"));
                        }
                        cur[pos as usize] = bit;
                    }
                    None => {
                        // decoded (dynamic-index) write
                        if sig.lsb != 0 {
                            return self.err(format!(
                                "dynamic bit write to '{name}' with nonzero LSB unsupported"
                            ));
                        }
                        let shadow_env = env.clone();
                        let shadow = if seq { None } else { Some(&shadow_env) };
                        let idx = self.elab_expr(idx_e, sc, shadow, None)?;
                        for (j, slot) in cur.iter_mut().enumerate() {
                            let hit = self.b.eq_const(&idx, j as u64);
                            *slot = self.b.mux(hit, *slot, bit);
                        }
                    }
                }
                env.insert(name.clone(), cur);
                Ok(())
            }
            LValue::Part(name, msb_e, lsb_e) => {
                let sig = match sc.signals.get(name) {
                    Some(s) => s.clone(),
                    None => return self.err(format!("assignment to undeclared '{name}'")),
                };
                if !sig.is_reg {
                    return self.err(format!("procedural assignment to non-reg '{name}'"));
                }
                let msb = eval_const(msb_e, &sc.params)
                    .ok_or_else(|| self.err::<()>("non-constant part-select").unwrap_err())?;
                let lsb = eval_const(lsb_e, &sc.params)
                    .ok_or_else(|| self.err::<()>("non-constant part-select").unwrap_err())?;
                let lo = lsb - sig.lsb;
                let hi = msb - sig.lsb;
                if lo < 0 || hi < lo || hi as usize >= sig.width() {
                    return self.err(format!("part-select [{msb}:{lsb}] out of range"));
                }
                let mut cur = match env.get(name) {
                    Some(v) => v.clone(),
                    None => self.proc_base_value(name, sc, seq)?,
                };
                let w = (hi - lo + 1) as usize;
                let v = self.b.resize_word(&rhs, w);
                cur[lo as usize..=hi as usize].copy_from_slice(&v);
                env.insert(name.clone(), cur);
                Ok(())
            }
            LValue::Concat(parts) => {
                // MSB-first: split rhs from the top
                let widths: Vec<usize> = parts
                    .iter()
                    .map(|p| self.lvalue_width(p, sc))
                    .collect::<Result<_, _>>()?;
                let total: usize = widths.iter().sum();
                let rhs = self.b.resize_word(&rhs, total);
                let mut hi = total;
                for (p, w) in parts.iter().zip(&widths) {
                    let lo = hi - w;
                    let slice = rhs[lo..hi].to_vec();
                    self.proc_assign(env, sc, p, slice, seq)?;
                    hi = lo;
                }
                Ok(())
            }
        }
    }

    fn lvalue_width(&self, lv: &LValue, sc: &Scope) -> Result<usize, ElabError> {
        match lv {
            LValue::Ident(name) => match sc.signals.get(name) {
                Some(s) => Ok(s.width()),
                None => self.err(format!("unknown signal '{name}'")),
            },
            LValue::Bit(name, _) if sc.memories.contains_key(name) => Ok(sc.memories[name].width),
            LValue::Bit(..) => Ok(1),
            LValue::Part(_, msb_e, lsb_e) => {
                let msb = eval_const(msb_e, &sc.params)
                    .ok_or_else(|| self.err::<()>("non-constant part-select").unwrap_err())?;
                let lsb = eval_const(lsb_e, &sc.params)
                    .ok_or_else(|| self.err::<()>("non-constant part-select").unwrap_err())?;
                Ok((msb - lsb + 1).max(0) as usize)
            }
            LValue::Concat(parts) => parts.iter().map(|p| self.lvalue_width(p, sc)).sum(),
        }
    }

    /// Resolve a continuous-assignment target to its placeholder nets.
    fn resolve_lvalue(&mut self, lv: &LValue, sc: &Scope) -> Result<Vec<Net>, ElabError> {
        match lv {
            LValue::Ident(name) => match sc.signals.get(name) {
                Some(s) => Ok(s.nets.clone()),
                None => self.err(format!("unknown signal '{name}'")),
            },
            LValue::Bit(name, idx_e) => {
                let sig = match sc.signals.get(name) {
                    Some(s) => s,
                    None => return self.err(format!("unknown signal '{name}'")),
                };
                let i = eval_const(idx_e, &sc.params).ok_or_else(|| {
                    self.err::<()>("assign to dynamic bit index unsupported")
                        .unwrap_err()
                })?;
                let pos = i - sig.lsb;
                if pos < 0 || pos as usize >= sig.width() {
                    return self.err(format!("bit index {i} out of range for '{name}'"));
                }
                Ok(vec![sig.nets[pos as usize]])
            }
            LValue::Part(name, msb_e, lsb_e) => {
                let sig = match sc.signals.get(name) {
                    Some(s) => s,
                    None => return self.err(format!("unknown signal '{name}'")),
                };
                let msb = eval_const(msb_e, &sc.params)
                    .ok_or_else(|| self.err::<()>("non-constant part-select").unwrap_err())?;
                let lsb = eval_const(lsb_e, &sc.params)
                    .ok_or_else(|| self.err::<()>("non-constant part-select").unwrap_err())?;
                let lo = lsb - sig.lsb;
                let hi = msb - sig.lsb;
                if lo < 0 || hi < lo || hi as usize >= sig.width() {
                    return self.err(format!("part-select [{msb}:{lsb}] out of range"));
                }
                Ok(sig.nets[lo as usize..=hi as usize].to_vec())
            }
            LValue::Concat(parts) => {
                // MSB first: reverse so the last part supplies the LSBs
                let mut nets = Vec::new();
                for p in parts.iter().rev() {
                    nets.extend(self.resolve_lvalue(p, sc)?);
                }
                Ok(nets)
            }
        }
    }

    fn clock_id(&mut self, name: &str, sc: &Scope) -> Result<u32, ElabError> {
        let sig = match sc.signals.get(name) {
            Some(s) => s,
            None => return self.err(format!("unknown clock '{name}'")),
        };
        if sig.width() != 1 {
            return self.err(format!("clock '{name}' must be 1 bit"));
        }
        let net = sig.nets[0];
        if let Some(&id) = self.clock_ids.get(&net) {
            return Ok(id);
        }
        // ensure a unique clock-domain name per distinct net
        let unique = format!("{name}#{}", net.0);
        let id = self.b.clock(&unique);
        self.clock_ids.insert(net, id);
        Ok(id)
    }

    // ---------- expressions ----------

    /// Elaborate an expression to a word of nets (LSB first).
    fn elab_expr(
        &mut self,
        e: &Expr,
        sc: &Scope,
        shadow: Option<&ProcEnv>,
        ctx: Option<usize>,
    ) -> Result<Vec<Net>, ElabError> {
        // constant folding first — parameters, sized literals, arithmetic.
        // Constants materialize at their declared width extended to the
        // assignment context (Verilog's context-determined sizing).
        if let Some(v) = eval_const(e, &sc.params) {
            let w = (const_width(e) as usize).max(ctx.unwrap_or(0));
            return Ok(self.b.const_word(v as u64, w));
        }
        match e {
            Expr::Number { .. } => unreachable!("numbers are constant-folded"),
            Expr::Ident(name) => self.signal_value(name, sc, shadow),
            Expr::Bit(base, idx_e) => {
                // memory word read: mem[addr] (async, decoded)
                if let Expr::Ident(name) = &**base {
                    if let Some(mem) = sc.memories.get(name) {
                        let mem = mem.clone();
                        let words: Vec<Vec<Net>> = (0..mem.depth)
                            .map(|w| self.signal_value(&mem_word_key(name, w), sc, shadow))
                            .collect::<Result<_, _>>()?;
                        return Ok(match eval_const(idx_e, &sc.params) {
                            Some(i) => {
                                if i < 0 || i as usize >= mem.depth {
                                    return self.err(format!(
                                        "memory index {i} out of range for '{name}'"
                                    ));
                                }
                                words[i as usize].clone()
                            }
                            None => {
                                let addr = self.elab_expr(idx_e, sc, shadow, None)?;
                                let sels: Vec<Net> = (0..mem.depth)
                                    .map(|w| self.b.eq_const(&addr, w as u64))
                                    .collect();
                                self.b.onehot_mux_word(&sels, &words)
                            }
                        });
                    }
                }
                let (nets, lsb) = self.base_bits(base, sc, shadow)?;
                match eval_const(idx_e, &sc.params) {
                    Some(i) => {
                        let pos = i - lsb;
                        if pos < 0 || pos as usize >= nets.len() {
                            return self.err(format!("bit index {i} out of range"));
                        }
                        Ok(vec![nets[pos as usize]])
                    }
                    None => {
                        if lsb != 0 {
                            return self.err("dynamic bit select with nonzero LSB unsupported");
                        }
                        let idx = self.elab_expr(idx_e, sc, shadow, None)?;
                        let shifted = self.b.shr_var(&nets, &idx);
                        Ok(vec![shifted[0]])
                    }
                }
            }
            Expr::Part(base, msb_e, lsb_e) => {
                let (nets, lsb0) = self.base_bits(base, sc, shadow)?;
                let msb = eval_const(msb_e, &sc.params)
                    .ok_or_else(|| self.err::<()>("non-constant part-select").unwrap_err())?;
                let lsb = eval_const(lsb_e, &sc.params)
                    .ok_or_else(|| self.err::<()>("non-constant part-select").unwrap_err())?;
                let lo = lsb - lsb0;
                let hi = msb - lsb0;
                if lo < 0 || hi < lo || hi as usize >= nets.len() {
                    return self.err(format!("part-select [{msb}:{lsb}] out of range"));
                }
                Ok(nets[lo as usize..=hi as usize].to_vec())
            }
            Expr::Unary(op, a) => {
                // ~ and unary - are context-determined; the rest are
                // self-determined (reductions, !)
                let op_ctx = match op {
                    UnaryOp::Not | UnaryOp::Neg => ctx,
                    _ => None,
                };
                let av = self.elab_expr(a, sc, shadow, op_ctx)?;
                let av = if matches!(op, UnaryOp::Not | UnaryOp::Neg) {
                    self.b.resize_word(&av, av.len().max(ctx.unwrap_or(0)))
                } else {
                    av
                };
                Ok(match op {
                    UnaryOp::Not => self.b.not_word(&av),
                    UnaryOp::LogicNot => {
                        let any = self.b.reduce_or(&av);
                        vec![self.b.not(any)]
                    }
                    UnaryOp::Neg => {
                        let zero = self.b.const_word(0, av.len());
                        self.b.sub_word(&zero, &av)
                    }
                    UnaryOp::ReduceAnd => vec![self.b.reduce_and(&av)],
                    UnaryOp::ReduceOr => vec![self.b.reduce_or(&av)],
                    UnaryOp::ReduceXor => vec![self.b.reduce_xor(&av)],
                })
            }
            Expr::Binary(op, a, bx) => self.elab_binary(*op, a, bx, sc, shadow, ctx),
            Expr::Ternary(c, t, f) => {
                let cv = self.elab_expr(c, sc, shadow, None)?;
                let cb = self.b.reduce_or(&cv);
                let tv = self.elab_expr(t, sc, shadow, ctx)?;
                let fv = self.elab_expr(f, sc, shadow, ctx)?;
                let w = tv.len().max(fv.len()).max(ctx.unwrap_or(0));
                let tv = self.b.resize_word(&tv, w);
                let fv = self.b.resize_word(&fv, w);
                // mux(s, a, b) = s ? b : a  → cond ? tv : fv
                Ok(self.b.mux_word(cb, &fv, &tv))
            }
            Expr::Concat(parts) => {
                let mut nets = Vec::new();
                for p in parts.iter().rev() {
                    nets.extend(self.elab_expr(p, sc, shadow, None)?);
                }
                Ok(nets)
            }
            Expr::Repeat(count, inner) => {
                let n = eval_const(count, &sc.params).ok_or_else(|| {
                    self.err::<()>("non-constant replication count")
                        .unwrap_err()
                })?;
                if !(0..=4096).contains(&n) {
                    return self.err(format!("bad replication count {n}"));
                }
                let inner = self.elab_expr(inner, sc, shadow, None)?;
                let mut nets = Vec::with_capacity(inner.len() * n as usize);
                for _ in 0..n {
                    nets.extend(inner.iter().copied());
                }
                Ok(nets)
            }
        }
    }

    /// Current value of a named signal (shadow env first for comb blocks).
    fn signal_value(
        &self,
        name: &str,
        sc: &Scope,
        shadow: Option<&ProcEnv>,
    ) -> Result<Vec<Net>, ElabError> {
        if let Some(env) = shadow {
            if let Some(v) = env.get(name) {
                return Ok(v.clone());
            }
        }
        match sc.signals.get(name) {
            Some(s) => Ok(s.nets.clone()),
            None => self.err(format!("unknown signal '{name}'")),
        }
    }

    /// Bits and LSB bias of a select base (named signals keep their declared
    /// LSB; computed values are 0-based).
    fn base_bits(
        &mut self,
        base: &Expr,
        sc: &Scope,
        shadow: Option<&ProcEnv>,
    ) -> Result<(Vec<Net>, i64), ElabError> {
        if let Expr::Ident(name) = base {
            let lsb = sc.signals.get(name).map(|s| s.lsb).unwrap_or(0);
            return Ok((self.signal_value(name, sc, shadow)?, lsb));
        }
        Ok((self.elab_expr(base, sc, shadow, None)?, 0))
    }

    #[allow(clippy::too_many_arguments)]
    fn elab_binary(
        &mut self,
        op: BinaryOp,
        a: &Expr,
        bx: &Expr,
        sc: &Scope,
        shadow: Option<&ProcEnv>,
        ctx: Option<usize>,
    ) -> Result<Vec<Net>, ElabError> {
        use BinaryOp::*;
        // shifts: the left operand is context-determined, the amount is
        // self-determined
        if matches!(op, Shl | Shr) {
            let av = self.elab_expr(a, sc, shadow, ctx)?;
            let av = self.b.resize_word(&av, av.len().max(ctx.unwrap_or(0)));
            return Ok(match eval_const(bx, &sc.params) {
                Some(k) => {
                    let k = k.max(0) as usize;
                    if op == Shl {
                        self.b.shl_const(&av, k)
                    } else {
                        self.b.shr_const(&av, k)
                    }
                }
                None => {
                    let bv = self.elab_expr(bx, sc, shadow, None)?;
                    // cap shift-amount bits at what can matter
                    let need = (usize::BITS - (av.len().max(1) - 1).leading_zeros()) as usize + 1;
                    let sh: Vec<Net> = if bv.len() > need {
                        // wider amounts can still zero everything: OR the top
                        let top = self.b.reduce_or(&bv[need..]);
                        let mut s = bv[..need].to_vec();
                        s.push(top);
                        s
                    } else {
                        bv
                    };
                    if op == Shl {
                        self.b.shl_var(&av, &sh)
                    } else {
                        self.b.shr_var(&av, &sh)
                    }
                }
            });
        }
        if matches!(op, LogicAnd | LogicOr) {
            let av = self.elab_expr(a, sc, shadow, None)?;
            let bv = self.elab_expr(bx, sc, shadow, None)?;
            let ab = self.b.reduce_or(&av);
            let bb = self.b.reduce_or(&bv);
            return Ok(vec![if op == LogicAnd {
                self.b.and2(ab, bb)
            } else {
                self.b.or2(ab, bb)
            }]);
        }
        // comparisons size their operands against each other only; the
        // arithmetic/bitwise operators extend to the assignment context so
        // carries are not lost (e.g. `s[4:0] = a[3:0] + b[3:0]`).
        let op_ctx = match op {
            Eq | Ne | Lt | Le | Gt | Ge => None,
            _ => ctx,
        };
        let av = self.elab_expr(a, sc, shadow, op_ctx)?;
        let bv = self.elab_expr(bx, sc, shadow, op_ctx)?;
        let w = av.len().max(bv.len()).max(op_ctx.unwrap_or(0));
        let av = self.b.resize_word(&av, w);
        let bv = self.b.resize_word(&bv, w);
        Ok(match op {
            And => self.b.and_word(&av, &bv),
            Or => self.b.or_word(&av, &bv),
            Xor => self.b.xor_word(&av, &bv),
            Xnor => {
                let x = self.b.xor_word(&av, &bv);
                self.b.not_word(&x)
            }
            Add => self.b.add_word(&av, &bv),
            Sub => self.b.sub_word(&av, &bv),
            Mul => self.mul_word(&av, &bv),
            Div | Mod => return self.err("non-constant division/modulo is not synthesizable here"),
            Eq => vec![self.b.eq_word(&av, &bv)],
            Ne => {
                let e = self.b.eq_word(&av, &bv);
                vec![self.b.not(e)]
            }
            Lt => vec![self.b.lt_word(&av, &bv)],
            Gt => vec![self.b.lt_word(&bv, &av)],
            Le => {
                let gt = self.b.lt_word(&bv, &av);
                vec![self.b.not(gt)]
            }
            Ge => {
                let lt = self.b.lt_word(&av, &bv);
                vec![self.b.not(lt)]
            }
            Shl | Shr | LogicAnd | LogicOr => unreachable!(),
        })
    }

    /// Shift-add array multiplier, result truncated to operand width.
    fn mul_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net> {
        let w = a.len();
        let mut acc = self.b.const_word(0, w);
        for (i, &bi) in b.iter().enumerate().take(w) {
            let shifted = self.b.shl_const(a, i);
            let gated: Vec<Net> = shifted.iter().map(|&s| self.b.and2(s, bi)).collect();
            acc = self.b.add_word(&acc, &gated);
        }
        acc
    }
}

/// Reinterpret an expression as an assignment target (for instance output
/// connections like `.q(my_wire)` / `.q({hi, lo})` / `.q(w[3:0])`).
fn expr_as_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Ident(n) => Some(LValue::Ident(n.clone())),
        Expr::Bit(base, i) => match &**base {
            Expr::Ident(n) => Some(LValue::Bit(n.clone(), (**i).clone())),
            _ => None,
        },
        Expr::Part(base, m, l) => match &**base {
            Expr::Ident(n) => Some(LValue::Part(n.clone(), (**m).clone(), (**l).clone())),
            _ => None,
        },
        Expr::Concat(parts) => {
            let lvs: Option<Vec<LValue>> = parts.iter().map(expr_as_lvalue).collect();
            Some(LValue::Concat(lvs?))
        }
        _ => None,
    }
}
