//! Structural Verilog emission: render any netlist back as synthesizable
//! Verilog-2005. Together with the frontend this gives a full round trip
//! (netlist → Verilog → netlist), used for interchange with external tools
//! and as a powerful self-test of the frontend.

use c2nn_netlist::{GateKind, Net, Netlist};
use std::fmt::Write as _;

/// Render `nl` as a single structural Verilog module.
///
/// * primary inputs/outputs become scalar ports `i<k>` / `o<k>` (original
///   names are kept as comments — Verilog identifiers from arbitrary debug
///   names would need escaping);
/// * every internal net becomes a `wire n<id>`;
/// * gates become `assign` expressions; flip-flops become one
///   `always @(posedge clk)` block (plus a `rst`-less init note — power-on
///   values are emitted as reg initializers).
pub fn to_verilog(nl: &Netlist) -> String {
    let mut s = String::new();
    let module = if nl.name.is_empty() { "top" } else { &nl.name };
    let module: String = module
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let in_name = |k: usize| format!("i{k}");
    let out_name = |k: usize| format!("o{k}");
    let net_name = |n: Net| format!("n{}", n.0);

    let mut ports: Vec<String> = Vec::new();
    if !nl.flipflops.is_empty() {
        ports.push("input clk".to_string());
    }
    ports.extend((0..nl.inputs.len()).map(|k| format!("input {}", in_name(k))));
    ports.extend((0..nl.outputs.len()).map(|k| format!("output {}", out_name(k))));
    let _ = writeln!(s, "module {module}(");
    let _ = writeln!(s, "  {}", ports.join(",\n  "));
    let _ = writeln!(s, ");");

    // input aliases
    for (k, &n) in nl.inputs.iter().enumerate() {
        if let Some(orig) = nl.net_name(n) {
            let _ = writeln!(s, "  // {} = {}", in_name(k), orig);
        }
        let _ = writeln!(s, "  wire {} = {};", net_name(n), in_name(k));
    }
    // internal wires: every gate output
    for g in &nl.gates {
        let _ = writeln!(s, "  wire {};", net_name(g.output));
    }
    // flip-flop outputs are regs
    for ff in &nl.flipflops {
        let _ = writeln!(s, "  reg {} = 1'b{};", net_name(ff.q), ff.init as u8);
    }
    // gates
    for g in &nl.gates {
        let args: Vec<String> = g.inputs.iter().map(|&n| net_name(n)).collect();
        let expr = match g.kind {
            GateKind::Const0 => "1'b0".to_string(),
            GateKind::Const1 => "1'b1".to_string(),
            GateKind::Buf => args[0].clone(),
            GateKind::Not => format!("~{}", args[0]),
            GateKind::And => args.join(" & "),
            GateKind::Or => args.join(" | "),
            GateKind::Xor => args.join(" ^ "),
            GateKind::Nand => format!("~({})", args.join(" & ")),
            GateKind::Nor => format!("~({})", args.join(" | ")),
            GateKind::Xnor => format!("~({})", args.join(" ^ ")),
            GateKind::Mux => format!("{} ? {} : {}", args[0], args[2], args[1]),
        };
        let _ = writeln!(s, "  assign {} = {};", net_name(g.output), expr);
    }
    // sequential block
    if !nl.flipflops.is_empty() {
        let _ = writeln!(s, "  always @(posedge clk) begin");
        for ff in &nl.flipflops {
            let mut rhs = net_name(ff.d);
            if let Some(en) = ff.enable {
                rhs = format!("{} ? {} : {}", net_name(en), rhs, net_name(ff.q));
            }
            if let Some(rst) = ff.reset {
                rhs = format!(
                    "{} ? 1'b{} : ({})",
                    net_name(rst),
                    ff.reset_value as u8,
                    rhs
                );
            }
            let _ = writeln!(s, "    {} <= {};", net_name(ff.q), rhs);
        }
        let _ = writeln!(s, "  end");
    }
    // outputs
    for (k, &n) in nl.outputs.iter().enumerate() {
        let _ = writeln!(s, "  assign {} = {};", out_name(k), net_name(n));
    }
    let _ = writeln!(s, "endmodule");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_netlist::{topo_order, NetlistBuilder, WordOps};

    fn eval(nl: &Netlist, x: u64) -> u64 {
        let mut vals = vec![false; nl.num_nets as usize];
        for (j, &inp) in nl.inputs.iter().enumerate() {
            vals[inp.index()] = x >> j & 1 == 1;
        }
        for gi in topo_order(nl).unwrap() {
            let g = &nl.gates[gi];
            let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
            vals[g.output.index()] = g.kind.eval(&ins);
        }
        nl.outputs
            .iter()
            .enumerate()
            .map(|(j, &o)| (vals[o.index()] as u64) << j)
            .sum()
    }

    #[test]
    fn comb_roundtrip_through_frontend() {
        let mut b = NetlistBuilder::new("mix");
        let x = b.input_word("x", 6);
        let a = b.and_many(&x[..3]);
        let o = b.or_many(&x[3..]);
        let m = b.mux(x[0], a, o);
        let p = b.xor_many(&x);
        let nn = b.nand2(x[1], x[4]);
        b.output(m, "m");
        b.output(p, "p");
        b.output(nn, "n");
        let nl = b.finish().unwrap();
        let src = to_verilog(&nl);
        let back = crate::compile(&src, "mix").expect("emitted Verilog must re-elaborate");
        assert_eq!(back.inputs.len(), 6);
        assert_eq!(back.outputs.len(), 3);
        for v in 0..64u64 {
            assert_eq!(eval(&back, v), eval(&nl, v), "x={v:06b}");
        }
    }

    #[test]
    fn sequential_roundtrip_through_frontend() {
        let mut b = NetlistBuilder::new("ctr");
        let clk = b.clock("clk");
        let en = b.input("en");
        let q = b.fresh_word("q", 3);
        let inc = b.inc_word(&q);
        let next = b.mux_word(en, &q, &inc);
        b.connect_ff_word(&next, &q, clk, None, None, 0, 0b101);
        b.output_word(&q, "q");
        let nl = b.finish().unwrap();
        let src = to_verilog(&nl);
        let back = crate::compile(&src, "ctr").expect("re-elaborate");
        assert_eq!(back.flipflops.len(), 3);
        // behaviorally identical over 12 cycles
        let ca = c2nn_netlist::prepare(&nl).unwrap();
        let cb = c2nn_netlist::prepare(&back).unwrap();
        let mut sa = ca.state_init.clone();
        let mut sb = cb.state_init.clone();
        assert_eq!(sa.iter().filter(|&&x| x).count(), 2, "init preserved");
        for cyc in 0..12 {
            let en_v = cyc % 2 == 0;
            let fa: Vec<bool> = std::iter::once(en_v).chain(sa.iter().copied()).collect();
            let fb: Vec<bool> = std::iter::once(en_v).chain(sb.iter().copied()).collect();
            let ra = eval_all(&ca.comb, &fa);
            let rb = eval_all(&cb.comb, &fb);
            assert_eq!(
                &ra[..ca.num_primary_outputs],
                &rb[..cb.num_primary_outputs],
                "cycle {cyc}"
            );
            sa = ra[ca.num_primary_outputs..].to_vec();
            sb = rb[cb.num_primary_outputs..].to_vec();
        }
    }

    fn eval_all(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; nl.num_nets as usize];
        for (j, &inp) in nl.inputs.iter().enumerate() {
            vals[inp.index()] = inputs[j];
        }
        for gi in topo_order(nl).unwrap() {
            let g = &nl.gates[gi];
            let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
            vals[g.output.index()] = g.kind.eval(&ins);
        }
        nl.outputs.iter().map(|o| vals[o.index()]).collect()
    }

    #[test]
    fn emits_valid_constants_and_enables() {
        let mut b = NetlistBuilder::new("k");
        let clk = b.clock("clk");
        let d = b.input("d");
        let en = b.input("en");
        let one = b.one();
        let q = b.dff_full(d, clk, Some(en), None, false, true);
        let y = b.xor2(q, one);
        b.output(y, "y");
        let nl = b.finish().unwrap();
        let src = to_verilog(&nl);
        assert!(src.contains("1'b1"));
        assert!(src.contains("always @(posedge clk)"));
        let back = crate::compile(&src, "k").expect("re-elaborate");
        assert_eq!(back.flipflops.len(), 1);
    }
}
