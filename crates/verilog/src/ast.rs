//! Abstract syntax tree for the Verilog subset.

/// A parsed source file: one or more module definitions.
#[derive(Clone, Debug, PartialEq)]
pub struct SourceFile {
    pub modules: Vec<Module>,
}

/// A `module … endmodule` definition with ANSI-style ports.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    pub name: String,
    pub params: Vec<ParamDecl>,
    pub ports: Vec<PortDecl>,
    pub items: Vec<Item>,
}

/// `parameter NAME = const_expr` (header or body) / `localparam`.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDecl {
    pub name: String,
    pub value: Expr,
    pub local: bool,
}

/// Direction of a port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    Input,
    Output,
}

/// `input|output [reg] [msb:lsb] name`.
#[derive(Clone, Debug, PartialEq)]
pub struct PortDecl {
    pub direction: Direction,
    pub is_reg: bool,
    /// `Some((msb, lsb))` for vectors, both inclusive constant expressions.
    pub range: Option<(Expr, Expr)>,
    pub name: String,
    /// Power-on value for `output reg q = <const>` declarations.
    pub init: Option<Expr>,
}

/// Body items.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// `wire [r] a, b;` or `reg [r] a = init, b;`
    NetDecl {
        is_reg: bool,
        range: Option<(Expr, Expr)>,
        names: Vec<(String, Option<Expr>)>,
    },
    Param(ParamDecl),
    /// `reg [msb:lsb] name [first:last];` — a memory array, elaborated as a
    /// register per word with decoded (async) reads and decoded writes.
    MemDecl {
        range: Option<(Expr, Expr)>,
        name: String,
        depth: (Expr, Expr),
    },
    /// `assign lhs = rhs;`
    Assign {
        lhs: LValue,
        rhs: Expr,
    },
    /// `always @(posedge clk) stmt` — sequential process.
    AlwaysFf {
        clock: String,
        body: Stmt,
    },
    /// `always @(*) stmt` / `always @*` — combinational process.
    AlwaysComb {
        body: Stmt,
    },
    /// `name #(params) inst (.port(expr), …);`
    Instance {
        module: String,
        name: String,
        param_overrides: Vec<(String, Expr)>,
        /// Connections: named `(Some(port), expr)` or positional `(None, expr)`.
        connections: Vec<(Option<String>, Option<Expr>)>,
    },
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Whole signal.
    Ident(String),
    /// Single bit `a[i]` (constant or variable index; variable index is a
    /// decoded write, supported in processes only).
    Bit(String, Expr),
    /// Part select `a[msb:lsb]` with constant bounds.
    Part(String, Expr, Expr),
    /// `{a, b[3:0], …}` — concatenation of lvalues, MSB first.
    Concat(Vec<LValue>),
}

/// Procedural statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `begin … end`
    Block(Vec<Stmt>),
    /// Blocking `=` (combinational) or nonblocking `<=` (sequential);
    /// the elaborator checks the flavor matches the process kind.
    Assign {
        lhs: LValue,
        rhs: Expr,
        nonblocking: bool,
    },
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    Case {
        subject: Expr,
        /// Each arm: one or more match values, then the statement.
        arms: Vec<(Vec<Expr>, Stmt)>,
        default: Option<Box<Stmt>>,
    },
    /// Empty statement `;`.
    Empty,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    Not,       // ~
    LogicNot,  // !
    Neg,       // -
    ReduceAnd, // &
    ReduceOr,  // |
    ReduceXor, // ^
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    And,
    Or,
    Xor,
    Xnor,
    LogicAnd,
    LogicOr,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal with optional declared size.
    Number {
        size: Option<u32>,
        value: u64,
    },
    Ident(String),
    /// `a[i]`.
    Bit(Box<Expr>, Box<Expr>),
    /// `a[msb:lsb]` (constant bounds).
    Part(Box<Expr>, Box<Expr>, Box<Expr>),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `{a, b, …}` MSB first.
    Concat(Vec<Expr>),
    /// `{n{a}}`.
    Repeat(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for plain numbers in tests.
    pub fn num(value: u64) -> Expr {
        Expr::Number { size: None, value }
    }
}
