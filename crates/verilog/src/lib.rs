//! # c2nn-verilog
//!
//! The HDL frontend of the C2NN workspace: a lexer, parser, and elaborator
//! for a synthesizable Verilog-2005 subset, producing the flat gate-level
//! [`c2nn_netlist::Netlist`] the rest of the pipeline consumes. It plays the
//! role Yosys plays in the paper (§III-B1), including *module unpacking* —
//! hierarchy is flattened during elaboration so the LUT mapper can optimize
//! across module boundaries (§III-C).
//!
//! ## Supported subset
//!
//! * `module`/`endmodule` with ANSI ports, vectors `[msb:lsb]`, parameters
//!   (header and body, instance overrides with `#(.P(..))`).
//! * `wire`/`reg` declarations (with `reg x = <const>` power-on values).
//! * `assign` with the full expression grammar: bitwise/logic/arith
//!   (`+ - * << >>` — shift-add multiplier, barrel shifters), comparisons,
//!   reductions, ternary, concatenation `{}`, replication `{n{}}`, bit and
//!   part selects (dynamic bit reads and decoded dynamic bit writes too).
//! * `always @(posedge clk)` with nonblocking `<=`, `if`/`else`,
//!   `case`/`endcase` — becomes D flip-flops.
//! * Memory arrays `reg [7:0] mem [0:15];` with decoded reads (`mem[addr]`
//!   in any expression) and decoded writes (`mem[addr] <= data` in
//!   sequential blocks) — register files, FIFOs, and small RAMs infer to
//!   one register per word with correct read-before-write semantics.
//! * `always @(*)` / `always @*` / level-sensitive lists with blocking `=` —
//!   becomes combinational logic; incomplete assignment surfaces as a
//!   combinational-cycle error (no latch inference).
//! * Module instantiation, named or positional, inlined (flattened).
//!
//! Not supported (rejected with clear errors): `inout`, `negedge`/gated
//! clocks, asynchronous resets, `generate`, `function`, `initial`,
//! 4-state values (`x`/`z`), memories deeper than 1024 words.
//!
//! ```
//! let src = "
//!   module add8(input [7:0] a, input [7:0] b, output [7:0] s);
//!     assign s = a + b;
//!   endmodule";
//! let netlist = c2nn_verilog::compile(src, "add8").unwrap();
//! assert_eq!(netlist.inputs.len(), 16);
//! assert_eq!(netlist.outputs.len(), 8);
//! ```

pub mod ast;
pub mod constexpr;
pub mod elaborate;
pub mod emit;
pub mod parser;
pub mod token;

pub use elaborate::{elaborate, ElabError};
pub use emit::to_verilog;
pub use parser::{parse, ParseError};

/// Any frontend error (lex/parse or elaboration).
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    Parse(ParseError),
    Elab(ElabError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Elab(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// One-call convenience: parse `src` and elaborate module `top`.
pub fn compile(src: &str, top: &str) -> Result<c2nn_netlist::Netlist, CompileError> {
    let file = parse(src).map_err(CompileError::Parse)?;
    elaborate(&file, top).map_err(CompileError::Elab)
}
