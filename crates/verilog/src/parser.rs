//! Recursive-descent parser for the Verilog subset.

use crate::ast::*;
use crate::token::{lex, Keyword, Token, TokenKind};
use std::fmt;

/// Parse error with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete source file.
pub fn parse(src: &str) -> Result<SourceFile, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
        col: e.col,
    })?;
    Parser {
        toks,
        pos: 0,
        depth: 0,
    }
    .source_file()
}

/// Maximum nesting depth of expressions/statements before the parser bails
/// out with an error. Recursive descent uses the call stack, so unbounded
/// input nesting (`((((((…`) would otherwise crash with a stack overflow
/// instead of returning a diagnostic. Each paren level walks the whole
/// precedence chain (~13 frames), so this must stay small enough for the
/// 2 MiB default test-thread stack even in unoptimized builds.
const MAX_NEST: u32 = 64;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// current recursion depth across `expr`/`stmt`/`unary` (see [`MAX_NEST`])
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let t = &self.toks[self.pos];
        Err(ParseError {
            message: format!("{} (found {:?})", msg.into(), t.kind),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, k: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == k {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {k:?}"))
        }
    }

    fn eat(&mut self, k: TokenKind) -> bool {
        if *self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(TokenKind::Kw(kw))
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        self.expect(TokenKind::Kw(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn source_file(&mut self) -> Result<SourceFile, ParseError> {
        let mut modules = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            modules.push(self.module()?);
        }
        Ok(SourceFile { modules })
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        self.expect_kw(Keyword::Module)?;
        let name = self.ident()?;
        let mut params = Vec::new();
        // optional #(parameter P = 1, ...)
        if self.eat(TokenKind::Hash) {
            self.expect(TokenKind::LParen)?;
            loop {
                self.eat_kw(Keyword::Parameter);
                let pname = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                params.push(ParamDecl {
                    name: pname,
                    value,
                    local: false,
                });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        // ANSI port list
        let mut ports = Vec::new();
        if self.eat(TokenKind::LParen) && !self.eat(TokenKind::RParen) {
            let mut dir = None;
            let mut is_reg = false;
            let mut range = None;
            loop {
                // each entry may restate direction/range or inherit them
                if self.eat_kw(Keyword::Input) {
                    dir = Some(Direction::Input);
                    is_reg = false;
                    range = None;
                } else if self.eat_kw(Keyword::Output) {
                    dir = Some(Direction::Output);
                    is_reg = false;
                    range = None;
                } else if self.eat_kw(Keyword::Inout) {
                    return self.err("inout ports are not supported");
                }
                if self.eat_kw(Keyword::Reg) {
                    is_reg = true;
                }
                self.eat_kw(Keyword::Wire);
                if matches!(self.peek(), TokenKind::LBracket) {
                    range = Some(self.range()?);
                }
                let pname = self.ident()?;
                let init = if self.eat(TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                let direction = match dir {
                    Some(d) => d,
                    None => return self.err("port without direction"),
                };
                ports.push(PortDecl {
                    direction,
                    is_reg,
                    range: range.clone(),
                    name: pname,
                    init,
                });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        self.expect(TokenKind::Semi)?;
        let mut items = Vec::new();
        while !self.eat_kw(Keyword::Endmodule) {
            if matches!(self.peek(), TokenKind::Eof) {
                return self.err("unexpected EOF inside module");
            }
            items.push(self.item()?);
        }
        Ok(Module {
            name,
            params,
            ports,
            items,
        })
    }

    /// `[msb:lsb]`
    fn range(&mut self) -> Result<(Expr, Expr), ParseError> {
        self.expect(TokenKind::LBracket)?;
        let msb = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let lsb = self.expr()?;
        self.expect(TokenKind::RBracket)?;
        Ok((msb, lsb))
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        match self.peek().clone() {
            TokenKind::Kw(Keyword::Wire)
            | TokenKind::Kw(Keyword::Reg)
            | TokenKind::Kw(Keyword::Integer) => {
                let is_reg = !matches!(self.peek(), TokenKind::Kw(Keyword::Wire));
                self.bump();
                let range = if matches!(self.peek(), TokenKind::LBracket) {
                    Some(self.range()?)
                } else if is_reg
                    && matches!(
                        self.toks[self.pos - 1].kind,
                        TokenKind::Kw(Keyword::Integer)
                    )
                {
                    // `integer` = 32-bit reg
                    Some((Expr::num(31), Expr::num(0)))
                } else {
                    None
                };
                let mut names = Vec::new();
                loop {
                    let n = self.ident()?;
                    // `reg [7:0] mem [0:15];` — memory array
                    if is_reg && names.is_empty() && matches!(self.peek(), TokenKind::LBracket) {
                        let depth = self.range()?;
                        self.expect(TokenKind::Semi)?;
                        return Ok(Item::MemDecl {
                            range,
                            name: n,
                            depth,
                        });
                    }
                    let init = if self.eat(TokenKind::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    names.push((n, init));
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::Semi)?;
                Ok(Item::NetDecl {
                    is_reg,
                    range,
                    names,
                })
            }
            TokenKind::Kw(Keyword::Parameter) | TokenKind::Kw(Keyword::Localparam) => {
                let local = matches!(self.peek(), TokenKind::Kw(Keyword::Localparam));
                self.bump();
                // optional range on parameters is ignored
                if matches!(self.peek(), TokenKind::LBracket) {
                    let _ = self.range()?;
                }
                let name = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Item::Param(ParamDecl { name, value, local }))
            }
            TokenKind::Kw(Keyword::Assign) => {
                self.bump();
                let lhs = self.lvalue()?;
                self.expect(TokenKind::Assign)?;
                let rhs = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Item::Assign { lhs, rhs })
            }
            TokenKind::Kw(Keyword::Always) => {
                self.bump();
                self.expect(TokenKind::At)?;
                if self.eat(TokenKind::Star) {
                    // always @*
                    let body = self.stmt()?;
                    return Ok(Item::AlwaysComb { body });
                }
                self.expect(TokenKind::LParen)?;
                if self.eat(TokenKind::Star) {
                    self.expect(TokenKind::RParen)?;
                    let body = self.stmt()?;
                    return Ok(Item::AlwaysComb { body });
                }
                if self.eat_kw(Keyword::Posedge) {
                    let clock = self.ident()?;
                    if self.eat_kw(Keyword::Negedge) || !matches!(self.peek(), TokenKind::RParen) {
                        // `or posedge rst` style async resets unsupported
                        if let TokenKind::Ident(w) = self.peek() {
                            if w == "or" {
                                return self.err(
                                    "asynchronous reset sensitivity lists are not supported; \
                                     use synchronous resets",
                                );
                            }
                        }
                        return self.err("unsupported sensitivity list");
                    }
                    self.expect(TokenKind::RParen)?;
                    let body = self.stmt()?;
                    return Ok(Item::AlwaysFf { clock, body });
                }
                if self.eat_kw(Keyword::Negedge) {
                    return self.err("negedge clocking is not supported");
                }
                // level-sensitive list `(a or b)` → combinational
                loop {
                    let _ = self.ident()?;
                    if let TokenKind::Ident(w) = self.peek() {
                        if w == "or" {
                            self.bump();
                            continue;
                        }
                    }
                    if self.eat(TokenKind::Comma) {
                        continue;
                    }
                    break;
                }
                self.expect(TokenKind::RParen)?;
                let body = self.stmt()?;
                Ok(Item::AlwaysComb { body })
            }
            TokenKind::Kw(Keyword::Initial)
            | TokenKind::Kw(Keyword::Generate)
            | TokenKind::Kw(Keyword::Genvar)
            | TokenKind::Kw(Keyword::For)
            | TokenKind::Kw(Keyword::Function) => {
                self.err("construct not supported by this subset")
            }
            TokenKind::Ident(_) => {
                // module instantiation: Mod [#(…)] inst ( … );
                let module = self.ident()?;
                let mut param_overrides = Vec::new();
                if self.eat(TokenKind::Hash) {
                    self.expect(TokenKind::LParen)?;
                    loop {
                        self.expect(TokenKind::Dot)?;
                        let p = self.ident()?;
                        self.expect(TokenKind::LParen)?;
                        let v = self.expr()?;
                        self.expect(TokenKind::RParen)?;
                        param_overrides.push((p, v));
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                let name = self.ident()?;
                self.expect(TokenKind::LParen)?;
                let mut connections = Vec::new();
                if !matches!(self.peek(), TokenKind::RParen) {
                    loop {
                        if self.eat(TokenKind::Dot) {
                            let port = self.ident()?;
                            self.expect(TokenKind::LParen)?;
                            let e = if matches!(self.peek(), TokenKind::RParen) {
                                None
                            } else {
                                Some(self.expr()?)
                            };
                            self.expect(TokenKind::RParen)?;
                            connections.push((Some(port), e));
                        } else {
                            connections.push((None, Some(self.expr()?)));
                        }
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Item::Instance {
                    module,
                    name,
                    param_overrides,
                    connections,
                })
            }
            _ => self.err("expected module item"),
        }
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        if self.eat(TokenKind::LBrace) {
            self.depth += 1;
            let parts = if self.depth > MAX_NEST {
                self.err("lvalue nesting too deep")
            } else {
                let mut parts = Vec::new();
                loop {
                    parts.push(self.lvalue()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                Ok(parts)
            };
            self.depth -= 1;
            let parts = parts?;
            self.expect(TokenKind::RBrace)?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.ident()?;
        if self.eat(TokenKind::LBracket) {
            let a = self.expr()?;
            if self.eat(TokenKind::Colon) {
                let b = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                return Ok(LValue::Part(name, a, b));
            }
            self.expect(TokenKind::RBracket)?;
            return Ok(LValue::Bit(name, a));
        }
        Ok(LValue::Ident(name))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.depth += 1;
        let r = if self.depth > MAX_NEST {
            self.err("statement nesting too deep")
        } else {
            self.stmt_inner()
        };
        self.depth -= 1;
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::Kw(Keyword::Begin) => {
                self.bump();
                // optional block label `: name`
                if self.eat(TokenKind::Colon) {
                    let _ = self.ident()?;
                }
                let mut stmts = Vec::new();
                while !self.eat_kw(Keyword::End) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return self.err("unexpected EOF in begin/end");
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            TokenKind::Kw(Keyword::If) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat_kw(Keyword::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Kw(Keyword::Case) | TokenKind::Kw(Keyword::Casez) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let subject = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let mut arms = Vec::new();
                let mut default = None;
                while !self.eat_kw(Keyword::Endcase) {
                    if self.eat_kw(Keyword::Default) {
                        self.eat(TokenKind::Colon);
                        default = Some(Box::new(self.stmt()?));
                        continue;
                    }
                    let mut vals = vec![self.expr()?];
                    while self.eat(TokenKind::Comma) {
                        vals.push(self.expr()?);
                    }
                    self.expect(TokenKind::Colon)?;
                    let s = self.stmt()?;
                    arms.push((vals, s));
                }
                Ok(Stmt::Case {
                    subject,
                    arms,
                    default,
                })
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            _ => {
                let lhs = self.lvalue()?;
                let nonblocking = match self.bump() {
                    TokenKind::Assign => false,
                    TokenKind::NonBlocking => true,
                    _ => return self.err("expected = or <= in assignment"),
                };
                let rhs = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assign {
                    lhs,
                    rhs,
                    nonblocking,
                })
            }
        }
    }

    // ---- expressions (precedence climbing) ----

    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        let r = if self.depth > MAX_NEST {
            self.err("expression nesting too deep")
        } else {
            self.ternary()
        };
        self.depth -= 1;
        r
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let c = self.logic_or()?;
        if self.eat(TokenKind::Question) {
            let t = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let f = self.expr()?;
            return Ok(Expr::Ternary(Box::new(c), Box::new(t), Box::new(f)));
        }
        Ok(c)
    }

    fn logic_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.logic_and()?;
        while self.eat(TokenKind::PipePipe) {
            let r = self.logic_and()?;
            e = Expr::Binary(BinaryOp::LogicOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn logic_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_or()?;
        while self.eat(TokenKind::AmpAmp) {
            let r = self.bit_or()?;
            e = Expr::Binary(BinaryOp::LogicAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_xor()?;
        while self.eat(TokenKind::Pipe) {
            let r = self.bit_xor()?;
            e = Expr::Binary(BinaryOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_and()?;
        loop {
            if self.eat(TokenKind::Caret) {
                let r = self.bit_and()?;
                e = Expr::Binary(BinaryOp::Xor, Box::new(e), Box::new(r));
            } else if self.eat(TokenKind::TildeCaret) {
                let r = self.bit_and()?;
                e = Expr::Binary(BinaryOp::Xnor, Box::new(e), Box::new(r));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat(TokenKind::Amp) {
            let r = self.equality()?;
            e = Expr::Binary(BinaryOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            if self.eat(TokenKind::EqEq) {
                let r = self.relational()?;
                e = Expr::Binary(BinaryOp::Eq, Box::new(e), Box::new(r));
            } else if self.eat(TokenKind::BangEq) {
                let r = self.relational()?;
                e = Expr::Binary(BinaryOp::Ne, Box::new(e), Box::new(r));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinaryOp::Lt,
                // `<=` lexes as NonBlocking; in expression position it is ≤
                TokenKind::NonBlocking => BinaryOp::Le,
                TokenKind::Gt => BinaryOp::Gt,
                TokenKind::GtEq => BinaryOp::Ge,
                _ => break,
            };
            self.bump();
            let r = self.shift()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinaryOp::Shl,
                TokenKind::Shr => BinaryOp::Shr,
                _ => break,
            };
            self.bump();
            let r = self.additive()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            TokenKind::Tilde => Some(UnaryOp::Not),
            TokenKind::Bang => Some(UnaryOp::LogicNot),
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Amp => Some(UnaryOp::ReduceAnd),
            TokenKind::Pipe => Some(UnaryOp::ReduceOr),
            TokenKind::Caret => Some(UnaryOp::ReduceXor),
            _ => None,
        };
        if let Some(op) = op {
            self.depth += 1;
            let e = if self.depth > MAX_NEST {
                self.err("expression nesting too deep")
            } else {
                self.bump();
                self.unary()
            };
            self.depth -= 1;
            return Ok(Expr::Unary(op, Box::new(e?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat(TokenKind::LBracket) {
            let a = self.expr()?;
            if self.eat(TokenKind::Colon) {
                let b = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                e = Expr::Part(Box::new(e), Box::new(a), Box::new(b));
            } else {
                self.expect(TokenKind::RBracket)?;
                e = Expr::Bit(Box::new(e), Box::new(a));
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Number { size, value } => {
                self.bump();
                Ok(Expr::Number { size, value })
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Ident(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBrace => {
                self.bump();
                // {n{a}} replication or {a, b, …} concat
                let first = self.expr()?;
                if matches!(self.peek(), TokenKind::LBrace) {
                    // replication: first is the count
                    self.bump();
                    let inner = self.expr()?;
                    self.expect(TokenKind::RBrace)?;
                    self.expect(TokenKind::RBrace)?;
                    return Ok(Expr::Repeat(Box::new(first), Box::new(inner)));
                }
                let mut parts = vec![first];
                while self.eat(TokenKind::Comma) {
                    parts.push(self.expr()?);
                }
                self.expect(TokenKind::RBrace)?;
                Ok(Expr::Concat(parts))
            }
            _ => self.err("expected expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_module() {
        let f = parse(
            "module half_adder(input a, input b, output s, output c);
               assign s = a ^ b;
               assign c = a & b;
             endmodule",
        )
        .unwrap();
        assert_eq!(f.modules.len(), 1);
        let m = &f.modules[0];
        assert_eq!(m.name, "half_adder");
        assert_eq!(m.ports.len(), 4);
        assert_eq!(m.items.len(), 2);
    }

    #[test]
    fn parse_vector_ports_and_ranges() {
        let f = parse(
            "module m(input [7:0] a, output reg [7:0] q);
               always @(posedge clk) q <= a;
             endmodule",
        )
        .unwrap();
        let m = &f.modules[0];
        assert!(m.ports[0].range.is_some());
        assert!(m.ports[1].is_reg);
        assert!(matches!(m.items[0], Item::AlwaysFf { .. }));
    }

    #[test]
    fn parse_always_comb_and_case() {
        let f = parse(
            "module m(input [1:0] s, input a, input b, output reg y);
               always @(*) begin
                 case (s)
                   2'd0: y = a;
                   2'd1, 2'd2: y = b;
                   default: y = 1'b0;
                 endcase
               end
             endmodule",
        )
        .unwrap();
        match &f.modules[0].items[0] {
            Item::AlwaysComb {
                body: Stmt::Block(stmts),
            } => match &stmts[0] {
                Stmt::Case { arms, default, .. } => {
                    assert_eq!(arms.len(), 2);
                    assert_eq!(arms[1].0.len(), 2);
                    assert!(default.is_some());
                }
                other => panic!("expected case, got {other:?}"),
            },
            other => panic!("expected comb block, got {other:?}"),
        }
    }

    #[test]
    fn parse_instance_with_params() {
        let f = parse(
            "module top(input clk, input [3:0] a, output [3:0] q);
               counter #(.W(4)) c0 (.clk(clk), .load(a), .q(q));
             endmodule",
        )
        .unwrap();
        match &f.modules[0].items[0] {
            Item::Instance {
                module,
                name,
                param_overrides,
                connections,
            } => {
                assert_eq!(module, "counter");
                assert_eq!(name, "c0");
                assert_eq!(param_overrides.len(), 1);
                assert_eq!(connections.len(), 3);
            }
            other => panic!("expected instance, got {other:?}"),
        }
    }

    #[test]
    fn parse_expression_precedence() {
        let f =
            parse("module m(input a, input b, input c, output y); assign y = a | b & c; endmodule")
                .unwrap();
        match &f.modules[0].items[0] {
            Item::Assign { rhs, .. } => match rhs {
                // & binds tighter than |
                Expr::Binary(BinaryOp::Or, l, r) => {
                    assert_eq!(**l, Expr::Ident("a".into()));
                    assert!(matches!(**r, Expr::Binary(BinaryOp::And, _, _)));
                }
                other => panic!("got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn le_in_expression_position() {
        let f =
            parse("module m(input [3:0] a, output y); assign y = a <= 4'd9; endmodule").unwrap();
        match &f.modules[0].items[0] {
            Item::Assign { rhs, .. } => {
                assert!(matches!(rhs, Expr::Binary(BinaryOp::Le, _, _)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn concat_replication_partselect() {
        let f = parse(
            "module m(input [7:0] a, output [15:0] y);
               assign y = {a[7:4], {3{a[0]}}, a[3:0], 1'b1, a[7], a[6], a[5], a[4]};
             endmodule",
        )
        .unwrap();
        match &f.modules[0].items[0] {
            Item::Assign {
                rhs: Expr::Concat(parts),
                ..
            } => assert_eq!(parts.len(), 8),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn unsupported_constructs_error() {
        assert!(parse("module m(inout a); endmodule").is_err());
        assert!(parse("module m(input clk); always @(negedge clk) ; endmodule").is_err());
        assert!(parse("module m(); initial begin end endmodule").is_err());
    }

    #[test]
    fn multiple_modules() {
        let f = parse(
            "module a(input x, output y); assign y = x; endmodule
             module b(input x, output y); a a0 (.x(x), .y(y)); endmodule",
        )
        .unwrap();
        assert_eq!(f.modules.len(), 2);
    }

    #[test]
    fn if_else_chain() {
        let f = parse(
            "module m(input [1:0] s, output reg y);
               always @* if (s == 2'd0) y = 1'b0; else if (s == 2'd1) y = 1'b1; else y = 1'b0;
             endmodule",
        )
        .unwrap();
        match &f.modules[0].items[0] {
            Item::AlwaysComb {
                body: Stmt::If { else_branch, .. },
            } => {
                assert!(matches!(**else_branch.as_ref().unwrap(), Stmt::If { .. }));
            }
            other => panic!("got {other:?}"),
        }
    }
}
