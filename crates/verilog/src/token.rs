//! Lexer for the synthesizable Verilog subset.

use std::fmt;

/// A lexical token with its source position (for error messages).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// Token kinds. Keywords are folded into `Kw`; multi-character operators get
/// their own variants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    Ident(String),
    /// An integer literal, possibly sized/based: `42`, `8'hFF`, `4'b1010`.
    /// Stored as (optional size in bits, value).
    Number {
        size: Option<u32>,
        value: u64,
    },
    Kw(Keyword),
    // punctuation / operators
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Colon,
    Dot,
    Hash,
    At,
    Question,
    Assign,      // =
    NonBlocking, // <=  (also less-equal; parser disambiguates by context)
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    TildeCaret, // ~^ or ^~
    Tilde,
    Bang,
    EqEq,
    BangEq,
    Lt,
    Gt,
    GtEq,
    Shl, // <<
    Shr, // >>
    Eof,
}

/// Reserved words the subset understands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Assign,
    Always,
    Posedge,
    Negedge,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Endcase,
    Default,
    Parameter,
    Localparam,
    Integer,
    Genvar,
    Generate,
    Endgenerate,
    For,
    Initial,
    Function,
    Endfunction,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "module" => Module,
            "endmodule" => Endmodule,
            "input" => Input,
            "output" => Output,
            "inout" => Inout,
            "wire" => Wire,
            "reg" => Reg,
            "assign" => Assign,
            "always" => Always,
            "posedge" => Posedge,
            "negedge" => Negedge,
            "begin" => Begin,
            "end" => End,
            "if" => If,
            "else" => Else,
            "case" => Case,
            "casez" => Casez,
            "endcase" => Endcase,
            "default" => Default,
            "parameter" => Parameter,
            "localparam" => Localparam,
            "integer" => Integer,
            "genvar" => Genvar,
            "generate" => Generate,
            "endgenerate" => Endgenerate,
            "for" => For,
            "initial" => Initial,
            "function" => Function,
            "endfunction" => Endfunction,
            _ => return None,
        })
    }
}

/// Lexer error with position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize Verilog source. Comments (`//`, `/* */`) and compiler directives
/// (lines starting with `` ` ``) are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! err {
        ($($a:tt)*) => {
            return Err(LexError { message: format!($($a)*), line, col })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tl, tc) = (line, col);
        let mut push = |kind: TokenKind| {
            toks.push(Token {
                kind,
                line: tl,
                col: tc,
            })
        };
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
                continue;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
                col += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        err!("unterminated block comment");
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '`' => {
                // compiler directive: skip to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$')
                {
                    i += 1;
                }
                let word = &src[start..i];
                col += (i - start) as u32;
                match Keyword::from_str(word) {
                    Some(kw) => push(TokenKind::Kw(kw)),
                    None => push(TokenKind::Ident(word.to_string())),
                }
            }
            c if c.is_ascii_digit() || c == '\'' => {
                // number: [size] ['base] digits  — also bare '<base> form
                let start = i;
                let mut size: Option<u32> = None;
                if c.is_ascii_digit() {
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    let digits: String = src[start..i].chars().filter(|&c| c != '_').collect();
                    let val: u64 = match digits.parse() {
                        Ok(v) => v,
                        Err(_) => err!("bad decimal literal '{digits}'"),
                    };
                    if i < bytes.len() && bytes[i] == b'\'' {
                        // bound the declared width: a fuzzer-supplied
                        // `4000000000'h0` must not drive later width math
                        if val > (1 << 20) {
                            err!("literal size {val} is unreasonably large");
                        }
                        size = Some(val as u32);
                    } else {
                        col += (i - start) as u32;
                        push(TokenKind::Number {
                            size: None,
                            value: val,
                        });
                        continue;
                    }
                }
                // based literal
                if i >= bytes.len() || bytes[i] != b'\'' {
                    err!("expected based literal");
                }
                i += 1; // consume '
                if i >= bytes.len() {
                    err!("truncated based literal");
                }
                let base_c = (bytes[i] as char).to_ascii_lowercase();
                let radix = match base_c {
                    'b' => 2,
                    'o' => 8,
                    'd' => 10,
                    'h' => 16,
                    _ => err!("unknown base '{base_c}'"),
                };
                i += 1;
                let dstart = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let digits: String = src[dstart..i].chars().filter(|&c| c != '_').collect();
                if digits.is_empty() {
                    err!("based literal has no digits");
                }
                let value = match u64::from_str_radix(&digits, radix) {
                    Ok(v) => v,
                    Err(_) => err!("bad base-{radix} literal '{digits}'"),
                };
                col += (i - start) as u32;
                push(TokenKind::Number { size, value });
            }
            _ => {
                // operators / punctuation — compare raw bytes, never slice
                // `src` here: `i` may not sit on a UTF-8 char boundary
                let two: &[u8] = if i + 1 < bytes.len() {
                    &bytes[i..i + 2]
                } else {
                    b""
                };
                let (kind, len) = match two {
                    b"&&" => (TokenKind::AmpAmp, 2),
                    b"||" => (TokenKind::PipePipe, 2),
                    b"==" => (TokenKind::EqEq, 2),
                    b"!=" => (TokenKind::BangEq, 2),
                    b"<=" => (TokenKind::NonBlocking, 2),
                    b">=" => (TokenKind::GtEq, 2),
                    b"<<" => (TokenKind::Shl, 2),
                    b">>" => (TokenKind::Shr, 2),
                    b"~^" | b"^~" => (TokenKind::TildeCaret, 2),
                    _ => {
                        let k = match c {
                            '(' => TokenKind::LParen,
                            ')' => TokenKind::RParen,
                            '[' => TokenKind::LBracket,
                            ']' => TokenKind::RBracket,
                            '{' => TokenKind::LBrace,
                            '}' => TokenKind::RBrace,
                            ';' => TokenKind::Semi,
                            ',' => TokenKind::Comma,
                            ':' => TokenKind::Colon,
                            '.' => TokenKind::Dot,
                            '#' => TokenKind::Hash,
                            '@' => TokenKind::At,
                            '?' => TokenKind::Question,
                            '=' => TokenKind::Assign,
                            '+' => TokenKind::Plus,
                            '-' => TokenKind::Minus,
                            '*' => TokenKind::Star,
                            '/' => TokenKind::Slash,
                            '%' => TokenKind::Percent,
                            '&' => TokenKind::Amp,
                            '|' => TokenKind::Pipe,
                            '^' => TokenKind::Caret,
                            '~' => TokenKind::Tilde,
                            '!' => TokenKind::Bang,
                            '<' => TokenKind::Lt,
                            '>' => TokenKind::Gt,
                            _ => {
                                // `c` is just the lead byte; show the real
                                // (possibly multi-byte) character in the error
                                let full = src.get(i..).and_then(|s| s.chars().next()).unwrap_or(c);
                                err!("unexpected character '{full}'");
                            }
                        };
                        (k, 1)
                    }
                };
                push(kind);
                i += len;
                col += len as u32;
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_module_header() {
        let k = kinds("module m(input a);");
        assert_eq!(
            k,
            vec![
                TokenKind::Kw(Keyword::Module),
                TokenKind::Ident("m".into()),
                TokenKind::LParen,
                TokenKind::Kw(Keyword::Input),
                TokenKind::Ident("a".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("42 8'hFF 4'b1010 'd7 16'd65535 3'o7 1_000"),
            vec![
                TokenKind::Number {
                    size: None,
                    value: 42
                },
                TokenKind::Number {
                    size: Some(8),
                    value: 255
                },
                TokenKind::Number {
                    size: Some(4),
                    value: 10
                },
                TokenKind::Number {
                    size: None,
                    value: 7
                },
                TokenKind::Number {
                    size: Some(16),
                    value: 65535
                },
                TokenKind::Number {
                    size: Some(3),
                    value: 7
                },
                TokenKind::Number {
                    size: None,
                    value: 1000
                },
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("a <= b == c && d ~^ e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::NonBlocking,
                TokenKind::Ident("b".into()),
                TokenKind::EqEq,
                TokenKind::Ident("c".into()),
                TokenKind::AmpAmp,
                TokenKind::Ident("d".into()),
                TokenKind::TildeCaret,
                TokenKind::Ident("e".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_directives_skipped() {
        let k = kinds("a // line\n/* block\nmulti */ b\n`timescale 1ns/1ps\nc");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_reported() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_literal_errors() {
        assert!(lex("8'hZZ").is_err());
        assert!(lex("4'q0").is_err());
        assert!(lex("/* open").is_err());
    }
}
