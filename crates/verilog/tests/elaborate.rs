//! End-to-end frontend tests: Verilog source → netlist → behavioral check
//! with a tiny interpreter (the real reference simulator lives in
//! `c2nn-refsim`; this one keeps the frontend tests self-contained).

use c2nn_netlist::{topo_order, Netlist};
use c2nn_verilog::compile;

/// Evaluate a combinational netlist; `inputs` packed LSB-first in port order.
fn eval_comb(nl: &Netlist, inputs: u64) -> u64 {
    let mut vals = vec![false; nl.num_nets as usize];
    for (j, &inp) in nl.inputs.iter().enumerate() {
        vals[inp.index()] = inputs >> j & 1 == 1;
    }
    for gi in topo_order(nl).unwrap() {
        let g = &nl.gates[gi];
        let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
        vals[g.output.index()] = g.kind.eval(&ins);
    }
    nl.outputs
        .iter()
        .enumerate()
        .map(|(j, &o)| (vals[o.index()] as u64) << j)
        .sum()
}

/// Step a sequential netlist: state per flip-flop, returns outputs per cycle.
fn run_seq(nl: &Netlist, stimuli: &[u64]) -> Vec<u64> {
    let cut = c2nn_netlist::prepare(nl).unwrap();
    let mut state = cut.state_init.clone();
    let mut outs = Vec::new();
    for &stim in stimuli {
        let mut packed = stim
            & ((1u64 << cut.num_primary_inputs) - 1)
                .max(u64::MAX >> (64 - cut.num_primary_inputs.max(1)));
        // append state bits above the primary inputs
        for (i, &s) in state.iter().enumerate() {
            packed |= (s as u64) << (cut.num_primary_inputs + i);
        }
        let all = eval_comb(&cut.comb, packed);
        outs.push(all & ((1u64 << cut.num_primary_outputs) - 1));
        state = (0..cut.state_bits())
            .map(|i| all >> (cut.num_primary_outputs + i) & 1 == 1)
            .collect();
    }
    outs
}

#[test]
fn full_adder_from_verilog() {
    let nl = compile(
        "module fa(input a, input b, input cin, output s, output cout);
           assign s = a ^ b ^ cin;
           assign cout = (a & b) | (a & cin) | (b & cin);
         endmodule",
        "fa",
    )
    .unwrap();
    for x in 0..8u64 {
        let a = x & 1;
        let b = x >> 1 & 1;
        let c = x >> 2 & 1;
        let want = (a + b + c) & 1 | ((a + b + c) >> 1) << 1;
        assert_eq!(eval_comb(&nl, x), want, "x={x:b}");
    }
}

#[test]
fn adder_with_arithmetic_operator() {
    let nl = compile(
        "module add(input [3:0] a, input [3:0] b, output [4:0] s);
           assign s = a + b;
         endmodule",
        "add",
    )
    .unwrap();
    for a in 0..16u64 {
        for b in 0..16u64 {
            assert_eq!(eval_comb(&nl, a | b << 4), a + b, "{a}+{b}");
        }
    }
}

#[test]
fn subtraction_and_comparison() {
    let nl = compile(
        "module m(input [3:0] a, input [3:0] b, output [3:0] d, output lt, output eq);
           assign d = a - b;
           assign lt = a < b;
           assign eq = a == b;
         endmodule",
        "m",
    )
    .unwrap();
    for a in 0..16u64 {
        for b in 0..16u64 {
            let got = eval_comb(&nl, a | b << 4);
            assert_eq!(got & 0xf, a.wrapping_sub(b) & 0xf);
            assert_eq!(got >> 4 & 1, (a < b) as u64);
            assert_eq!(got >> 5 & 1, (a == b) as u64);
        }
    }
}

#[test]
fn multiplier() {
    let nl = compile(
        "module mul(input [3:0] a, input [3:0] b, output [3:0] p);
           assign p = a * b;
         endmodule",
        "mul",
    )
    .unwrap();
    for a in 0..16u64 {
        for b in 0..16u64 {
            assert_eq!(eval_comb(&nl, a | b << 4), (a * b) & 0xf, "{a}*{b}");
        }
    }
}

#[test]
fn ternary_and_reductions() {
    let nl = compile(
        "module m(input [3:0] a, input s, output [3:0] y, output p);
           assign y = s ? ~a : a;
           assign p = ^a;
         endmodule",
        "m",
    )
    .unwrap();
    for a in 0..16u64 {
        for s in 0..2u64 {
            let got = eval_comb(&nl, a | s << 4);
            let want_y = if s == 1 { !a & 0xf } else { a };
            assert_eq!(got & 0xf, want_y);
            assert_eq!(got >> 4 & 1, (a.count_ones() % 2) as u64);
        }
    }
}

#[test]
fn concat_replication_shifts() {
    let nl = compile(
        "module m(input [3:0] a, input [1:0] k, output [7:0] y, output [7:0] z);
           assign y = {a, a[3:2], {2{a[0]}}};
           assign z = {4'b0, a} << k;
         endmodule",
        "m",
    )
    .unwrap();
    for a in 0..16u64 {
        for k in 0..4u64 {
            let got = eval_comb(&nl, a | k << 4);
            let want_y = (a << 4) | ((a >> 2) << 2) | if a & 1 == 1 { 0b11 } else { 0 };
            assert_eq!(got & 0xff, want_y, "a={a:04b}");
            assert_eq!(got >> 8 & 0xff, (a << k) & 0xff, "a={a} k={k}");
        }
    }
}

#[test]
fn dynamic_bit_select() {
    let nl = compile(
        "module m(input [7:0] a, input [2:0] i, output y);
           assign y = a[i];
         endmodule",
        "m",
    )
    .unwrap();
    for a in [0x5au64, 0xff, 0x01, 0x80] {
        for i in 0..8u64 {
            assert_eq!(eval_comb(&nl, a | i << 8), a >> i & 1, "a={a:x} i={i}");
        }
    }
}

#[test]
fn combinational_always_with_case() {
    let nl = compile(
        "module alu(input [1:0] op, input [3:0] a, input [3:0] b, output reg [3:0] y);
           always @(*) begin
             case (op)
               2'd0: y = a + b;
               2'd1: y = a - b;
               2'd2: y = a & b;
               default: y = a ^ b;
             endcase
           end
         endmodule",
        "alu",
    )
    .unwrap();
    for op in 0..4u64 {
        for a in 0..16u64 {
            for b in 0..16u64 {
                let want = match op {
                    0 => (a + b) & 0xf,
                    1 => a.wrapping_sub(b) & 0xf,
                    2 => a & b,
                    _ => a ^ b,
                };
                assert_eq!(
                    eval_comb(&nl, op | a << 2 | b << 6),
                    want,
                    "op={op} {a},{b}"
                );
            }
        }
    }
}

#[test]
fn comb_default_then_override() {
    let nl = compile(
        "module m(input [3:0] a, output reg y);
           always @(*) begin
             y = 1'b0;
             if (a == 4'd7) y = 1'b1;
           end
         endmodule",
        "m",
    )
    .unwrap();
    for a in 0..16u64 {
        assert_eq!(eval_comb(&nl, a), (a == 7) as u64);
    }
}

#[test]
fn counter_with_reset_and_enable() {
    let nl = compile(
        "module ctr(input clk, input rst, input en, output reg [3:0] q);
           always @(posedge clk) begin
             if (rst) q <= 4'd0;
             else if (en) q <= q + 4'd1;
           end
         endmodule",
        "ctr",
    )
    .unwrap();
    // clock input must be stripped: remaining inputs are rst, en
    assert_eq!(nl.inputs.len(), 2);
    assert_eq!(nl.flipflops.len(), 4);
    // rst at bit0, en at bit1
    let stim = [
        0b01u64, // rst
        0b10,    // count -> 1
        0b10,    // count -> 2
        0b00,    // hold
        0b10,    // count -> 3
        0b01,    // rst -> 0
        0b10,    // count -> 1
    ];
    let outs = run_seq(&nl, &stim);
    assert_eq!(outs, vec![0, 0, 1, 2, 2, 3, 0]);
}

#[test]
fn hierarchy_is_flattened() {
    let nl = compile(
        "module ha(input a, input b, output s, output c);
           assign s = a ^ b;
           assign c = a & b;
         endmodule
         module fa(input a, input b, input cin, output s, output cout);
           wire s1, c1, c2;
           ha h0 (.a(a), .b(b), .s(s1), .c(c1));
           ha h1 (.a(s1), .b(cin), .s(s), .c(c2));
           assign cout = c1 | c2;
         endmodule",
        "fa",
    )
    .unwrap();
    for x in 0..8u64 {
        let total = (x & 1) + (x >> 1 & 1) + (x >> 2 & 1);
        assert_eq!(eval_comb(&nl, x), total & 1 | (total >> 1) << 1);
    }
}

#[test]
fn parameterized_instance() {
    let nl = compile(
        "module addw #(parameter W = 2) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] s);
           assign s = a + b;
         endmodule
         module top(input [5:0] a, input [5:0] b, output [5:0] s);
           addw #(.W(6)) u (.a(a), .b(b), .s(s));
         endmodule",
        "top",
    )
    .unwrap();
    assert_eq!(nl.inputs.len(), 12);
    for (a, b) in [(0u64, 0u64), (31, 1), (63, 63), (17, 46)] {
        assert_eq!(eval_comb(&nl, a | b << 6), (a + b) & 0x3f);
    }
}

#[test]
fn shift_register_with_concat_lvalue() {
    let nl = compile(
        "module sr(input clk, input d, output reg [3:0] q);
           always @(posedge clk) q <= {q[2:0], d};
         endmodule",
        "sr",
    )
    .unwrap();
    let outs = run_seq(&nl, &[1, 0, 1, 1, 0]);
    // q shows the value *before* the edge of each cycle
    assert_eq!(outs, vec![0b0000, 0b0001, 0b0010, 0b0101, 0b1011]);
}

#[test]
fn sequential_case_fsm() {
    // 2-bit Gray counter as an FSM through case
    let nl = compile(
        "module fsm(input clk, output reg [1:0] s);
           always @(posedge clk) begin
             case (s)
               2'b00: s <= 2'b01;
               2'b01: s <= 2'b11;
               2'b11: s <= 2'b10;
               2'b10: s <= 2'b00;
             endcase
           end
         endmodule",
        "fsm",
    )
    .unwrap();
    let outs = run_seq(&nl, &[0, 0, 0, 0, 0]);
    assert_eq!(outs, vec![0b00, 0b01, 0b11, 0b10, 0b00]);
}

#[test]
fn reg_initial_value() {
    let nl = compile(
        "module m(input clk, output reg q = 1'b1);
           always @(posedge clk) q <= 1'b0;
         endmodule
         ",
        "m",
    )
    .unwrap();
    assert!(nl.flipflops[0].init);
    let outs = run_seq(&nl, &[0, 0]);
    assert_eq!(outs, vec![1, 0]);
}

#[test]
fn part_select_with_nonzero_lsb() {
    let nl = compile(
        "module m(input [11:4] a, output [3:0] y);
           assign y = a[9:6];
         endmodule",
        "m",
    )
    .unwrap();
    // a has 8 bits (ports), y picks bits 6..=9 → positions 2..=5
    for a in [0u64, 0xff, 0xa5, 0x3c] {
        assert_eq!(eval_comb(&nl, a), a >> 2 & 0xf);
    }
}

#[test]
fn errors_are_reported() {
    // unknown signal
    assert!(compile("module m(output y); assign y = nope; endmodule", "m").is_err());
    // multiple drivers
    assert!(compile(
        "module m(input a, output y); assign y = a; assign y = ~a; endmodule",
        "m"
    )
    .is_err());
    // blocking assign in sequential block
    assert!(compile(
        "module m(input clk, input d, output reg q); always @(posedge clk) q = d; endmodule",
        "m"
    )
    .is_err());
    // unknown module
    assert!(compile(
        "module m(input a, output y); foo f(.a(a), .y(y)); endmodule",
        "m"
    )
    .is_err());
    // latch: comb always reading its own unassigned value
    assert!(compile(
        "module m(input c, input d, output reg q); always @(*) if (c) q = d; endmodule",
        "m"
    )
    .is_err());
}

#[test]
fn gate_counts_are_reasonable() {
    // an 8-bit adder should be tens of gates, not thousands
    let nl = compile(
        "module add(input [7:0] a, input [7:0] b, output [7:0] s);
           assign s = a + b;
         endmodule",
        "add",
    )
    .unwrap();
    let n = nl.gate_count();
    assert!((30..=120).contains(&n), "adder gate count {n}");
}
