//! Differential fuzzing of the frontend: generate random 8-bit expression
//! trees, print them as Verilog, run them through the full
//! lexer/parser/elaborator/netlist pipeline, and compare against a direct
//! software interpreter on random inputs. Any disagreement is a frontend
//! miscompilation.

use c2nn_netlist::{topo_order, Netlist};
use proptest::prelude::*;

/// An 8-bit expression over inputs a, b, c.
#[derive(Clone, Debug)]
enum E {
    Input(u8),
    Const(u8),
    Not(Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    ShlC(Box<E>, u8),
    ShrC(Box<E>, u8),
    Ternary(Box<C>, Box<E>, Box<E>),
}

/// A 1-bit comparison used as a ternary condition.
#[derive(Clone, Debug)]
enum C {
    Eq(Box<E>, Box<E>),
    Ne(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Ge(Box<E>, Box<E>),
}

impl E {
    fn eval(&self, inp: [u8; 3]) -> u8 {
        match self {
            E::Input(i) => inp[*i as usize],
            E::Const(v) => *v,
            E::Not(a) => !a.eval(inp),
            E::And(a, b) => a.eval(inp) & b.eval(inp),
            E::Or(a, b) => a.eval(inp) | b.eval(inp),
            E::Xor(a, b) => a.eval(inp) ^ b.eval(inp),
            E::Add(a, b) => a.eval(inp).wrapping_add(b.eval(inp)),
            E::Sub(a, b) => a.eval(inp).wrapping_sub(b.eval(inp)),
            E::Mul(a, b) => a.eval(inp).wrapping_mul(b.eval(inp)),
            E::ShlC(a, k) => a.eval(inp) << k,
            E::ShrC(a, k) => a.eval(inp) >> k,
            E::Ternary(c, a, b) => {
                if c.eval(inp) {
                    a.eval(inp)
                } else {
                    b.eval(inp)
                }
            }
        }
    }

    fn to_verilog(&self) -> String {
        match self {
            E::Input(0) => "a".into(),
            E::Input(1) => "b".into(),
            E::Input(_) => "c".into(),
            E::Const(v) => format!("8'd{v}"),
            E::Not(a) => format!("(~{})", a.to_verilog()),
            E::And(a, b) => format!("({} & {})", a.to_verilog(), b.to_verilog()),
            E::Or(a, b) => format!("({} | {})", a.to_verilog(), b.to_verilog()),
            E::Xor(a, b) => format!("({} ^ {})", a.to_verilog(), b.to_verilog()),
            E::Add(a, b) => format!("({} + {})", a.to_verilog(), b.to_verilog()),
            E::Sub(a, b) => format!("({} - {})", a.to_verilog(), b.to_verilog()),
            E::Mul(a, b) => format!("({} * {})", a.to_verilog(), b.to_verilog()),
            E::ShlC(a, k) => format!("({} << {k})", a.to_verilog()),
            E::ShrC(a, k) => format!("({} >> {k})", a.to_verilog()),
            E::Ternary(c, a, b) => format!(
                "({} ? {} : {})",
                c.to_verilog(),
                a.to_verilog(),
                b.to_verilog()
            ),
        }
    }
}

impl C {
    fn eval(&self, inp: [u8; 3]) -> bool {
        match self {
            C::Eq(a, b) => a.eval(inp) == b.eval(inp),
            C::Ne(a, b) => a.eval(inp) != b.eval(inp),
            C::Lt(a, b) => a.eval(inp) < b.eval(inp),
            C::Ge(a, b) => a.eval(inp) >= b.eval(inp),
        }
    }

    fn to_verilog(&self) -> String {
        match self {
            C::Eq(a, b) => format!("({} == {})", a.to_verilog(), b.to_verilog()),
            C::Ne(a, b) => format!("({} != {})", a.to_verilog(), b.to_verilog()),
            C::Lt(a, b) => format!("({} < {})", a.to_verilog(), b.to_verilog()),
            C::Ge(a, b) => format!("({} >= {})", a.to_verilog(), b.to_verilog()),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(0u8..3).prop_map(E::Input), any::<u8>().prop_map(E::Const),];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| E::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..8).prop_map(|(a, k)| E::ShlC(Box::new(a), k)),
            (inner.clone(), 0u8..8).prop_map(|(a, k)| E::ShrC(Box::new(a), k)),
            (
                prop_oneof![
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| C::Eq(Box::new(a), Box::new(b))),
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| C::Ne(Box::new(a), Box::new(b))),
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| C::Lt(Box::new(a), Box::new(b))),
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| C::Ge(Box::new(a), Box::new(b))),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(c, a, b)| E::Ternary(
                    Box::new(c),
                    Box::new(a),
                    Box::new(b)
                )),
        ]
    })
}

fn eval_netlist(nl: &Netlist, inp: [u8; 3]) -> u8 {
    let mut vals = vec![false; nl.num_nets as usize];
    for (j, &net) in nl.inputs.iter().enumerate() {
        let byte = inp[j / 8];
        vals[net.index()] = byte >> (j % 8) & 1 == 1;
    }
    for gi in topo_order(nl).unwrap() {
        let g = &nl.gates[gi];
        let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
        vals[g.output.index()] = g.kind.eval(&ins);
    }
    nl.outputs
        .iter()
        .enumerate()
        .map(|(j, &o)| (vals[o.index()] as u8) << j)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn frontend_matches_interpreter(e in expr_strategy(), seeds in proptest::collection::vec(any::<[u8;3]>(), 8)) {
        let src = format!(
            "module fuzz(input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] y);\n\
               assign y = {};\n\
             endmodule",
            e.to_verilog()
        );
        let nl = c2nn_verilog::compile(&src, "fuzz")
            .unwrap_or_else(|err| panic!("frontend rejected generated source: {err}\n{src}"));
        for inp in seeds {
            let want = e.eval(inp);
            let got = eval_netlist(&nl, inp);
            prop_assert_eq!(got, want, "inputs {:?} on\n{}", inp, src);
        }
    }
}
