//! Memory-array inference tests: `reg [W:0] mem [0:D];` elaborates to a
//! register file with decoded reads and writes, the idiom behind FIFOs,
//! register files, and small RAMs.

use c2nn_netlist::Netlist;
use c2nn_refsim::CycleSim;
use c2nn_verilog::compile;

fn word(bits: &[bool]) -> u64 {
    bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
}

#[test]
fn register_file_two_read_ports() {
    let nl: Netlist = compile(
        "module regfile(input clk, input we, input [2:0] waddr, input [7:0] wdata,
                        input [2:0] ra, input [2:0] rb,
                        output [7:0] qa, output [7:0] qb);
           reg [7:0] mem [0:7];
           always @(posedge clk) begin
             if (we) mem[waddr] <= wdata;
           end
           assign qa = mem[ra];
           assign qb = mem[rb];
         endmodule",
        "regfile",
    )
    .unwrap();
    assert_eq!(nl.flipflops.len(), 64, "8 words × 8 bits");
    let mut sim = CycleSim::new(&nl).unwrap();
    let stim = |we: bool, waddr: u64, wdata: u64, ra: u64, rb: u64| -> Vec<bool> {
        let mut v = vec![we];
        v.extend((0..3).map(|i| waddr >> i & 1 == 1));
        v.extend((0..8).map(|i| wdata >> i & 1 == 1));
        v.extend((0..3).map(|i| ra >> i & 1 == 1));
        v.extend((0..3).map(|i| rb >> i & 1 == 1));
        v
    };
    // write 0x11*w to each word w
    for w in 0..8u64 {
        sim.step(&stim(true, w, w * 0x11, 0, 0));
    }
    // read back through both ports
    for w in 0..8u64 {
        let out = sim.step(&stim(false, 0, 0, w, 7 - w));
        assert_eq!(word(&out[..8]), (w * 0x11) & 0xff, "port a word {w}");
        assert_eq!(
            word(&out[8..16]),
            ((7 - w) * 0x11) & 0xff,
            "port b word {w}"
        );
    }
}

#[test]
fn sync_read_ram_idiom() {
    let nl = compile(
        "module ram(input clk, input we, input [1:0] addr, input [3:0] din,
                    output reg [3:0] dout);
           reg [3:0] mem [0:3];
           always @(posedge clk) begin
             if (we) mem[addr] <= din;
             dout <= mem[addr];
           end
         endmodule",
        "ram",
    )
    .unwrap();
    let mut sim = CycleSim::new(&nl).unwrap();
    let stim = |we: bool, addr: u64, din: u64| -> Vec<bool> {
        let mut v = vec![we];
        v.extend((0..2).map(|i| addr >> i & 1 == 1));
        v.extend((0..4).map(|i| din >> i & 1 == 1));
        v
    };
    sim.step(&stim(true, 2, 0xA));
    sim.step(&stim(true, 3, 0x5));
    // sync read: dout shows mem[addr] sampled at the edge, one cycle later.
    // Verilog nonblocking semantics: `dout <= mem[addr]` reads the OLD word
    // even on a same-cycle write to the same address (read-before-write).
    sim.step(&stim(false, 2, 0));
    let out = sim.step(&stim(false, 3, 0));
    assert_eq!(word(&out[..4]), 0xA, "read of word 2");
    let out = sim.step(&stim(false, 0, 0));
    assert_eq!(word(&out[..4]), 0x5, "read of word 3");
}

#[test]
fn read_before_write_semantics() {
    // same-address read+write in one cycle must return the old value
    let nl = compile(
        "module rbw(input clk, input [3:0] din, output reg [3:0] dout);
           reg [3:0] mem [0:1];
           always @(posedge clk) begin
             mem[0] <= din;
             dout <= mem[0];
           end
         endmodule",
        "rbw",
    )
    .unwrap();
    let mut sim = CycleSim::new(&nl).unwrap();
    let stim = |d: u64| -> Vec<bool> { (0..4).map(|i| d >> i & 1 == 1).collect() };
    sim.step(&stim(7)); // mem[0] <- 7, dout <- old (0)
    let out = sim.step(&stim(3)); // mem[0] <- 3, dout <- 7
    assert_eq!(word(&out[..4]), 0);
    let out = sim.step(&stim(0));
    assert_eq!(word(&out[..4]), 7, "read-before-write");
}

#[test]
fn memory_fifo_through_nn_compiler() {
    // a 4-deep circular FIFO built on a memory array, compiled to a NN and
    // checked against the reference simulator
    let src = "
      module mfifo(input clk, input push, input pop, input [3:0] din,
                   output [3:0] dout, output [2:0] count);
        reg [3:0] mem [0:3];
        reg [1:0] rp, wp;
        reg [2:0] cnt;
        wire do_push = push & (cnt != 3'd4);
        wire do_pop = pop & (cnt != 3'd0);
        always @(posedge clk) begin
          if (do_push) begin
            mem[wp] <= din;
            wp <= wp + 2'd1;
          end
          if (do_pop) rp <= rp + 2'd1;
          cnt <= cnt + {2'b00, do_push} - {2'b00, do_pop};
        end
        assign dout = mem[rp];
        assign count = cnt;
      endmodule";
    let nl = compile(src, "mfifo").unwrap();
    let nn = c2nn_core::compile(&nl, c2nn_core::CompileOptions::with_l(4)).unwrap();
    let mut nn_sim = c2nn_core::Simulator::new(&nn, 1, c2nn_tensor::Device::Serial);
    let mut r = CycleSim::new(&nl).unwrap();
    let mut seed = 0xf1f0u64;
    for cyc in 0..120 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let push = seed >> 20 & 1 == 1;
        let pop = seed >> 21 & 1 == 1;
        let din = seed >> 30 & 0xf;
        let mut stim = vec![push, pop];
        stim.extend((0..4).map(|i| din >> i & 1 == 1));
        let want = r.step(&stim);
        let got = nn_sim
            .step(&c2nn_tensor::Dense::<f32>::from_lanes(&[stim]))
            .to_lanes()
            .remove(0);
        assert_eq!(got, want, "cycle {cyc}");
    }
}

#[test]
fn memory_errors_are_reported() {
    // out-of-range constant index
    assert!(compile(
        "module m(input clk, input [3:0] d, output [3:0] q);
           reg [3:0] mem [0:3];
           always @(posedge clk) mem[7] <= d;
           assign q = mem[0];
         endmodule",
        "m"
    )
    .is_err());
    // nonzero base unsupported
    assert!(compile(
        "module m(input clk, output [3:0] q);
           reg [3:0] mem [2:5];
           assign q = mem[2];
         endmodule",
        "m"
    )
    .is_err());
    // redeclaration
    assert!(compile(
        "module m(input clk, output q);
           reg [3:0] mem [0:3];
           wire mem;
           assign q = mem;
         endmodule",
        "m"
    )
    .is_err());
}
