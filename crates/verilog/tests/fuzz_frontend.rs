//! Panic-freedom fuzzing of the whole Verilog frontend.
//!
//! The frontend is a trust boundary: it consumes files the user hands us.
//! Whatever the bytes, the only acceptable outcomes are a parsed netlist or
//! a typed error carrying a source location — never a panic, never a stack
//! overflow, never unbounded allocation. These suites push well over 1000
//! generated inputs per run through `c2nn_verilog::compile`.

use c2nn_verilog::CompileError;
use proptest::prelude::*;

/// Calling compile is the assertion: a panic fails the test. On error,
/// check the diagnostic carries a plausible source location.
fn assert_total(src: &str) {
    match c2nn_verilog::compile(src, "top") {
        Ok(_) => {}
        Err(CompileError::Parse(e)) => {
            assert!(e.line >= 1, "parse error lost its line: {e:?}");
            assert!(e.col >= 1, "parse error lost its column: {e:?}");
            assert!(!e.message.is_empty());
        }
        Err(CompileError::Elab(e)) => {
            assert!(!e.message.is_empty(), "empty elab diagnostic");
        }
    }
}

/// Tokens that steer random soup toward interesting parser states.
const VOCAB: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "wire",
    "reg",
    "assign",
    "always",
    "posedge",
    "begin",
    "end",
    "if",
    "else",
    "case",
    "endcase",
    "default",
    "parameter",
    "localparam",
    "top",
    "a",
    "b",
    "clk",
    "y",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ";",
    ",",
    ":",
    "?",
    "=",
    "<=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<<",
    ">>",
    "==",
    "!=",
    "<",
    ">",
    "'",
    "8'hFF",
    "4'b1010",
    "0",
    "1",
    "7",
    "31",
    "@",
    "#",
    ".",
    "//",
    "/*",
    "*/",
    "`define",
    "$x",
    "\n",
    "é",
    "€",
    "\u{0}",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 400, .. ProptestConfig::default() })]

    /// Arbitrary byte soup, interpreted as (lossy) UTF-8.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        assert_total(&src);
    }

    /// Arbitrary valid UTF-8, including multi-byte codepoints — the lexer
    /// must never slice mid-character.
    #[test]
    fn unicode_soup_never_panics(chars in proptest::collection::vec(any::<char>(), 0..256)) {
        let src: String = chars.into_iter().collect();
        assert_total(&src);
    }

    /// Token soup: random sequences from the Verilog vocabulary reach much
    /// deeper parser/elaborator states than raw bytes.
    #[test]
    fn token_soup_never_panics(idx in proptest::collection::vec(0usize..VOCAB.len(), 0..200)) {
        let mut src = String::new();
        for i in idx {
            src.push_str(VOCAB[i]);
            src.push(' ');
        }
        assert_total(&src);
    }

    /// Same soup, but wrapped in a well-formed module header so the parser
    /// exercises item/statement grammar instead of dying at `module`.
    #[test]
    fn wrapped_token_soup_never_panics(idx in proptest::collection::vec(0usize..VOCAB.len(), 0..120)) {
        let mut body = String::new();
        for i in idx {
            body.push_str(VOCAB[i]);
            body.push(' ');
        }
        let src = format!("module top(input a, input clk, output y);\n{body}\nendmodule\n");
        assert_total(&src);
    }
}

#[test]
fn deep_expression_nesting_is_an_error_not_a_crash() {
    // 100k parens would blow the call stack without the parser depth limit
    let deep = format!(
        "module top(input a, output y); assign y = {}a{}; endmodule",
        "(".repeat(100_000),
        ")".repeat(100_000)
    );
    let err = c2nn_verilog::compile(&deep, "top").unwrap_err();
    match err {
        CompileError::Parse(e) => assert!(e.message.contains("nesting too deep"), "{e}"),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn deep_unary_and_statement_nesting_rejected() {
    let tildes = format!(
        "module top(input a, output y); assign y = {}a; endmodule",
        "~".repeat(100_000)
    );
    assert!(c2nn_verilog::compile(&tildes, "top").is_err());

    let begins = format!(
        "module top(input clk); always @(posedge clk) {} endmodule",
        "begin ".repeat(100_000)
    );
    assert!(c2nn_verilog::compile(&begins, "top").is_err());

    let braces = format!(
        "module top(input a, output y); assign {}y = a; endmodule",
        "{".repeat(100_000)
    );
    assert!(c2nn_verilog::compile(&braces, "top").is_err());
}

#[test]
fn multibyte_utf8_at_operator_position() {
    // regression: the lexer used to slice `&src[i..i+2]` here, which panics
    // when byte i+2 is inside a multi-byte character
    for src in ["€", "a€b", "module €", "é€ŧ", "\u{10FFFF}"] {
        assert!(c2nn_verilog::compile(src, "top").is_err());
    }
}

#[test]
fn hostile_literals_rejected_with_location() {
    for src in [
        "module m; wire [4000000000'h0:0] w; endmodule",
        "9999999999999999999999",
        "4'q0",
    ] {
        match c2nn_verilog::compile(src, "top") {
            Err(CompileError::Parse(e)) => assert!(e.line >= 1 && e.col >= 1),
            other => panic!("expected parse error for {src:?}, got {other:?}"),
        }
    }
}

#[test]
fn constexpr_edge_cases_do_not_abort() {
    // i64::MIN / -1 and i64::MIN % -1 inside parameter arithmetic
    let src = "module top(input a, output y);
        localparam N = ((0 - 1) - 9223372036854775807) / (0 - 1);
        assign y = a;
    endmodule";
    // may elaborate or error — must not panic
    let _ = c2nn_verilog::compile(src, "top");
}
