//! # c2nn-json — panic-free JSON for model files and reports
//!
//! The compiled-model file format (`c2nn compile --out model.json`) is an
//! untrusted input: the simulator must never crash or corrupt state because a
//! model file was truncated, hand-edited, or bit-rotted. This crate provides
//! the JSON layer of that guarantee:
//!
//! - [`parse`] never panics on any input (arbitrary byte soup included) and
//!   reports errors with 1-based line/column positions ([`JsonError`]);
//! - nesting depth is bounded ([`MAX_DEPTH`]) so deeply nested input cannot
//!   overflow the stack;
//! - [`ToJson`] / [`FromJson`] map Rust values to and from [`Json`] trees with
//!   typed, path-carrying decode errors ([`DecodeError`]) instead of panics;
//! - [`json_struct!`] derives both traits for plain structs, replacing the
//!   serde derives this workspace previously used.
//!
//! Numbers are stored as `f64`. Integers decode with an exactness check —
//! `3.5` or `1e300` fails to decode as `u32` with a typed error rather than
//! silently truncating. Non-finite floats serialize as `null` (JSON has no
//! NaN literal) and decode back to `NaN`, which the model validator then
//! rejects with a proper diagnostic.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]. Bounds recursion so that
/// adversarial input (e.g. `[[[[...`) cannot overflow the stack.
pub const MAX_DEPTH: usize = 128;

/// A JSON value tree. Object key order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }
}

/// A syntax error produced by [`parse`], with 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the error.
    pub line: u32,
    /// 1-based column (in bytes) of the error.
    pub col: u32,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// A typed decode failure from [`FromJson`], carrying the JSON path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Path from the root to the offending value, e.g. `layers[2].bias`.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl DecodeError {
    /// New error at the current (root) position.
    pub fn new(message: impl Into<String>) -> Self {
        DecodeError {
            path: String::new(),
            message: message.into(),
        }
    }

    /// Prefix the path with an object field name.
    pub fn in_field(mut self, name: &str) -> Self {
        if self.path.is_empty() {
            self.path = name.to_string();
        } else if self.path.starts_with('[') {
            self.path = format!("{name}{}", self.path);
        } else {
            self.path = format!("{name}.{}", self.path);
        }
        self
    }

    /// Prefix the path with an array index.
    pub fn in_index(mut self, idx: usize) -> Self {
        if self.path.is_empty() || self.path.starts_with('[') {
            self.path = format!("[{idx}]{}", self.path);
        } else {
            self.path = format!("[{idx}].{}", self.path);
        }
        self
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "decode error: {}", self.message)
        } else {
            write!(f, "decode error at `{}`: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse a complete JSON document. Never panics; trailing non-whitespace is an
/// error.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after top-level value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(got) if got == b => {
                self.bump();
                Ok(())
            }
            Some(got) => Err(self.err(format!(
                "expected `{}`, found `{}`",
                b as char,
                printable(got)
            ))),
            None => Err(self.err(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        for &b in word.as_bytes() {
            if self.peek() != Some(b) {
                return Err(self.err(format!("invalid literal (expected `{word}`)")));
            }
            self.bump();
        }
        Ok(value)
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", printable(b)))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                Some(b) => {
                    return Err(self.err(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        printable(b)
                    )))
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                Some(b) => {
                    return Err(self.err(format!(
                        "expected `,` or `]` in array, found `{}`",
                        printable(b)
                    )))
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    None => return Err(self.err("unterminated escape sequence")),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let ch = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate escape"));
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(hi)
                                .ok_or_else(|| self.err("unpaired surrogate escape"))?
                        };
                        out.push(ch);
                    }
                    Some(b) => return Err(self.err(format!("invalid escape `\\{}`", printable(b)))),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(first) => {
                    // Multi-byte UTF-8: the source is a &str, so the sequence
                    // is valid; collect continuation bytes.
                    let len = utf8_len(first);
                    let mut buf = [first, 0, 0, 0];
                    for slot in buf.iter_mut().take(len).skip(1) {
                        *slot = self
                            .bump()
                            .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    }
                    match std::str::from_utf8(&buf[..len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        match self.peek() {
            Some(b'0') => {
                self.bump();
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            _ => return Err(self.err("invalid number (expected digit)")),
        }
        if self.peek() == Some(b'.') {
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number (expected digit after `.`)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number (expected exponent digit)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        // The matched span is pure ASCII, so the slice and parse cannot fail.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        Ok(Json::Num(n))
    }
}

fn utf8_len(first: u8) -> usize {
    if first >= 0xf0 {
        4
    } else if first >= 0xe0 {
        3
    } else {
        2
    }
}

fn printable(b: u8) -> String {
    if (0x20..0x7f).contains(&b) {
        (b as char).to_string()
    } else {
        format!("\\x{b:02x}")
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Json, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity literal; decode maps null back to NaN so
        // the model validator can reject it with a typed diagnostic.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// ToJson / FromJson
// ---------------------------------------------------------------------------

/// Serialize a value to a [`Json`] tree.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Deserialize a value from a [`Json`] tree with typed errors.
pub trait FromJson: Sized {
    /// Decode from JSON, reporting the failing path on error.
    fn from_json(v: &Json) -> Result<Self, DecodeError>;
}

/// Serialize a value straight to a compact JSON string.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Serialize a value straight to a pretty JSON string.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Errors from [`from_str`]: either bad syntax or a shape mismatch.
#[derive(Clone, Debug, PartialEq)]
pub enum FromStrError {
    /// The text is not valid JSON.
    Syntax(JsonError),
    /// The JSON does not match the target type.
    Decode(DecodeError),
}

impl fmt::Display for FromStrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromStrError::Syntax(e) => e.fmt(f),
            FromStrError::Decode(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FromStrError {}

/// Parse and decode in one step.
pub fn from_str<T: FromJson>(src: &str) -> Result<T, FromStrError> {
    let v = parse(src).map_err(FromStrError::Syntax)?;
    T::from_json(&v).map_err(FromStrError::Decode)
}

/// Decode an object field; missing keys and wrong shapes become typed errors.
pub fn field<T: FromJson>(v: &Json, name: &str) -> Result<T, DecodeError> {
    match v {
        Json::Obj(_) => match v.get(name) {
            Some(val) => T::from_json(val).map_err(|e| e.in_field(name)),
            None => Err(DecodeError::new(format!("missing field `{name}`"))),
        },
        other => Err(DecodeError::new(format!(
            "expected object with field `{name}`, found {}",
            kind_name(other)
        ))),
    }
}

/// Decode an optional object field (missing key → `None`).
pub fn opt_field<T: FromJson>(v: &Json, name: &str) -> Result<Option<T>, DecodeError> {
    match v.get(name) {
        Some(Json::Null) | None => Ok(None),
        Some(val) => T::from_json(val).map(Some).map_err(|e| e.in_field(name)),
    }
}

fn kind_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        v.as_bool()
            .ok_or_else(|| DecodeError::new(format!("expected bool, found {}", kind_name(v))))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DecodeError::new(format!("expected string, found {}", kind_name(v))))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v {
            Json::Num(n) => Ok(*n),
            // Non-finite values serialize as null; round them back to NaN so
            // downstream validation can reject them by name.
            Json::Null => Ok(f64::NAN),
            other => Err(DecodeError::new(format!(
                "expected number, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        f64::from_json(v).map(|n| n as f32)
    }
}

macro_rules! json_ints {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, DecodeError> {
                let n = v.as_f64().ok_or_else(|| {
                    DecodeError::new(format!(
                        "expected integer, found {}",
                        kind_name(v)
                    ))
                })?;
                if n.trunc() != n || !n.is_finite() {
                    return Err(DecodeError::new(format!(
                        "expected integer, found non-integral number {n}"
                    )));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DecodeError::new(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

json_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v {
            Json::Arr(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_json(item).map_err(|e| e.in_index(i)))
                .collect(),
            other => Err(DecodeError::new(format!(
                "expected array, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

/// Implement [`ToJson`] and [`FromJson`] for a plain struct by listing its
/// fields:
///
/// ```
/// use c2nn_json::json_struct;
///
/// struct Row { name: String, cycles: u64, ns_per_cycle: f64 }
/// json_struct!(Row { name, cycles, ns_per_cycle });
///
/// let row = Row { name: "uart".into(), cycles: 1000, ns_per_cycle: 12.5 };
/// let text = c2nn_json::to_string(&row);
/// let back: Row = c2nn_json::from_str(&text).unwrap();
/// assert_eq!(back.cycles, 1000);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::DecodeError> {
                Ok(Self {
                    $($field: $crate::field(v, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implement only [`ToJson`] for a struct (for report types that are written
/// but never read back, or whose fields — e.g. `&'static str` — cannot be
/// deserialized).
#[macro_export]
macro_rules! json_obj {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = Json::Obj(vec![
            (
                "a".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Null]),
            ),
            ("b".into(), Json::Str("hi \"there\"\n".into())),
            ("c".into(), Json::Bool(true)),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn errors_carry_position() {
        let e = parse("{\n  \"a\": ]\n}").unwrap_err();
        assert_eq!((e.line, e.col), (2, 8));
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01").is_err());
        assert!(parse("[1] x").is_err());
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH * 2);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"));
    }

    #[test]
    fn never_panics_on_byte_soup() {
        let mut state = 0x12345678u64;
        for _ in 0..2000 {
            let len = (state % 64) as usize;
            let s: String = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    char::from_u32((state >> 33) as u32 % 0x250).unwrap_or('x')
                })
                .collect();
            let _ = parse(&s);
        }
    }

    #[test]
    fn integer_exactness() {
        assert!(from_str::<u32>("3.5").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<i32>("2147483648").is_err());
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[derive(Debug)]
    struct Demo {
        x: u32,
        y: Vec<f32>,
    }
    json_struct!(Demo { x, y });

    #[test]
    fn struct_mapping() {
        let d = Demo {
            x: 7,
            y: vec![1.5, -2.0],
        };
        let text = to_string(&d);
        let back: Demo = from_str(&text).unwrap();
        assert_eq!(back.x, 7);
        assert_eq!(back.y, vec![1.5, -2.0]);
        let err = from_str::<Demo>("{\"x\": 7}").unwrap_err();
        match err {
            FromStrError::Decode(e) => assert!(e.message.contains("missing field `y`")),
            _ => panic!("wrong error kind"),
        }
    }
}
