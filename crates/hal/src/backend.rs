//! The backend trait contract: capabilities manifest, admission, plans,
//! and resumable runners.
//!
//! A [`Backend`] is a registered execution engine. It does not execute
//! anything itself — it *admits* a compiled network, producing a
//! [`Plan`]: the backend-specific legalized artifact (a CSR network as-is,
//! a bit-plane program, a future GPU buffer set) plus a capabilities
//! [`Manifest`] the cost model prices. A plan manufactures resumable
//! [`Runner`]s — the serve scheduler's per-thread stepping engines — and
//! offers a batch-to-completion entry point ([`Plan::execute_batch`]) for
//! offline runs.
//!
//! Admission is fallible by design: a backend that cannot run a model
//! (e.g. bit-plane legalization of non-integral weights) returns a typed
//! [`Reject`] *at admission time*, so `--backend auto` can fall through to
//! the next-best candidate instead of discovering the failure inside a
//! batcher thread.

use c2nn_core::{BenchResult, BitTensor, CompileOptions, CompiledNn, Session, SimError, Stimulus};
use std::fmt;
use std::sync::Arc;

/// A typed admission refusal: which backend said no, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reject {
    /// Name of the refusing backend.
    pub backend: String,
    /// Human-readable reason (surfaced in CLI/server errors).
    pub reason: String,
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backend `{}` rejected the model: {}",
            self.backend, self.reason
        )
    }
}

impl std::error::Error for Reject {}

/// One row-class entry of a capabilities manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct RowClassCount {
    /// Class name (e.g. `unit-gate`, `counter`).
    pub class: String,
    /// Rows in this class.
    pub rows: u64,
}

c2nn_json::json_struct!(RowClassCount { class, rows });

/// What an admitted plan looks like to the cost model: the work shape the
/// calibrated [`BackendCalibration`](crate::BackendCalibration) prices.
///
/// The two-term kernel model generalizes `c2nn-bench`'s device model:
///
/// ```text
/// t_cycle(batch) = layers × launch_s
///                + ⌈batch / lanes_per_word⌉ × (cheap + factor × weighted) / unit_per_s
/// ```
///
/// CSR backends report one lane per "word", `cheap_units` = nnz (one MAC
/// per nonzero per lane) and no weighted units; the bit-plane backend
/// reports 64 lanes per word and its modeled word-op split.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Backend that produced this plan.
    pub backend: String,
    /// Stimulus lanes advanced per unit of work (1 for scalar lanes, 64
    /// for packed bitplanes).
    pub lanes_per_word: u64,
    /// Layers per simulated cycle (each is one dispatch).
    pub layers: u64,
    /// Work units per word-column on the backend's cheap path.
    pub cheap_units: f64,
    /// Work units per word-column on the backend's expensive path
    /// (priced at the calibrated `weighted_unit_factor`).
    pub weighted_units: f64,
    /// Per-row-class legalization counts (empty when the backend has a
    /// single row class).
    pub row_classes: Vec<RowClassCount>,
}

c2nn_json::json_struct!(Manifest {
    backend,
    lanes_per_word,
    layers,
    cheap_units,
    weighted_units,
    row_classes,
});

/// A resumable stepping engine over a plan: the HAL twin of
/// [`SessionRunner::step`](c2nn_core::SessionRunner::step), with the
/// identical contract — the batch is whatever slice the caller assembled,
/// composition may change freely between calls, and every lane's
/// trajectory is bit-exact against running it alone.
pub trait Runner {
    /// Advance every session one clock cycle in lockstep; returns the
    /// primary outputs per lane. Shape errors are typed and identical
    /// across backends (enforced by the conformance suite).
    fn step(
        &mut self,
        sessions: &mut [Session<f32>],
        inputs: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>, SimError>;

    /// Packed twin of [`step`](Runner::step): inputs arrive as feature-major
    /// bit planes (`num_primary_inputs × sessions.len()`) and outputs come
    /// back packed (`num_primary_outputs × sessions.len()`, ragged tails
    /// zeroed). The default unpacks to lanes and repacks, so every backend
    /// keeps the identical contract; backends with a native packed path
    /// (bit-plane) override it to skip the `Vec<bool>` round-trip.
    fn step_planes(
        &mut self,
        sessions: &mut [Session<f32>],
        inputs: &BitTensor,
    ) -> Result<BitTensor, SimError> {
        let outs = self.step(sessions, &inputs.to_lanes())?;
        Ok(BitTensor::from_lanes(&outs))
    }
}

/// An admitted model on one backend: the legalized artifact plus its
/// costed [`Manifest`]. Shared (`Arc`) between the registry, the serve
/// scheduler, and stats reporting; runners borrow from it.
pub trait Plan: Send + Sync {
    /// The backend this plan runs on.
    fn backend(&self) -> &str;

    /// The capabilities manifest the cost model prices.
    fn manifest(&self) -> &Manifest;

    /// The compiled network this plan was admitted from (port order and
    /// state layout are shared across backends, so sessions are
    /// interchangeable).
    fn nn(&self) -> &Arc<CompiledNn<f32>>;

    /// Manufacture a fresh resumable runner over this plan. Runners are
    /// cheap (scratch buffers only) — the serve scheduler builds one per
    /// batcher thread and rebuilds after a poisoned batch.
    fn runner(&self) -> Box<dyn Runner + '_>;

    /// Run a set of ragged testbenches to completion: one runner, one
    /// forward pass per cycle across all lanes; shorter testbenches idle
    /// with zero inputs until the longest finishes, and their recorded
    /// outputs stop at their own length (the same contract as
    /// [`c2nn_core::run_batch`]).
    fn execute_batch(&self, stims: &[Stimulus]) -> Result<Vec<BenchResult>, SimError> {
        let nn = self.nn();
        let pi = nn.num_primary_inputs;
        let mut runner = self.runner();
        let mut sessions: Vec<Session<f32>> = stims.iter().map(|_| Session::new(nn)).collect();
        let max_cycles = stims.iter().map(|s| s.cycles.len()).max().unwrap_or(0);
        let mut results: Vec<BenchResult> = stims
            .iter()
            .map(|_| BenchResult { cycles: Vec::new() })
            .collect();
        for c in 0..max_cycles {
            let inputs: Vec<Vec<bool>> = stims
                .iter()
                .map(|s| s.cycles.get(c).cloned().unwrap_or_else(|| vec![false; pi]))
                .collect();
            let outs = runner.step(&mut sessions, &inputs)?;
            for (lane, stim) in stims.iter().enumerate() {
                if c < stim.cycles.len() {
                    results[lane].cycles.push(outs[lane].clone());
                }
            }
        }
        Ok(results)
    }
}

/// A registered execution engine.
pub trait Backend: Send + Sync {
    /// Canonical registry name (`scalar`, `pooled-csr`, `bitplane`, ...).
    fn name(&self) -> &'static str;

    /// Adjust compile options for models compiled *for* this backend
    /// (the bit-plane backend drops layer-merge so the unmerged pipeline
    /// legalizes popcount-free). Admission must still accept models
    /// compiled with any options.
    fn compile_options(&self, base: CompileOptions) -> CompileOptions {
        base
    }

    /// Admit a compiled network: legalize it for this engine and return
    /// the costed plan, or a typed refusal.
    fn admit(&self, nn: &Arc<CompiledNn<f32>>) -> Result<Arc<dyn Plan>, Reject>;
}
