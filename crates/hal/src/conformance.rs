//! The shared backend-conformance suite: every registered backend must be
//! bit-exact against the pooled-CSR [`Simulator`] (all lanes) and the
//! gate-level reference simulator (spot-checked lanes) on every suite
//! circuit, over ragged batch widths, with identical typed shape errors.
//!
//! This lives in the library (not just `tests/`) so out-of-tree backends
//! can hold themselves to the same contract:
//!
//! ```no_run
//! use c2nn_hal::{conformance, BackendRegistry};
//! let reg = BackendRegistry::with_defaults();
//! conformance::check_backend(reg.get("bitplane").unwrap().as_ref());
//! ```
//!
//! Every check panics with a labeled message on divergence (designed for
//! `#[test]` wrappers; see `crates/hal/tests/conformance.rs`).

use crate::backend::Backend;
use c2nn_core::{compile, run_batch, CompileOptions, Session, SimError, Simulator, Stimulus};
use c2nn_netlist::Netlist;
use c2nn_refsim::CycleSim;
use c2nn_tensor::{Dense, Device};
use std::sync::Arc;

struct Lcg(u64);

impl Lcg {
    fn bit(&mut self) -> bool {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 40 & 1 == 1
    }

    fn lanes(&mut self, batch: usize, width: usize) -> Vec<Vec<bool>> {
        (0..batch)
            .map(|_| (0..width).map(|_| self.bit()).collect())
            .collect()
    }
}

/// The suite circuits, with DMA at its small test variant to keep
/// debug-mode runtime bounded (same code path as the 64-channel build).
pub fn suite_workloads() -> Vec<(&'static str, Netlist)> {
    c2nn_circuits::table1_suite()
        .into_iter()
        .map(|b| {
            let nl = if b.name == "DMA" {
                c2nn_circuits::dma(4)
            } else {
                (b.build)()
            };
            (b.name, nl)
        })
        .collect()
}

/// Lanes per batch that also get an independent gate-level refsim (refsim
/// is scalar and slow; CSR covers every lane, refsim anchors the pair to
/// the source circuit).
const REF_LANES: usize = 4;

/// Lockstep cycles per circuit.
const CYCLES: usize = 6;

/// Ragged batch: one full 64-lane word plus a 3-lane tail.
const BATCH: usize = 67;

/// Run the full conformance contract against one backend. Panics with a
/// labeled message on any divergence.
pub fn check_backend(backend: &dyn Backend) {
    let name = backend.name();
    for (cname, nl) in suite_workloads() {
        let opts = backend.compile_options(CompileOptions::with_l(4));
        let nn = Arc::new(compile(&nl, opts).unwrap());
        let plan = backend
            .admit(&nn)
            .unwrap_or_else(|r| panic!("{name}/{cname}: backend refused its own compile: {r}"));
        assert_eq!(
            plan.backend(),
            name,
            "{cname}: plan reports the wrong backend"
        );
        let m = plan.manifest();
        assert!(
            m.layers > 0 && m.cheap_units + m.weighted_units > 0.0,
            "{cname}: empty manifest"
        );

        let mut runner = plan.runner();
        let mut sessions: Vec<Session<f32>> = (0..BATCH).map(|_| Session::new(&nn)).collect();
        let mut csr_sim = Simulator::new(&nn, BATCH, Device::Serial);
        let mut refs: Vec<CycleSim> = (0..REF_LANES.min(BATCH))
            .map(|_| CycleSim::new(&nl).unwrap())
            .collect();
        let mut rng = Lcg(0xc0f ^ cname.len() as u64 ^ (name.len() as u64) << 8);
        let pi = nn.num_primary_inputs;
        for cycle in 0..CYCLES {
            let lanes = rng.lanes(BATCH, pi);
            let got = runner.step(&mut sessions, &lanes).unwrap();
            let want = csr_sim.step(&Dense::<f32>::from_lanes(&lanes)).to_lanes();
            assert_eq!(
                got, want,
                "{name}/{cname}: diverged from Simulator at cycle {cycle}"
            );
            for (lane, r) in refs.iter_mut().enumerate() {
                let gold = r.step(&lanes[lane]);
                assert_eq!(
                    got[lane], gold,
                    "{name}/{cname}: diverged from refsim at cycle {cycle}, lane {lane}"
                );
            }
        }
        // recurrent state agrees lane for lane, and session bookkeeping ran
        for (lane, s) in sessions.iter().enumerate() {
            assert_eq!(
                s.cycles(),
                CYCLES as u64,
                "{name}/{cname}: lane {lane} cycle count"
            );
        }
        let state: Vec<Vec<bool>> = sessions.iter().map(|s| s.state_bits()).collect();
        assert_eq!(
            state,
            csr_sim.state_lanes(),
            "{name}/{cname}: state diverged after {CYCLES} cycles"
        );
    }
}

/// Ragged `execute_batch` semantics: shorter testbenches idle with zero
/// inputs but record only their own length — byte-identical to
/// [`c2nn_core::run_batch`] on the same stimuli.
pub fn check_ragged_batches(backend: &dyn Backend) {
    let name = backend.name();
    let nl = c2nn_circuits::uart();
    let opts = backend.compile_options(CompileOptions::with_l(4));
    let nn = Arc::new(compile(&nl, opts).unwrap());
    let plan = backend.admit(&nn).unwrap();
    let pi = nn.num_primary_inputs;
    let mut rng = Lcg(0x4a66 ^ name.len() as u64);
    // ragged lengths including an empty testbench
    let stims: Vec<Stimulus> = [7usize, 0, 12, 3, 12, 1]
        .iter()
        .map(|&len| Stimulus {
            cycles: rng.lanes(len, pi),
        })
        .collect();
    let got = plan.execute_batch(&stims).unwrap();
    let want = run_batch(&nn, &stims, Device::Serial);
    assert_eq!(got.len(), want.len());
    for (lane, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g.cycles, w.cycles,
            "{name}: ragged batch lane {lane} diverged"
        );
    }
    // empty batch is a no-op, not an error
    assert!(plan.execute_batch(&[]).unwrap().is_empty());
}

/// Typed shape errors must be identical across backends (callers match on
/// them; a backend swap must not change error behavior).
pub fn check_error_parity(backend: &dyn Backend) {
    let name = backend.name();
    let nl = c2nn_circuits::uart();
    let opts = backend.compile_options(CompileOptions::with_l(4));
    let nn = Arc::new(compile(&nl, opts).unwrap());
    let plan = backend.admit(&nn).unwrap();
    let pi = nn.num_primary_inputs;
    let mut runner = plan.runner();

    let mut sessions = vec![Session::new(&nn), Session::new(&nn)];
    // batch/input mismatch
    assert_eq!(
        runner.step(&mut sessions, &[vec![false; pi]]).unwrap_err(),
        SimError::BatchMismatch {
            expected: 2,
            got: 1
        },
        "{name}: batch mismatch error shape"
    );
    // wrong input width
    assert_eq!(
        runner
            .step(&mut sessions, &[vec![false; pi + 1], vec![false; pi]])
            .unwrap_err(),
        SimError::InputWidth {
            expected: pi,
            got: pi + 1
        },
        "{name}: input width error shape"
    );
    // foreign session (state vector from a different model)
    let other = Arc::new(
        compile(
            &c2nn_circuits::generators::counter(3),
            backend.compile_options(CompileOptions::with_l(4)),
        )
        .unwrap(),
    );
    let mut foreign = vec![Session::new(&other)];
    let err = runner.step(&mut foreign, &[vec![false; pi]]).unwrap_err();
    assert!(
        matches!(err, SimError::StateWidth { .. }),
        "{name}: foreign session error shape: {err:?}"
    );
    // empty batch steps to an empty output
    assert_eq!(runner.step(&mut [], &[]).unwrap(), Vec::<Vec<bool>>::new());
}
