//! The three built-in execution backends, ported from the former
//! `BackendKind`/`AnyRunner` ad-hoc dispatch:
//!
//! * `scalar` — dense `f32` lanes over CSR layers, serial dispatch. The
//!   lowest launch overhead; wins on tiny models and tiny batches.
//! * `pooled-csr` — the same CSR kernels sharded on the shared worker
//!   pool ([`c2nn_tensor::Pool`]). The paper's stimulus parallelism.
//! * `bitplane` — 64 stimuli per machine word over word ops (see
//!   [`c2nn_core::bitplane`]). Requires exact integral weights; refuses
//!   admission otherwise.
//!
//! All three step the same [`Session`](c2nn_core::Session) bookkeeping
//! with bit-exact semantics — the shared conformance suite
//! ([`crate::conformance`]) holds them to it.

use crate::backend::{Backend, Manifest, Plan, Reject, RowClassCount, Runner};
use c2nn_core::bitplane::{BitplaneNn, BitplaneRunner};
use c2nn_core::{BitTensor, CompileOptions, CompiledNn, PassId, Session, SessionRunner, SimError};
use c2nn_tensor::Device;
use std::sync::Arc;

impl Runner for SessionRunner<'_, f32> {
    fn step(
        &mut self,
        sessions: &mut [Session<f32>],
        inputs: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>, SimError> {
        SessionRunner::step(self, sessions, inputs)
    }
}

impl Runner for BitplaneRunner<'_, f32> {
    fn step(
        &mut self,
        sessions: &mut [Session<f32>],
        inputs: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>, SimError> {
        BitplaneRunner::step(self, sessions, inputs)
    }

    fn step_planes(
        &mut self,
        sessions: &mut [Session<f32>],
        inputs: &BitTensor,
    ) -> Result<BitTensor, SimError> {
        // native packed path: word-wise plane copy in, packed planes out
        BitplaneRunner::step_planes(self, sessions, inputs)
    }
}

/// A CSR-lane backend: `scalar` (serial) or `pooled-csr` (worker pool).
pub struct CsrBackend {
    name: &'static str,
    device: Device,
}

impl CsrBackend {
    /// The serial single-thread engine.
    pub fn scalar() -> Self {
        CsrBackend {
            name: "scalar",
            device: Device::Serial,
        }
    }

    /// The pool-sharded engine (the default before the HAL existed).
    pub fn pooled() -> Self {
        CsrBackend {
            name: "pooled-csr",
            device: Device::Parallel,
        }
    }
}

struct CsrPlan {
    backend: &'static str,
    device: Device,
    nn: Arc<CompiledNn<f32>>,
    manifest: Manifest,
}

impl Plan for CsrPlan {
    fn backend(&self) -> &str {
        self.backend
    }

    fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    fn nn(&self) -> &Arc<CompiledNn<f32>> {
        &self.nn
    }

    fn runner(&self) -> Box<dyn Runner + '_> {
        Box::new(SessionRunner::new(&self.nn, self.device))
    }
}

impl Backend for CsrBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn admit(&self, nn: &Arc<CompiledNn<f32>>) -> Result<Arc<dyn Plan>, Reject> {
        if nn.layers.is_empty() {
            return Err(Reject {
                backend: self.name.to_string(),
                reason: "network has no layers".to_string(),
            });
        }
        let manifest = Manifest {
            backend: self.name.to_string(),
            lanes_per_word: 1,
            layers: nn.num_layers() as u64,
            // one MAC per nonzero weight per lane per cycle
            cheap_units: nn.connections() as f64,
            weighted_units: 0.0,
            row_classes: Vec::new(),
        };
        Ok(Arc::new(CsrPlan {
            backend: self.name,
            device: self.device,
            nn: Arc::clone(nn),
            manifest,
        }))
    }
}

/// The packed-bitplane backend: 64 stimuli per word; admission legalizes
/// the network to a [`BitplaneNn`] (typed refusal for non-integral
/// weights) and prices the result row class by row class.
pub struct BitplaneBackend;

struct BitplanePlan {
    nn: Arc<CompiledNn<f32>>,
    program: BitplaneNn,
    manifest: Manifest,
}

impl Plan for BitplanePlan {
    fn backend(&self) -> &str {
        "bitplane"
    }

    fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    fn nn(&self) -> &Arc<CompiledNn<f32>> {
        &self.nn
    }

    fn runner(&self) -> Box<dyn Runner + '_> {
        Box::new(BitplaneRunner::<f32>::new(&self.program, Device::Parallel))
    }
}

impl Backend for BitplaneBackend {
    fn name(&self) -> &'static str {
        "bitplane"
    }

    /// Drop layer-merge: merging trades depth for dense integer rows — a
    /// win for CSR arithmetic, but it forces the bit-plane executor into
    /// its counter fallback, whereas the unmerged threshold/linear
    /// alternation legalizes to single word ops per neuron.
    fn compile_options(&self, base: CompileOptions) -> CompileOptions {
        let passes = base.passes.without(PassId::LayerMerge);
        base.with_passes(passes)
    }

    fn admit(&self, nn: &Arc<CompiledNn<f32>>) -> Result<Arc<dyn Plan>, Reject> {
        if nn.layers.is_empty() {
            return Err(Reject {
                backend: "bitplane".to_string(),
                reason: "network has no layers".to_string(),
            });
        }
        let program = BitplaneNn::from_compiled(nn.as_ref()).map_err(|e| Reject {
            backend: "bitplane".to_string(),
            reason: e.to_string(),
        })?;
        let (cheap_units, weighted_units) = program.modeled_units();
        let row_classes = program
            .row_classes
            .entries()
            .iter()
            .map(|&(class, rows)| RowClassCount {
                class: class.to_string(),
                rows,
            })
            .collect();
        let manifest = Manifest {
            backend: "bitplane".to_string(),
            lanes_per_word: 64,
            layers: program.num_layers() as u64,
            cheap_units,
            weighted_units,
            row_classes,
        };
        Ok(Arc::new(BitplanePlan {
            nn: Arc::clone(nn),
            program,
            manifest,
        }))
    }
}
