//! The calibrated cost model: per-backend throughput parameters measured
//! by `c2nn calibrate`, persisted to `results/DEVICE.json`, and consulted
//! by the registry to pick a backend under `--backend auto`.
//!
//! Two layers:
//!
//! * [`DeviceModel`] — the *analytic* model of a device we do not have
//!   (the paper's GTX TITAN X), kept for the modeled-GPU experiments in
//!   `c2nn-bench`. It prices raw MACs of a compiled network.
//! * [`BackendCalibration`] / [`DeviceCalibration`] — *measured* numbers
//!   for the backends this host actually runs, pricing the generalized
//!   work units a backend's [`Manifest`](crate::Manifest) reports:
//!
//!   ```text
//!   t_cycle(batch) = layers × launch_s
//!                  + ⌈batch / lanes_per_word⌉
//!                    × (cheap + weighted_unit_factor × weighted) / unit_per_s
//!   ```
//!
//!   For a CSR backend (`lanes_per_word` = 1, `cheap` = nnz, no weighted
//!   units) this degenerates to exactly the two-term `DeviceModel` shape;
//!   the bit-plane backend amortizes a word-op stream over 64 lanes, with
//!   its counter rows priced at a calibrated premium.

use crate::backend::Manifest;
use c2nn_core::CompiledNn;
use c2nn_json::json_struct;
use c2nn_tensor::Scalar;

/// A simple launch-latency + throughput device model (analytic; see the
/// module docs). Formerly `c2nn_bench::DeviceModel`, promoted here so the
/// serve/CLI layers can model devices without depending on the bench
/// harness; `c2nn-bench` re-exports it unchanged.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceModel {
    /// Human-readable name for reports.
    pub name: String,
    /// Effective sustained rate in multiply-accumulates per second.
    pub mac_per_s: f64,
    /// Fixed cost per layer (kernel launch + sync), seconds.
    pub launch_s: f64,
}
json_struct!(DeviceModel {
    name,
    mac_per_s,
    launch_s
});

impl DeviceModel {
    /// GTX TITAN X (Maxwell) analogue: 6.1 TFLOP/s ≈ 3.05e12 MAC/s peak,
    /// ×10 % sparse efficiency, 5 µs launches.
    pub fn titan_x() -> Self {
        DeviceModel {
            name: "modeled GTX TITAN X (10% sparse eff.)".to_string(),
            mac_per_s: 3.05e11,
            launch_s: 5e-6,
        }
    }

    /// A deliberately modest "small GPU" for sensitivity checks.
    pub fn small_gpu() -> Self {
        DeviceModel {
            name: "modeled small GPU (1e10 MAC/s)".to_string(),
            mac_per_s: 1e10,
            launch_s: 5e-6,
        }
    }

    /// Modeled seconds for one batched forward pass (one simulated cycle
    /// for the whole batch).
    pub fn cycle_seconds<T: Scalar>(&self, nn: &CompiledNn<T>, batch: usize) -> f64 {
        let macs = nn.connections() as f64 * batch as f64;
        nn.num_layers() as f64 * self.launch_s + macs / self.mac_per_s
    }

    /// Modeled throughput in gates·cycles/s at the given batch size.
    pub fn throughput<T: Scalar>(&self, nn: &CompiledNn<T>, batch: usize) -> f64 {
        let t = self.cycle_seconds(nn, batch);
        nn.gate_count as f64 * batch as f64 / t
    }

    /// Batch size at which the compute term overtakes launch latency
    /// (the knee of the throughput curve).
    pub fn saturation_batch<T: Scalar>(&self, nn: &CompiledNn<T>) -> f64 {
        let launch = nn.num_layers() as f64 * self.launch_s;
        launch * self.mac_per_s / nn.connections() as f64
    }
}

/// Measured throughput parameters for one backend on this host.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendCalibration {
    /// Registry name of the backend these numbers describe.
    pub backend: String,
    /// Sustained cheap-path work units per second (MACs for CSR
    /// backends, word-ops for the bit-plane engine).
    pub unit_per_s: f64,
    /// Fixed per-layer dispatch cost, seconds.
    pub launch_s: f64,
    /// Relative cost of one weighted (expensive-path) unit in cheap
    /// units. 1.0 when the backend has a single path.
    pub weighted_unit_factor: f64,
    /// Fraction of suite rows the backend legalized onto its cheap path
    /// during calibration (1.0 for single-path backends). Informational:
    /// reported by `c2nn calibrate`, not used for prediction — the
    /// per-model manifest already carries the model's own split.
    pub coverage: f64,
}
json_struct!(BackendCalibration {
    backend,
    unit_per_s,
    launch_s,
    weighted_unit_factor,
    coverage,
});

impl BackendCalibration {
    /// Predicted seconds for one batched forward pass of a plan with the
    /// given manifest.
    pub fn cycle_seconds_for(&self, m: &Manifest, batch: usize) -> f64 {
        let words = (batch as u64).div_ceil(m.lanes_per_word.max(1)) as f64;
        let units = m.cheap_units + self.weighted_unit_factor * m.weighted_units;
        m.layers as f64 * self.launch_s + words * units / self.unit_per_s
    }

    /// Predicted simulated cycles/s summed over all lanes of the batch —
    /// the figure of merit `--backend auto` maximizes.
    pub fn predict_lane_cps(&self, m: &Manifest, batch: usize) -> f64 {
        batch as f64 / self.cycle_seconds_for(m, batch)
    }
}

/// A full device calibration: what `results/DEVICE.json` holds.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceCalibration {
    /// Host description (free-form).
    pub device: String,
    /// Worker-pool threads at calibration time.
    pub threads: u64,
    /// Whether this was a `--quick` (reduced-workload) calibration.
    pub quick: bool,
    /// One entry per calibrated backend.
    pub backends: Vec<BackendCalibration>,
}
json_struct!(DeviceCalibration {
    device,
    threads,
    quick,
    backends
});

impl DeviceCalibration {
    /// Conservative built-in defaults used when no `results/DEVICE.json`
    /// exists: plausible single-host numbers that preserve the expected
    /// ordering (bit-plane ≫ pooled CSR ≫ scalar at batch, scalar best at
    /// batch 1 on tiny models). Run `c2nn calibrate` to replace them with
    /// measured values.
    pub fn default_host(threads: usize) -> Self {
        DeviceCalibration {
            device: "built-in defaults (run `c2nn calibrate`)".to_string(),
            threads: threads as u64,
            quick: false,
            backends: vec![
                BackendCalibration {
                    backend: "scalar".to_string(),
                    unit_per_s: 2e8,
                    launch_s: 2e-7,
                    weighted_unit_factor: 1.0,
                    coverage: 1.0,
                },
                BackendCalibration {
                    backend: "pooled-csr".to_string(),
                    unit_per_s: 8e8,
                    launch_s: 1e-5,
                    weighted_unit_factor: 1.0,
                    coverage: 1.0,
                },
                BackendCalibration {
                    backend: "bitplane".to_string(),
                    unit_per_s: 2e9,
                    launch_s: 1e-5,
                    weighted_unit_factor: 1.5,
                    coverage: 1.0,
                },
            ],
        }
    }

    /// The calibration entry for a backend, if present.
    pub fn for_backend(&self, name: &str) -> Option<&BackendCalibration> {
        self.backends.iter().find(|b| b.backend == name)
    }

    /// Structural sanity for loaded files: every entry must carry finite
    /// positive rates and a sane coverage fraction. Returns the offending
    /// description on failure (used by `c2nn calibrate --check`).
    pub fn validate(&self) -> Result<(), String> {
        if self.backends.is_empty() {
            return Err("calibration lists no backends".to_string());
        }
        for b in &self.backends {
            if b.backend.is_empty() {
                return Err("calibration entry with empty backend name".to_string());
            }
            if !(b.unit_per_s.is_finite() && b.unit_per_s > 0.0) {
                return Err(format!(
                    "backend `{}`: unit_per_s must be finite and > 0",
                    b.backend
                ));
            }
            if !(b.launch_s.is_finite() && b.launch_s >= 0.0) {
                return Err(format!(
                    "backend `{}`: launch_s must be finite and >= 0",
                    b.backend
                ));
            }
            if !(b.weighted_unit_factor.is_finite() && b.weighted_unit_factor > 0.0) {
                return Err(format!(
                    "backend `{}`: weighted_unit_factor must be finite and > 0",
                    b.backend
                ));
            }
            if !(0.0..=1.0).contains(&b.coverage) {
                return Err(format!(
                    "backend `{}`: coverage must be in [0, 1]",
                    b.backend
                ));
            }
        }
        Ok(())
    }

    /// Parse and validate a calibration from JSON text.
    pub fn from_json_text(text: &str) -> Result<Self, String> {
        let cal: Self = c2nn_json::from_str(text).map_err(|e| e.to_string())?;
        cal.validate()?;
        Ok(cal)
    }

    /// Serialize to pretty-printed JSON text.
    pub fn to_json_text(&self) -> String {
        c2nn_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_core::{compile, CompileOptions};
    use c2nn_netlist::{NetlistBuilder, WordOps};

    fn nn() -> CompiledNn<f32> {
        let mut b = NetlistBuilder::new("a");
        let x = b.input_word("a", 8);
        let y = b.input_word("b", 8);
        let s = b.add_word(&x, &y);
        b.output_word(&s, "s");
        compile(&b.finish().unwrap(), CompileOptions::with_l(4)).unwrap()
    }

    #[test]
    fn launch_latency_dominates_single_stimulus() {
        let nn = nn();
        let m = DeviceModel::titan_x();
        let t1 = m.cycle_seconds(&nn, 1);
        let launch = nn.num_layers() as f64 * m.launch_s;
        assert!(
            (t1 - launch) / t1 < 0.05,
            "batch-1 time should be ≥95% launch latency: {t1} vs {launch}"
        );
    }

    #[test]
    fn throughput_grows_then_saturates() {
        let nn = nn();
        let m = DeviceModel::titan_x();
        let t_small = m.throughput(&nn, 1);
        let t_big = m.throughput(&nn, 1 << 20);
        assert!(t_big > 10.0 * t_small);
        let t_bigger = m.throughput(&nn, 1 << 24);
        assert!(t_bigger < t_big * 2.0);
    }

    #[test]
    fn saturation_batch_is_finite_positive() {
        let nn = nn();
        let m = DeviceModel::titan_x();
        let b = m.saturation_batch(&nn);
        assert!(b > 0.0 && b.is_finite());
    }

    #[test]
    fn default_host_validates_and_round_trips() {
        let cal = DeviceCalibration::default_host(8);
        cal.validate().unwrap();
        let text = cal.to_json_text();
        let back = DeviceCalibration::from_json_text(&text).unwrap();
        assert_eq!(cal, back);
    }

    #[test]
    fn validate_rejects_broken_entries() {
        let mut cal = DeviceCalibration::default_host(8);
        cal.backends[0].unit_per_s = 0.0;
        assert!(cal.validate().is_err());
        let mut cal = DeviceCalibration::default_host(8);
        cal.backends[1].coverage = 1.5;
        assert!(cal.validate().is_err());
        let mut cal = DeviceCalibration::default_host(8);
        cal.backends.clear();
        assert!(cal.validate().is_err());
    }

    #[test]
    fn lane_rate_amortizes_over_word_lanes() {
        let cal = BackendCalibration {
            backend: "bitplane".to_string(),
            unit_per_s: 1e9,
            launch_s: 0.0,
            weighted_unit_factor: 2.0,
            coverage: 1.0,
        };
        let m = Manifest {
            backend: "bitplane".to_string(),
            lanes_per_word: 64,
            layers: 4,
            cheap_units: 100.0,
            weighted_units: 10.0,
            row_classes: Vec::new(),
        };
        // one word of 64 lanes costs the same as one lane
        let t1 = cal.cycle_seconds_for(&m, 1);
        let t64 = cal.cycle_seconds_for(&m, 64);
        assert_eq!(t1, t64);
        // 65 lanes spill into a second word
        assert!(cal.cycle_seconds_for(&m, 65) > t64);
        // weighted units are priced at the factor: 100 + 2×10 = 120 units
        assert!((t64 - 120.0 / 1e9).abs() < 1e-15);
        // lane-rate at 64 is 64× the single-lane rate
        assert!((cal.predict_lane_cps(&m, 64) / cal.predict_lane_cps(&m, 1) - 64.0).abs() < 1e-9);
    }
}
