//! The process-wide backend registry and `--backend auto` selection.
//!
//! Selection is *calibration-driven*: the registry admits the model on
//! every calibrated backend, asks each calibration entry to predict
//! lane-cycles/s at the expected batch width, and picks the strict
//! maximum. There is no hard-coded preference order — swap the numbers in
//! `results/DEVICE.json` and the winner changes. Ties break toward
//! earlier registration, which (with a pinned calibration file) makes the
//! decision fully deterministic.

use crate::backend::{Backend, Plan, Reject};
use crate::backends::{BitplaneBackend, CsrBackend};
use crate::cost::DeviceCalibration;
use c2nn_core::CompiledNn;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// How the caller wants a backend chosen.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Let the calibrated cost model pick the fastest admitting backend.
    Auto,
    /// Require this backend by registry name; admission failure is an
    /// error, not a fallback.
    Named(String),
}

impl Choice {
    /// Parse a `--backend` flag value; `auto` (case-insensitive) selects
    /// [`Choice::Auto`], anything else is taken as a backend name (the
    /// registry validates it at selection time).
    pub fn parse(s: &str) -> Choice {
        if s.eq_ignore_ascii_case("auto") {
            Choice::Auto
        } else {
            Choice::Named(s.to_string())
        }
    }
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::Auto => f.write_str("auto"),
            Choice::Named(n) => f.write_str(n),
        }
    }
}

/// One backend's fate during a selection pass (kept for observability:
/// `c2nn serve` stats and `--verbose` sim output show these).
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Backend name.
    pub backend: String,
    /// Predicted lane-cycles/s, when the backend admitted the model and
    /// had a calibration entry.
    pub predicted_lane_cps: Option<f64>,
    /// Why the backend was passed over, when it was (admission refusal or
    /// a missing calibration entry).
    pub skipped: Option<String>,
}

/// The outcome of backend selection: the admitted plan plus the decision
/// trail.
pub struct Selection {
    /// Winning backend name.
    pub backend: String,
    /// True when the cost model chose (`--backend auto`), false for an
    /// explicit name.
    pub auto: bool,
    /// The admitted plan on the winning backend.
    pub plan: Arc<dyn Plan>,
    /// Predicted lane-cycles/s of the winner (absent when an explicitly
    /// named backend has no calibration entry).
    pub predicted_lane_cps: Option<f64>,
    /// Every backend considered, in registration order.
    pub candidates: Vec<Candidate>,
}

/// Why selection failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectError {
    /// A named backend is not in the registry.
    UnknownBackend {
        /// What the caller asked for.
        given: String,
        /// The names actually registered (plus `auto`).
        available: Vec<String>,
    },
    /// A named backend refused the model.
    Rejected(Reject),
    /// Under `auto`, no calibrated backend admitted the model.
    NoneAdmitted(Vec<Candidate>),
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::UnknownBackend { given, available } => write!(
                f,
                "unknown backend `{given}`; available: {}, auto",
                available.join(", ")
            ),
            SelectError::Rejected(r) => r.fmt(f),
            SelectError::NoneAdmitted(cands) => {
                write!(f, "no backend admitted the model:")?;
                for c in cands {
                    write!(
                        f,
                        " {}: {};",
                        c.backend,
                        c.skipped.as_deref().unwrap_or("not selected")
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// An ordered collection of execution backends.
#[derive(Default)]
pub struct BackendRegistry {
    backends: Vec<Arc<dyn Backend>>,
}

impl BackendRegistry {
    /// An empty registry (for tests and embedders).
    pub fn new() -> Self {
        BackendRegistry {
            backends: Vec::new(),
        }
    }

    /// The registry with the three built-in engines, in the order the
    /// default calibration lists them: `scalar`, `pooled-csr`, `bitplane`.
    pub fn with_defaults() -> Self {
        let mut r = BackendRegistry::new();
        r.register(Arc::new(CsrBackend::scalar()));
        r.register(Arc::new(CsrBackend::pooled()));
        r.register(Arc::new(BitplaneBackend));
        r
    }

    /// The process-wide registry of built-in backends.
    pub fn global() -> &'static BackendRegistry {
        static GLOBAL: OnceLock<BackendRegistry> = OnceLock::new();
        GLOBAL.get_or_init(BackendRegistry::with_defaults)
    }

    /// Add a backend. Last registration wins on name collision (lookups
    /// scan back to front), so embedders can shadow a built-in.
    pub fn register(&mut self, backend: Arc<dyn Backend>) {
        self.backends.push(backend);
    }

    /// Registered backend names, registration order, collisions shadowed.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for b in &self.backends {
            if !names.contains(&b.name()) {
                names.push(b.name());
            }
        }
        names
    }

    /// Look up a backend by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Backend>> {
        self.backends.iter().rev().find(|b| b.name() == name)
    }

    /// Backends in effective order (shadowed duplicates dropped).
    fn effective(&self) -> Vec<&Arc<dyn Backend>> {
        self.names()
            .into_iter()
            .map(|n| self.get(n).unwrap())
            .collect()
    }

    /// Resolve a [`Choice`] against this registry: admit the model and —
    /// for [`Choice::Auto`] — let the calibration pick the backend with
    /// the best predicted lane-cycles/s at the expected batch width.
    pub fn select(
        &self,
        nn: &Arc<CompiledNn<f32>>,
        choice: &Choice,
        cal: &DeviceCalibration,
        expected_batch: usize,
    ) -> Result<Selection, SelectError> {
        let batch = expected_batch.max(1);
        match choice {
            Choice::Named(name) => {
                let backend = self.get(name).ok_or_else(|| SelectError::UnknownBackend {
                    given: name.clone(),
                    available: self.names().iter().map(|s| s.to_string()).collect(),
                })?;
                let plan = backend.admit(nn).map_err(SelectError::Rejected)?;
                let predicted = cal
                    .for_backend(name)
                    .map(|c| c.predict_lane_cps(plan.manifest(), batch));
                Ok(Selection {
                    backend: name.clone(),
                    auto: false,
                    predicted_lane_cps: predicted,
                    candidates: vec![Candidate {
                        backend: name.clone(),
                        predicted_lane_cps: predicted,
                        skipped: None,
                    }],
                    plan,
                })
            }
            Choice::Auto => {
                let mut candidates = Vec::new();
                let mut best: Option<(f64, Arc<dyn Plan>, String)> = None;
                for backend in self.effective() {
                    let name = backend.name();
                    let Some(c) = cal.for_backend(name) else {
                        candidates.push(Candidate {
                            backend: name.to_string(),
                            predicted_lane_cps: None,
                            skipped: Some("no calibration entry".to_string()),
                        });
                        continue;
                    };
                    match backend.admit(nn) {
                        Ok(plan) => {
                            let cps = c.predict_lane_cps(plan.manifest(), batch);
                            candidates.push(Candidate {
                                backend: name.to_string(),
                                predicted_lane_cps: Some(cps),
                                skipped: None,
                            });
                            // strict > keeps ties on the earliest
                            // registration: deterministic given a pinned
                            // calibration file
                            if best.as_ref().is_none_or(|(b, _, _)| cps > *b) {
                                best = Some((cps, plan, name.to_string()));
                            }
                        }
                        Err(reject) => candidates.push(Candidate {
                            backend: name.to_string(),
                            predicted_lane_cps: None,
                            skipped: Some(reject.reason),
                        }),
                    }
                }
                match best {
                    Some((cps, plan, name)) => Ok(Selection {
                        backend: name,
                        auto: true,
                        plan,
                        predicted_lane_cps: Some(cps),
                        candidates,
                    }),
                    None => Err(SelectError::NoneAdmitted(candidates)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_core::{compile, CompileOptions};

    fn model() -> Arc<CompiledNn<f32>> {
        Arc::new(compile(&c2nn_circuits::uart(), CompileOptions::with_l(4)).unwrap())
    }

    #[test]
    fn unknown_backend_lists_registered_names() {
        let reg = BackendRegistry::with_defaults();
        let cal = DeviceCalibration::default_host(1);
        let err = reg
            .select(&model(), &Choice::Named("vulkan".to_string()), &cal, 64)
            .err()
            .unwrap();
        match err {
            SelectError::UnknownBackend { given, available } => {
                assert_eq!(given, "vulkan");
                assert_eq!(available, vec!["scalar", "pooled-csr", "bitplane"]);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn named_selection_is_not_auto() {
        let reg = BackendRegistry::with_defaults();
        let cal = DeviceCalibration::default_host(1);
        let sel = reg
            .select(&model(), &Choice::Named("scalar".to_string()), &cal, 4)
            .unwrap();
        assert_eq!(sel.backend, "scalar");
        assert!(!sel.auto);
        assert_eq!(sel.plan.backend(), "scalar");
        assert!(sel.predicted_lane_cps.is_some());
    }

    #[test]
    fn choice_parses_auto_case_insensitively() {
        assert_eq!(Choice::parse("AUTO"), Choice::Auto);
        assert_eq!(Choice::parse("auto"), Choice::Auto);
        assert_eq!(
            Choice::parse("bitplane"),
            Choice::Named("bitplane".to_string())
        );
        assert_eq!(Choice::Auto.to_string(), "auto");
    }

    #[test]
    fn auto_reports_every_candidate() {
        let reg = BackendRegistry::with_defaults();
        let cal = DeviceCalibration::default_host(1);
        let sel = reg.select(&model(), &Choice::Auto, &cal, 64).unwrap();
        assert!(sel.auto);
        assert_eq!(sel.candidates.len(), 3);
        assert!(sel.candidates.iter().all(|c| c.skipped.is_none()));
        // the winner's prediction is the maximum
        let max = sel
            .candidates
            .iter()
            .filter_map(|c| c.predicted_lane_cps)
            .fold(f64::MIN, f64::max);
        assert_eq!(sel.predicted_lane_cps, Some(max));
    }

    #[test]
    fn uncalibrated_backends_are_skipped_under_auto() {
        let reg = BackendRegistry::with_defaults();
        let mut cal = DeviceCalibration::default_host(1);
        cal.backends.retain(|b| b.backend == "scalar");
        let sel = reg.select(&model(), &Choice::Auto, &cal, 4096).unwrap();
        assert_eq!(sel.backend, "scalar");
        let skipped: Vec<_> = sel
            .candidates
            .iter()
            .filter(|c| c.skipped.is_some())
            .map(|c| &c.backend)
            .collect();
        assert_eq!(skipped, ["pooled-csr", "bitplane"]);
    }
}
