//! # c2nn-hal — the backend hardware-abstraction layer
//!
//! Pluggable execution backends behind one trait contract, with a
//! calibrated cost model driving `--backend auto` (DESIGN.md §14).
//!
//! The pieces:
//!
//! * [`Backend`] / [`Plan`] / [`Runner`] — the contract ([`backend`]):
//!   a backend *admits* a compiled network (fallibly, with a typed
//!   [`Reject`]) into a [`Plan`] carrying a capabilities [`Manifest`];
//!   plans manufacture resumable runners with the exact
//!   `SessionRunner::step` semantics.
//! * [`backends`] — the three built-in engines: `scalar`, `pooled-csr`,
//!   and `bitplane`.
//! * [`BackendRegistry`] ([`registry`]) — ordered name → backend map with
//!   calibration-driven selection ([`BackendRegistry::select`]).
//! * [`DeviceCalibration`] / [`BackendCalibration`] ([`cost`]) — the
//!   measured per-backend cost model persisted in `results/DEVICE.json`,
//!   plus the analytic [`DeviceModel`] of the paper's GPU.
//! * [`calibrate`] — the microbenchmark fit behind `c2nn calibrate`.
//! * [`conformance`] — the shared bit-exactness suite every backend
//!   (in-tree or out) must pass.

pub mod backend;
pub mod backends;
pub mod calibrate;
pub mod conformance;
pub mod cost;
pub mod registry;

pub use backend::{Backend, Manifest, Plan, Reject, RowClassCount, Runner};
pub use backends::{BitplaneBackend, CsrBackend};
pub use calibrate::{calibrate, CalibrateOptions};
pub use cost::{BackendCalibration, DeviceCalibration, DeviceModel};
pub use registry::{BackendRegistry, Candidate, Choice, SelectError, Selection};
