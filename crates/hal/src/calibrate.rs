//! Microbenchmark calibration: measure each registered backend on small
//! representative workloads and fit the two-term cost model
//! ([`BackendCalibration`]) that `--backend auto` consults.
//!
//! Per backend, per (workload × batch) point we time one lockstep cycle
//! and least-squares fit
//!
//! ```text
//! t = layers × launch_s + word_units × (1 / unit_per_s)
//! ```
//!
//! over all points (two unknowns, ≥6 points). The bit-plane backend gets
//! one extra merged-network workload to price its bit-sliced-counter
//! fallback: the `weighted_unit_factor` is whatever multiple of the cheap
//! rate explains the measured residual.
//!
//! The output [`DeviceCalibration`] is what `c2nn calibrate` writes to
//! `results/DEVICE.json`.

use crate::backend::Plan;
use crate::cost::{BackendCalibration, DeviceCalibration};
use crate::registry::BackendRegistry;
use c2nn_core::{compile, CompileOptions, CompiledNn, PassSet, Session};
use c2nn_netlist::Netlist;
use std::sync::Arc;
use std::time::Instant;

/// Knobs for a calibration run.
#[derive(Clone, Debug)]
pub struct CalibrateOptions {
    /// Reduced workload set and shorter timings (CI smoke).
    pub quick: bool,
    /// Free-form host description recorded in the output.
    pub device: String,
}

impl Default for CalibrateOptions {
    fn default() -> Self {
        CalibrateOptions {
            quick: false,
            device: "calibrated host".to_string(),
        }
    }
}

struct Lcg(u64);

impl Lcg {
    fn bit(&mut self) -> bool {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 40 & 1 == 1
    }

    fn lanes(&mut self, batch: usize, width: usize) -> Vec<Vec<bool>> {
        (0..batch)
            .map(|_| (0..width).map(|_| self.bit()).collect())
            .collect()
    }
}

/// The calibration workloads: small sequential circuits spanning the op
/// mix (pure counters/parity, tap feedback, carry chains).
fn workloads() -> Vec<(&'static str, Netlist)> {
    vec![
        ("counter12", c2nn_circuits::generators::counter(12)),
        (
            "lfsr16",
            c2nn_circuits::generators::lfsr(16, &[15, 13, 12, 10]),
        ),
        ("mult4", c2nn_circuits::generators::multiplier(4)),
    ]
}

/// Measured seconds per lockstep cycle for one plan at one batch width,
/// repeated until the sample is long enough to trust the clock.
fn time_cycle(plan: &dyn Plan, batch: usize, quick: bool) -> f64 {
    let nn = plan.nn();
    let pi = nn.num_primary_inputs;
    let mut rng = Lcg(0xca11b ^ batch as u64);
    let inputs = rng.lanes(batch, pi);
    let mut sessions: Vec<Session<f32>> = (0..batch).map(|_| Session::new(nn)).collect();
    let mut runner = plan.runner();
    // warm caches and allocation paths before the clock starts
    runner
        .step(&mut sessions, &inputs)
        .expect("calibration workload must step");
    let (chunk, min_elapsed, max_rounds) = if quick { (4, 0.002, 3) } else { (16, 0.010, 8) };
    let mut cycles = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..chunk {
            runner
                .step(&mut sessions, &inputs)
                .expect("calibration workload must step");
        }
        cycles += chunk as u64;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_elapsed || cycles >= chunk as u64 * max_rounds {
            return elapsed / cycles as f64;
        }
    }
}

/// Solve min Σ (launch·x + inv_rate·y − t)² with launch ≥ 0, rate > 0.
fn fit(points: &[(f64, f64, f64)]) -> (f64, f64) {
    let (mut sxx, mut sxy, mut syy, mut sxt, mut syt) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(x, y, t) in points {
        sxx += x * x;
        sxy += x * y;
        syy += y * y;
        sxt += x * t;
        syt += y * t;
    }
    let det = sxx * syy - sxy * sxy;
    let (mut launch, mut inv_rate) = if det.abs() > 1e-30 {
        ((sxt * syy - syt * sxy) / det, (syt * sxx - sxt * sxy) / det)
    } else {
        (0.0, syt / syy.max(1e-30))
    };
    if launch < 0.0 || inv_rate <= 0.0 {
        // degenerate fit (noise at these scales): attribute everything to
        // the compute term
        launch = launch.max(0.0);
        inv_rate = ((syt - launch * sxy) / syy.max(1e-30)).max(1e-30);
    }
    (launch, 1.0 / inv_rate)
}

fn word_units(m: &crate::Manifest, batch: usize, factor: f64) -> f64 {
    let words = (batch as u64).div_ceil(m.lanes_per_word.max(1)) as f64;
    words * (m.cheap_units + factor * m.weighted_units)
}

/// Calibrate every registered backend against the built-in workloads.
/// Backends that admit none of the workloads are left out of the result
/// (and will therefore be skipped by `--backend auto`).
pub fn calibrate(
    registry: &BackendRegistry,
    opts: &CalibrateOptions,
) -> Result<DeviceCalibration, String> {
    let batches: &[usize] = if opts.quick { &[1, 64] } else { &[1, 64, 256] };
    let mut entries = Vec::new();
    for name in registry.names() {
        let backend = registry.get(name).unwrap();
        // compile each workload the way this backend prefers
        let mut plans: Vec<Arc<dyn Plan>> = Vec::new();
        let mut coverage_num = 0.0;
        let mut coverage_den = 0.0;
        for (wname, nl) in workloads() {
            let nn: Arc<CompiledNn<f32>> = Arc::new(
                compile(&nl, backend.compile_options(CompileOptions::with_l(4)))
                    .map_err(|e| format!("{name}/{wname}: compile failed: {e}"))?,
            );
            if let Ok(plan) = backend.admit(&nn) {
                let m = plan.manifest();
                let rows: u64 = m.row_classes.iter().map(|c| c.rows).sum();
                if rows > 0 {
                    let counter = m
                        .row_classes
                        .iter()
                        .filter(|c| c.class == "counter")
                        .map(|c| c.rows)
                        .sum::<u64>();
                    coverage_num += (rows - counter) as f64;
                    coverage_den += rows as f64;
                }
                plans.push(plan);
            }
        }
        if plans.is_empty() {
            continue;
        }

        // first pass: fit launch + rate on the backend-preferred plans,
        // pricing weighted units at par
        let mut points = Vec::new();
        for plan in &plans {
            for &batch in batches {
                let t = time_cycle(plan.as_ref(), batch, opts.quick);
                let m = plan.manifest();
                points.push((m.layers as f64, word_units(m, batch, 1.0), t));
            }
        }
        let (launch_s, unit_per_s) = fit(&points);

        // second pass (bit-plane only): a merged network forces the
        // counter fallback; the residual over the fitted model prices it
        let mut weighted_unit_factor = 1.0;
        if name == "bitplane" {
            let nl = c2nn_circuits::generators::multiplier(4);
            let nn: Arc<CompiledNn<f32>> = Arc::new(
                compile(&nl, CompileOptions::with_l(4).with_passes(PassSet::all()))
                    .map_err(|e| format!("{name}/mult4-merged: compile failed: {e}"))?,
            );
            if let Ok(plan) = backend.admit(&nn) {
                let m = plan.manifest().clone();
                if m.weighted_units > 0.0 {
                    let batch = 64;
                    let t = time_cycle(plan.as_ref(), batch, opts.quick);
                    let words = (batch as u64).div_ceil(m.lanes_per_word.max(1)) as f64;
                    let residual =
                        (t - m.layers as f64 * launch_s) * unit_per_s / words - m.cheap_units;
                    weighted_unit_factor = (residual / m.weighted_units).clamp(0.25, 16.0);
                }
                let rows: u64 = m.row_classes.iter().map(|c| c.rows).sum();
                if rows > 0 {
                    let counter = m
                        .row_classes
                        .iter()
                        .filter(|c| c.class == "counter")
                        .map(|c| c.rows)
                        .sum::<u64>();
                    coverage_num += (rows - counter) as f64;
                    coverage_den += rows as f64;
                }
            }
        }

        let coverage = if coverage_den > 0.0 {
            coverage_num / coverage_den
        } else {
            1.0
        };
        entries.push(BackendCalibration {
            backend: name.to_string(),
            unit_per_s,
            launch_s,
            weighted_unit_factor,
            coverage,
        });
    }
    if entries.is_empty() {
        return Err("no backend admitted any calibration workload".to_string());
    }
    let cal = DeviceCalibration {
        device: opts.device.clone(),
        threads: c2nn_tensor::Pool::global().threads() as u64,
        quick: opts.quick,
        backends: entries,
    };
    cal.validate()?;
    Ok(cal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_two_term_data() {
        // t = 3e-6·layers + units/1e9, sampled on a grid
        let mut points = Vec::new();
        for layers in [2.0, 4.0, 8.0] {
            for units in [100.0, 5000.0, 200000.0] {
                points.push((layers, units, 3e-6 * layers + units / 1e9));
            }
        }
        let (launch, rate) = fit(&points);
        assert!((launch - 3e-6).abs() < 1e-12, "launch {launch}");
        assert!((rate - 1e9).abs() / 1e9 < 1e-6, "rate {rate}");
    }

    #[test]
    fn fit_clamps_to_physical_values() {
        // pathological data with a negative apparent launch cost
        let points = vec![(4.0, 100.0, 1e-7), (8.0, 100.0, 5e-8), (4.0, 200.0, 2e-7)];
        let (launch, rate) = fit(&points);
        assert!(launch >= 0.0);
        assert!(rate > 0.0 && rate.is_finite());
    }

    #[test]
    fn quick_calibration_produces_a_valid_file() {
        let reg = BackendRegistry::with_defaults();
        let opts = CalibrateOptions {
            quick: true,
            device: "test host".to_string(),
        };
        let cal = calibrate(&reg, &opts).unwrap();
        cal.validate().unwrap();
        assert!(cal.quick);
        let names: Vec<_> = cal.backends.iter().map(|b| b.backend.as_str()).collect();
        assert_eq!(names, ["scalar", "pooled-csr", "bitplane"]);
        // round-trips through the codec
        let back = DeviceCalibration::from_json_text(&cal.to_json_text()).unwrap();
        assert_eq!(cal, back);
    }
}
