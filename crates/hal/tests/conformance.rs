//! The backend-conformance suite run against every built-in backend: each
//! engine must be bit-exact vs the pooled-CSR `Simulator` and the
//! gate-level refsim on every suite circuit, honor ragged `execute_batch`
//! semantics, and produce identical typed shape errors. These are the
//! tests the CI `backend-conformance` job runs in release mode.

use c2nn_hal::{conformance, BackendRegistry};

fn backend(name: &str) -> std::sync::Arc<dyn c2nn_hal::Backend> {
    BackendRegistry::global()
        .get(name)
        .unwrap_or_else(|| panic!("`{name}` missing from the global registry"))
        .clone()
}

#[test]
fn scalar_is_bit_exact_on_the_suite() {
    conformance::check_backend(backend("scalar").as_ref());
}

#[test]
fn pooled_csr_is_bit_exact_on_the_suite() {
    conformance::check_backend(backend("pooled-csr").as_ref());
}

#[test]
fn bitplane_is_bit_exact_on_the_suite() {
    conformance::check_backend(backend("bitplane").as_ref());
}

#[test]
fn scalar_ragged_batches_match_run_batch() {
    conformance::check_ragged_batches(backend("scalar").as_ref());
}

#[test]
fn pooled_csr_ragged_batches_match_run_batch() {
    conformance::check_ragged_batches(backend("pooled-csr").as_ref());
}

#[test]
fn bitplane_ragged_batches_match_run_batch() {
    conformance::check_ragged_batches(backend("bitplane").as_ref());
}

#[test]
fn scalar_error_shapes_match_the_contract() {
    conformance::check_error_parity(backend("scalar").as_ref());
}

#[test]
fn pooled_csr_error_shapes_match_the_contract() {
    conformance::check_error_parity(backend("pooled-csr").as_ref());
}

#[test]
fn bitplane_error_shapes_match_the_contract() {
    conformance::check_error_parity(backend("bitplane").as_ref());
}

/// The per-backend tests above name every registered backend explicitly so
/// a failure is attributable from the test name alone; this guard makes
/// sure nobody adds a backend without wiring it into the suite.
#[test]
fn every_registered_backend_is_covered() {
    assert_eq!(
        BackendRegistry::global().names(),
        ["scalar", "pooled-csr", "bitplane"],
        "new backend registered: add its conformance tests to this file"
    );
}
