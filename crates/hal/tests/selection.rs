//! Property tests for `--backend auto` selection and the calibration
//! codec:
//!
//! * auto selection is a pure function of (model, calibration, batch) —
//!   pinning `results/DEVICE.json` pins the decision;
//! * `DeviceModel` / `DeviceCalibration` survive a JSON round-trip
//!   bit-exactly;
//! * a backend whose `admit` rejects is skipped and auto falls back to
//!   the next-best *predicted* backend, not the next registered one.
//!
//! The vendored proptest exposes integer-range strategies only, so float
//! parameters are generated as integers and scaled — which also keeps
//! every generated rate finite and positive by construction.

use c2nn_core::{compile, CompileOptions, CompiledNn};
use c2nn_hal::{
    Backend, BackendCalibration, BackendRegistry, Choice, DeviceCalibration, DeviceModel, Plan,
    Reject,
};
use proptest::prelude::*;
use std::sync::Arc;

fn model() -> Arc<CompiledNn<f32>> {
    Arc::new(
        compile(
            &c2nn_circuits::generators::counter(6),
            CompileOptions::with_l(4),
        )
        .unwrap(),
    )
}

/// A backend that refuses every model — the shape of a calibrated-but-
/// incompatible engine (e.g. bit-plane legalization failure).
struct RejectingBackend;

impl Backend for RejectingBackend {
    fn name(&self) -> &'static str {
        "rejector"
    }

    fn admit(&self, _nn: &Arc<CompiledNn<f32>>) -> Result<Arc<dyn Plan>, Reject> {
        Err(Reject {
            backend: "rejector".to_string(),
            reason: "always rejects (test backend)".to_string(),
        })
    }
}

fn entry(backend: &str, unit_per_s: f64, launch_s: f64) -> BackendCalibration {
    BackendCalibration {
        backend: backend.to_string(),
        unit_per_s,
        launch_s,
        weighted_unit_factor: 1.0,
        coverage: 1.0,
    }
}

const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ()%._-";

proptest! {
    /// Same calibration numbers, same model, same batch → same winner and
    /// same prediction, across independently constructed registries. This
    /// is the determinism contract behind committing `results/DEVICE.json`.
    #[test]
    fn auto_selection_is_deterministic_given_pinned_calibration(
        scalar_rate in 1u64..1_000_000,
        pooled_rate in 1u64..1_000_000,
        bitplane_rate in 1u64..1_000_000,
        launch_ns in 0u64..100_000,
        batch in 1usize..2048,
    ) {
        let cal = DeviceCalibration {
            device: "pinned".to_string(),
            threads: 1,
            quick: false,
            backends: vec![
                entry("scalar", scalar_rate as f64 * 1e6, launch_ns as f64 * 1e-9),
                entry("pooled-csr", pooled_rate as f64 * 1e6, launch_ns as f64 * 1e-9),
                entry("bitplane", bitplane_rate as f64 * 1e6, launch_ns as f64 * 1e-9),
            ],
        };
        let nn = model();
        let a = BackendRegistry::with_defaults()
            .select(&nn, &Choice::Auto, &cal, batch)
            .unwrap();
        let b = BackendRegistry::with_defaults()
            .select(&nn, &Choice::Auto, &cal, batch)
            .unwrap();
        prop_assert_eq!(&a.backend, &b.backend);
        prop_assert_eq!(a.predicted_lane_cps, b.predicted_lane_cps);
        prop_assert_eq!(a.candidates, b.candidates);
        // the winner is the candidates' strict maximum — no hidden ordering
        let max = a
            .candidates
            .iter()
            .filter_map(|c| c.predicted_lane_cps)
            .fold(f64::MIN, f64::max);
        prop_assert_eq!(a.predicted_lane_cps, Some(max));
    }

    /// `DeviceModel` JSON round-trips bit-exactly (the writer uses Rust's
    /// shortest-round-trip float formatting).
    #[test]
    fn device_model_json_round_trips(
        name_idx in proptest::collection::vec(0usize..NAME_CHARS.len(), 0..40),
        mantissa in 1u64..1_000_000_000,
        exp in 0i32..60,
        launch_ns in 0u64..1_000_000_000,
    ) {
        // positive finite f64 spanning ~78 decimal orders of magnitude
        let mac_per_s = mantissa as f64 * 10f64.powi(exp - 30);
        let m = DeviceModel {
            name: name_idx.iter().map(|&i| NAME_CHARS[i] as char).collect(),
            mac_per_s,
            launch_s: launch_ns as f64 * 1e-9,
        };
        let text = c2nn_json::to_string_pretty(&m);
        let back: DeviceModel = c2nn_json::from_str(&text).unwrap();
        prop_assert_eq!(m, back);
    }

    /// Full calibration files round-trip through the `--check` codec.
    #[test]
    fn device_calibration_round_trips(
        rates in proptest::collection::vec(1u64..1_000_000_000, 1..5),
        launch_ns in 0u64..1_000_000_000,
        factor_q in 1u64..64,
        coverage_q in 0u64..=1000,
        threads in 1u64..256,
        quick in any::<bool>(),
    ) {
        let cal = DeviceCalibration {
            device: "round-trip host".to_string(),
            threads,
            quick,
            backends: rates
                .iter()
                .enumerate()
                .map(|(i, &r)| BackendCalibration {
                    backend: format!("backend-{i}"),
                    unit_per_s: r as f64 * 1e3,
                    launch_s: launch_ns as f64 * 1e-9,
                    weighted_unit_factor: factor_q as f64 * 0.25,
                    coverage: coverage_q as f64 / 1000.0,
                })
                .collect(),
        };
        cal.validate().unwrap();
        let back = DeviceCalibration::from_json_text(&cal.to_json_text()).unwrap();
        prop_assert_eq!(cal, back);
    }

    /// A rejecting backend with the best predicted rate never wins: auto
    /// falls back to the best *admitting* backend and records why the
    /// rejector was skipped.
    #[test]
    fn rejecting_backend_falls_back_to_next_best(
        rejector_rate in 1u64..1_000_000,
        scalar_rate in 1u64..1_000,
        pooled_rate in 1u64..1_000,
        batch in 1usize..512,
    ) {
        let mut reg = BackendRegistry::new();
        reg.register(Arc::new(RejectingBackend));
        reg.register(Arc::new(c2nn_hal::CsrBackend::scalar()));
        reg.register(Arc::new(c2nn_hal::CsrBackend::pooled()));
        let cal = DeviceCalibration {
            device: "fallback".to_string(),
            threads: 1,
            quick: false,
            backends: vec![
                // the rejector is calibrated as by far the fastest engine
                entry("rejector", rejector_rate as f64 * 1e12, 0.0),
                entry("scalar", scalar_rate as f64 * 1e6, 1e-7),
                entry("pooled-csr", pooled_rate as f64 * 1e6, 1e-7),
            ],
        };
        let nn = model();
        let sel = reg.select(&nn, &Choice::Auto, &cal, batch).unwrap();
        prop_assert_ne!(&sel.backend, "rejector");
        // winner is the best-predicted among the two admitting backends
        let best_admitted = sel
            .candidates
            .iter()
            .filter(|c| c.skipped.is_none())
            .max_by(|a, b| {
                a.predicted_lane_cps
                    .partial_cmp(&b.predicted_lane_cps)
                    .unwrap()
            })
            .unwrap();
        prop_assert_eq!(&sel.backend, &best_admitted.backend);
        let rejected = sel.candidates.iter().find(|c| c.backend == "rejector").unwrap();
        prop_assert!(rejected.skipped.as_deref().unwrap().contains("always rejects"));
    }
}

/// Explicitly naming a rejecting backend is an error, not a fallback.
#[test]
fn named_rejecting_backend_is_an_error() {
    let mut reg = BackendRegistry::new();
    reg.register(Arc::new(RejectingBackend));
    reg.register(Arc::new(c2nn_hal::CsrBackend::scalar()));
    let cal = DeviceCalibration::default_host(1);
    let err = reg
        .select(&model(), &Choice::Named("rejector".to_string()), &cal, 8)
        .err()
        .unwrap();
    assert!(matches!(err, c2nn_hal::SelectError::Rejected(_)), "{err:?}");
}

/// The ISSUE acceptance shape: with the committed default calibration, a
/// bit-plane-legalizable suite model served at the default batch width
/// auto-selects the bit-plane engine — and the decision is
/// calibration-driven, not a hard-coded preference order.
#[test]
fn suite_model_auto_selects_bitplane_at_serving_batch() {
    let nn = Arc::new(compile(&c2nn_circuits::uart(), CompileOptions::with_l(4)).unwrap());
    let cal = DeviceCalibration::default_host(1);
    let sel = BackendRegistry::global()
        .select(&nn, &Choice::Auto, &cal, 64)
        .unwrap();
    assert_eq!(sel.backend, "bitplane", "candidates: {:?}", sel.candidates);
    // crippling the bitplane rate flips the winner to a CSR engine
    let mut slow = cal.clone();
    slow.backends
        .iter_mut()
        .find(|b| b.backend == "bitplane")
        .unwrap()
        .unit_per_s = 1.0;
    let sel = BackendRegistry::global()
        .select(&nn, &Choice::Auto, &slow, 64)
        .unwrap();
    assert_ne!(sel.backend, "bitplane");
}
