//! UART with TX/RX FIFOs (16550-flavoured) — the "UART" row of Table I.
//!
//! Unlike the programmatic cores, this circuit ships as real Verilog source
//! and is elaborated through the `c2nn-verilog` frontend, exercising
//! hierarchy flattening, parameters, FIFOs built from registers + `case`,
//! and oversampled serial state machines.

use c2nn_netlist::Netlist;

/// The Verilog source of the UART (top module `uart`).
pub const UART_VERILOG: &str = r#"
// 4-deep fall-through FIFO: slot 0 is the read head.
module fifo4(input clk, input wr, input rd, input [7:0] din,
             output [7:0] dout, output empty, output full);
  reg [7:0] s0, s1, s2, s3;
  reg [2:0] count;
  wire is_full = count == 3'd4;
  wire do_rd = rd & (count != 3'd0);
  wire do_wr = wr & (~is_full | do_rd);
  wire [2:0] wpos = do_rd ? count - 3'd1 : count;
  always @(posedge clk) begin
    if (do_rd) begin
      s0 <= s1; s1 <= s2; s2 <= s3;
    end
    if (do_wr) begin
      case (wpos)
        3'd0: s0 <= din;
        3'd1: s1 <= din;
        3'd2: s2 <= din;
        default: s3 <= din;
      endcase
    end
    count <= count + {2'b00, do_wr} - {2'b00, do_rd};
  end
  assign dout = s0;
  assign empty = count == 3'd0;
  assign full = is_full;
endmodule

// Serial transmitter: start bit, 8 data bits LSB first, stop bit.
module uart_tx #(parameter DIV = 4) (
  input clk, input wr, input [7:0] data, output txd, output busy);
  reg [7:0] divcnt;
  reg [3:0] bitpos;
  reg [9:0] shifter;
  reg active;
  assign busy = active;
  assign txd = active ? shifter[0] : 1'b1;
  always @(posedge clk) begin
    if (!active) begin
      if (wr) begin
        shifter <= {1'b1, data, 1'b0};
        bitpos <= 4'd0;
        divcnt <= 8'd0;
        active <= 1'b1;
      end
    end else begin
      if (divcnt == DIV - 1) begin
        divcnt <= 8'd0;
        shifter <= {1'b1, shifter[9:1]};
        if (bitpos == 4'd9) active <= 1'b0;
        bitpos <= bitpos + 4'd1;
      end else begin
        divcnt <= divcnt + 8'd1;
      end
    end
  end
endmodule

// Serial receiver with mid-bit sampling.
module uart_rx #(parameter DIV = 4) (
  input clk, input rxd, output reg [7:0] data, output reg valid);
  reg [7:0] divcnt;
  reg [3:0] bitpos;
  reg [7:0] shifter;
  reg active;
  always @(posedge clk) begin
    valid <= 1'b0;
    if (!active) begin
      if (!rxd) begin
        active <= 1'b1;
        divcnt <= 8'd0;
        bitpos <= 4'd0;
      end
    end else begin
      if (divcnt == DIV - 1) divcnt <= 8'd0;
      else divcnt <= divcnt + 8'd1;
      if (divcnt == DIV / 2) begin
        if (bitpos == 4'd0) begin
          if (rxd) active <= 1'b0;      // false start bit
          bitpos <= 4'd1;
        end else if (bitpos == 4'd9) begin
          active <= 1'b0;
          data <= shifter;
          valid <= rxd;                  // stop bit must be high
        end else begin
          shifter <= {rxd, shifter[7:1]};
          bitpos <= bitpos + 4'd1;
        end
      end
    end
  end
endmodule

// Top: TX FIFO -> transmitter, receiver -> RX FIFO.
module uart #(parameter DIV = 4) (
  input clk, input wr, input [7:0] wdata, input rd, input rxd,
  output txd, output [7:0] rdata, output rx_avail, output tx_full,
  output tx_busy);
  wire tfifo_empty, tfifo_full;
  wire [7:0] tx_head;
  wire tx_busy_i;
  wire tx_pop = ~tfifo_empty & ~tx_busy_i;
  fifo4 txf (.clk(clk), .wr(wr), .rd(tx_pop), .din(wdata),
             .dout(tx_head), .empty(tfifo_empty), .full(tfifo_full));
  uart_tx #(.DIV(DIV)) txu (.clk(clk), .wr(tx_pop), .data(tx_head),
                            .txd(txd), .busy(tx_busy_i));
  wire [7:0] rx_data;
  wire rx_valid, rfifo_empty, rfifo_full;
  uart_rx #(.DIV(DIV)) rxu (.clk(clk), .rxd(rxd), .data(rx_data),
                            .valid(rx_valid));
  fifo4 rxf (.clk(clk), .wr(rx_valid), .rd(rd), .din(rx_data),
             .dout(rdata), .empty(rfifo_empty), .full(rfifo_full));
  assign rx_avail = ~rfifo_empty;
  assign tx_full = tfifo_full;
  assign tx_busy = tx_busy_i;
endmodule
"#;

/// Elaborate the UART netlist (baud divisor fixed by the source parameter).
pub fn uart() -> Netlist {
    c2nn_verilog::compile(UART_VERILOG, "uart").expect("UART source must elaborate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_refsim::CycleSim;

    // input order: wr, wdata[8], rd, rxd ; output order: txd, rdata[8],
    // rx_avail, tx_full, tx_busy
    fn stim(wr: bool, wdata: u8, rd: bool, rxd: bool) -> Vec<bool> {
        let mut v = vec![wr];
        v.extend((0..8).map(|i| wdata >> i & 1 == 1));
        v.push(rd);
        v.push(rxd);
        v
    }

    #[test]
    fn elaborates() {
        let nl = uart();
        assert!(nl.gate_count() > 300, "UART gates: {}", nl.gate_count());
        assert_eq!(nl.inputs.len(), 11);
        assert_eq!(nl.outputs.len(), 12);
    }

    #[test]
    fn loopback_transfers_bytes() {
        let nl = uart();
        let mut sim = CycleSim::new(&nl).unwrap();
        let bytes = [0x55u8, 0xa3, 0x00, 0xff];
        // queue all four bytes into the TX FIFO
        let mut txd = true;
        for &byt in &bytes {
            let out = sim.step(&stim(true, byt, false, txd));
            txd = out[0];
        }
        // loop txd back into rxd until all bytes arrive
        let mut received = Vec::new();
        for _ in 0..4000 {
            let out = sim.step(&stim(false, 0, false, txd));
            txd = out[0];
            let rx_avail = out[9];
            if rx_avail {
                // pop one byte
                let out = sim.step(&stim(false, 0, true, txd));
                txd = out[0];
                let byte: u8 = (0..8).map(|i| (out[1 + i] as u8) << i).sum();
                received.push(byte);
                if received.len() == bytes.len() {
                    break;
                }
            }
        }
        assert_eq!(received, bytes.to_vec(), "UART loopback corrupted data");
    }

    #[test]
    fn idle_line_stays_high() {
        let nl = uart();
        let mut sim = CycleSim::new(&nl).unwrap();
        for _ in 0..50 {
            let out = sim.step(&stim(false, 0, false, true));
            assert!(out[0], "txd must idle high");
            assert!(!out[9], "no data should be available");
        }
    }
}
