//! RV32I decode/execute interface unit — the "RISC-V interface" row of
//! Table I (the paper uses "an ad-hoc processor designed to interface with
//! RISC-V core").
//!
//! A single-cycle datapath around an internal 32×32 register file:
//! instructions arrive on `instr[31:0]` with `ivalid`; the unit decodes,
//! reads the register file, executes the ALU/branch/load-store address
//! logic, and writes back. Supported: LUI, AUIPC, all OP-IMM and OP
//! arithmetic (ADD/SUB/SLL/SLT/SLTU/XOR/SRL/SRA/OR/AND), branches
//! (outputs `branch_taken` and `branch_target`), and load/store effective
//! addresses (`mem_addr`, `mem_we`, `mem_wdata`; load data returns on
//! `mem_rdata` the same cycle).
//!
//! `pc` is maintained internally (sequential, branch-redirected).

use c2nn_netlist::{Net, Netlist, NetlistBuilder, WordOps};

type Word = Vec<Net>;

/// Arithmetic right shift by variable amount (sign fill).
fn sra_var(b: &mut NetlistBuilder, a: &[Net], sh: &[Net]) -> Word {
    let sign = a[31];
    let mut cur = a.to_vec();
    for (stage, &s) in sh.iter().enumerate() {
        let k = 1usize << stage;
        let mut shifted = vec![sign; cur.len()];
        let n = cur.len().saturating_sub(k);
        shifted[..n].copy_from_slice(&cur[k..k + n]);
        cur = b.mux_word(s, &cur, &shifted);
    }
    cur
}

/// Build the RV32I interface unit.
pub fn riscv_interface() -> Netlist {
    let mut b = NetlistBuilder::new("rv32i_iface");
    let clk = b.clock("clk");
    let ivalid = b.input("ivalid");
    let instr: Word = b.input_word("instr", 32);
    let mem_rdata: Word = b.input_word("mem_rdata", 32);

    // register file: x0..x31 (x0 reads as zero)
    let regs: Vec<Word> = (0..32)
        .map(|i| b.fresh_word(&format!("x{i}"), 32))
        .collect();
    let pc_q = b.fresh_word("pc", 32);

    // ---- decode ----
    let opcode = instr[0..7].to_vec();
    let rd = instr[7..12].to_vec();
    let funct3 = instr[12..15].to_vec();
    let rs1 = instr[15..20].to_vec();
    let rs2 = instr[20..25].to_vec();
    let funct7_5 = instr[30];

    let op_lui = b.eq_const(&opcode, 0b0110111);
    let op_auipc = b.eq_const(&opcode, 0b0010111);
    let op_imm = b.eq_const(&opcode, 0b0010011);
    let op_reg = b.eq_const(&opcode, 0b0110011);
    let op_branch = b.eq_const(&opcode, 0b1100011);
    let op_load = b.eq_const(&opcode, 0b0000011);
    let op_store = b.eq_const(&opcode, 0b0100011);
    let op_jal = b.eq_const(&opcode, 0b1101111);
    let op_jalr = b.eq_const(&opcode, 0b1100111);

    // ---- immediates ----
    let zero = b.zero();
    let sign = instr[31];
    // I-type: instr[31:20] sign-extended
    let imm_i: Word = {
        let mut v: Word = instr[20..32].to_vec();
        v.extend(std::iter::repeat_n(sign, 20));
        v
    };
    // S-type: [31:25]+[11:7]
    let imm_s: Word = {
        let mut v: Word = instr[7..12].to_vec();
        v.extend_from_slice(&instr[25..32]);
        v.extend(std::iter::repeat_n(sign, 20));
        v
    };
    // B-type
    let imm_b: Word = {
        let mut v: Word = vec![zero];
        v.extend_from_slice(&instr[8..12]);
        v.extend_from_slice(&instr[25..31]);
        v.push(instr[7]);
        v.extend(std::iter::repeat_n(sign, 20));
        v
    };
    // U-type
    let imm_u: Word = {
        let mut v: Word = vec![zero; 12];
        v.extend_from_slice(&instr[12..32]);
        v
    };
    // J-type
    let imm_j: Word = {
        let mut v: Word = vec![zero];
        v.extend_from_slice(&instr[21..31]);
        v.push(instr[20]);
        v.extend_from_slice(&instr[12..20]);
        v.extend(std::iter::repeat_n(sign, 12));
        v
    };

    // ---- register read (one-hot muxes over 32 registers) ----
    let rs1_sel: Vec<Net> = (0..32).map(|i| b.eq_const(&rs1, i as u64)).collect();
    let rs2_sel: Vec<Net> = (0..32).map(|i| b.eq_const(&rs2, i as u64)).collect();
    let rs1_raw = b.onehot_mux_word(&rs1_sel, &regs);
    let rs2_raw = b.onehot_mux_word(&rs2_sel, &regs);
    // x0 is architecturally zero
    let rs1_nz = {
        let nz = b.reduce_or(&rs1);
        let zeros = b.const_word(0, 32);
        b.mux_word(nz, &zeros, &rs1_raw)
    };
    let rs2_nz = {
        let nz = b.reduce_or(&rs2);
        let zeros = b.const_word(0, 32);
        b.mux_word(nz, &zeros, &rs2_raw)
    };

    // ---- ALU ----
    let use_imm = {
        let t = b.or2(op_imm, op_load);
        let t2 = b.or2(t, op_jalr);
        b.or2(t2, op_store)
    };
    let imm_or_s = {
        // stores use S-immediate, everything else here uses I-immediate
        b.mux_word(op_store, &imm_i, &imm_s)
    };
    let opb = b.mux_word(use_imm, &rs2_nz, &imm_or_s);
    let opa = rs1_nz.clone();

    let sum = b.add_word(&opa, &opb);
    let diff = b.sub_word(&opa, &rs2_nz); // register compare path
    let diff_imm = b.sub_word(&opa, &opb);
    let _ = diff_imm;
    let and_w = b.and_word(&opa, &opb);
    let or_w = b.or_word(&opa, &opb);
    let xor_w = b.xor_word(&opa, &opb);
    let shamt = opb[0..5].to_vec();
    let sll = b.shl_var(&opa, &shamt);
    let srl = b.shr_var(&opa, &shamt);
    let sra = sra_var(&mut b, &opa, &shamt);
    // signed/unsigned less-than
    let ltu = b.lt_word(&opa, &opb);
    let lt_signed = {
        // a <s b  =  (a.sign != b.sign) ? a.sign : a <u b
        let sa = opa[31];
        let sb = opb[31];
        let diff_sign = b.xor2(sa, sb);
        b.mux(diff_sign, ltu, sa)
    };
    let slt_w = {
        let mut w = vec![lt_signed];
        w.extend(vec![zero; 31]);
        w
    };
    let sltu_w = {
        let mut w = vec![ltu];
        w.extend(vec![zero; 31]);
        w
    };
    // sub only in OP with funct7[5]
    let do_sub = b.and2(op_reg, funct7_5);
    let diff_reg = diff.clone();
    let addsub = b.mux_word(do_sub, &sum, &diff_reg);
    let srl_or_sra = b.mux_word(funct7_5, &srl, &sra);

    // funct3 select
    let f3: Vec<Net> = (0..8).map(|k| b.eq_const(&funct3, k)).collect();
    let alu_out = {
        let mut acc = b.const_word(0, 32);
        let choices: Vec<(Net, &Word)> = vec![
            (f3[0], &addsub),
            (f3[1], &sll),
            (f3[2], &slt_w),
            (f3[3], &sltu_w),
            (f3[4], &xor_w),
            (f3[5], &srl_or_sra),
            (f3[6], &or_w),
            (f3[7], &and_w),
        ];
        for (sel, w) in choices {
            let gated: Word = w.iter().map(|&x| b.and2(sel, x)).collect();
            acc = b.or_word(&acc, &gated);
        }
        acc
    };

    // ---- branches ----
    let eq = b.eq_word(&rs1_nz, &rs2_nz);
    let ne = b.not(eq);
    let blt = {
        let sa = rs1_nz[31];
        let sb = rs2_nz[31];
        let ds = b.xor2(sa, sb);
        let ltu2 = b.lt_word(&rs1_nz, &rs2_nz);
        b.mux(ds, ltu2, sa)
    };
    let bge = b.not(blt);
    let bltu = b.lt_word(&rs1_nz, &rs2_nz);
    let bgeu = b.not(bltu);
    let br_cond = {
        let mut acc = zero;
        for (k, c) in [(0, eq), (1, ne), (4, blt), (5, bge), (6, bltu), (7, bgeu)] {
            let sel = b.eq_const(&funct3, k);
            let t = b.and2(sel, c);
            acc = b.or2(acc, t);
        }
        acc
    };
    let branch_taken = {
        let bt = b.and2(op_branch, br_cond);
        let j = b.or2(op_jal, op_jalr);
        let t = b.or2(bt, j);
        b.and2(t, ivalid)
    };
    let branch_target = {
        let pc_b = b.add_word(&pc_q, &imm_b);
        let pc_j = b.add_word(&pc_q, &imm_j);
        let jalr_t = {
            let t = b.add_word(&rs1_nz, &imm_i);
            // clear bit 0 per spec
            let mut t2 = t;
            t2[0] = zero;
            t2
        };
        let bj = b.mux_word(op_jal, &pc_b, &pc_j);
        b.mux_word(op_jalr, &bj, &jalr_t)
    };

    // ---- write-back value ----
    let four = b.const_word(4, 32);
    let pc4 = b.add_word(&pc_q, &four);
    let auipc_v = b.add_word(&pc_q, &imm_u);
    let wb = {
        let mut v = alu_out.clone();
        v = b.mux_word(op_lui, &v, &imm_u);
        v = b.mux_word(op_auipc, &v, &auipc_v);
        v = b.mux_word(op_load, &v, &mem_rdata);
        let isj = b.or2(op_jal, op_jalr);
        v = b.mux_word(isj, &v, &pc4);
        v
    };
    let writes_rd = {
        let t1 = b.or_many(&[op_lui, op_auipc, op_imm, op_reg, op_load, op_jal, op_jalr]);
        let rd_nz = b.reduce_or(&rd);
        let t2 = b.and2(t1, rd_nz);
        b.and2(t2, ivalid)
    };

    // ---- register file write ----
    for (i, reg) in regs.iter().enumerate() {
        let here = b.eq_const(&rd, i as u64);
        let we = b.and2(writes_rd, here);
        let next = b.mux_word(we, reg, &wb);
        b.connect_ff_word(&next, reg, clk, None, None, 0, 0);
    }

    // ---- pc update ----
    let pc_next = {
        let seq = b.mux_word(ivalid, &pc_q, &pc4);
        b.mux_word(branch_taken, &seq, &branch_target)
    };
    b.connect_ff_word(&pc_next, &pc_q, clk, None, None, 0, 0);

    // ---- memory port ----
    let ea = sum.clone(); // rs1 + imm (I for loads, S for stores via opb mux)
    let mem_we = b.and2(op_store, ivalid);
    let mem_re = b.and2(op_load, ivalid);
    b.output(mem_re, "mem_re");
    b.output(mem_we, "mem_we");
    b.output_word(&ea, "mem_addr");
    b.output_word(&rs2_nz, "mem_wdata");
    b.output(branch_taken, "branch_taken");
    b.output_word(&branch_target, "branch_target");
    b.output_word(&pc_q, "pc");
    b.output_word(&wb, "wb_value");
    b.finish().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_refsim::CycleSim;

    struct Rv {
        sim: CycleSim,
        out: Vec<bool>,
    }

    // output layout offsets
    const MEM_ADDR: usize = 2;
    const BR_TAKEN: usize = 66;
    const PC: usize = 99;
    const WB: usize = 131;

    impl Rv {
        fn new() -> Self {
            let nl = riscv_interface();
            assert!(nl.gate_count() > 5_000, "rv32i gates: {}", nl.gate_count());
            Rv {
                sim: CycleSim::new(&nl).unwrap(),
                out: Vec::new(),
            }
        }

        fn exec(&mut self, instr: u32) {
            self.exec_with_mem(instr, 0)
        }

        fn exec_with_mem(&mut self, instr: u32, rdata: u32) {
            let mut inp = vec![true];
            inp.extend((0..32).map(|i| instr >> i & 1 == 1));
            inp.extend((0..32).map(|i| rdata >> i & 1 == 1));
            self.out = self.sim.step(&inp);
        }

        fn word(&self, base: usize) -> u32 {
            (0..32).map(|i| (self.out[base + i] as u32) << i).sum()
        }
    }

    // instruction encoders
    fn addi(rd: u32, rs1: u32, imm: i32) -> u32 {
        (imm as u32) << 20 | rs1 << 15 | rd << 7 | 0b0010011
    }
    fn op(rd: u32, rs1: u32, rs2: u32, f3: u32, f7: u32) -> u32 {
        f7 << 25 | rs2 << 20 | rs1 << 15 | f3 << 12 | rd << 7 | 0b0110011
    }
    fn lui(rd: u32, imm20: u32) -> u32 {
        imm20 << 12 | rd << 7 | 0b0110111
    }
    fn beq(rs1: u32, rs2: u32, off: i32) -> u32 {
        let o = off as u32;
        (o >> 12 & 1) << 31
            | (o >> 5 & 0x3f) << 25
            | rs2 << 20
            | rs1 << 15
            | (o >> 1 & 0xf) << 8
            | (o >> 11 & 1) << 7
            | 0b1100011
    }
    fn lw(rd: u32, rs1: u32, imm: i32) -> u32 {
        (imm as u32 & 0xfff) << 20 | rs1 << 15 | 0b010 << 12 | rd << 7 | 0b0000011
    }
    fn sw(rs2: u32, rs1: u32, imm: i32) -> u32 {
        let i = imm as u32 & 0xfff;
        (i >> 5) << 25 | rs2 << 20 | rs1 << 15 | 0b010 << 12 | (i & 0x1f) << 7 | 0b0100011
    }

    #[test]
    fn arithmetic_sequence() {
        let mut rv = Rv::new();
        rv.exec(addi(1, 0, 7)); // x1 = 7
        assert_eq!(rv.word(WB), 7);
        rv.exec(addi(2, 1, 5)); // x2 = x1 + 5 = 12
        assert_eq!(rv.word(WB), 12);
        rv.exec(op(3, 2, 1, 0b000, 0b0100000)); // x3 = x2 - x1 = 5
        assert_eq!(rv.word(WB), 5);
        rv.exec(op(4, 2, 1, 0b111, 0)); // x4 = x2 & x1 = 4
        assert_eq!(rv.word(WB), 4);
        rv.exec(op(5, 2, 1, 0b100, 0)); // x5 = x2 ^ x1 = 11
        assert_eq!(rv.word(WB), 11);
    }

    #[test]
    fn shifts_and_compares() {
        let mut rv = Rv::new();
        rv.exec(addi(1, 0, -3)); // x1 = -3
        assert_eq!(rv.word(WB), (-3i32) as u32);
        rv.exec(addi(2, 0, 4)); // x2 = 4
        rv.exec(op(3, 1, 2, 0b101, 0b0100000)); // x3 = x1 >>> 4 (sra)
        assert_eq!(rv.word(WB), ((-3i32) >> 4) as u32);
        rv.exec(op(4, 2, 1, 0b010, 0)); // slt: 4 < -3 ? 0
        assert_eq!(rv.word(WB), 0);
        rv.exec(op(5, 1, 2, 0b010, 0)); // slt: -3 < 4 ? 1
        assert_eq!(rv.word(WB), 1);
        rv.exec(op(6, 1, 2, 0b011, 0)); // sltu: 0xfffffffd < 4 ? 0
        assert_eq!(rv.word(WB), 0);
        rv.exec(op(7, 2, 1, 0b001, 0)); // sll: 4 << (x1 & 31) = 4 << 29
        assert_eq!(rv.word(WB), 4u32.wrapping_shl(29));
    }

    #[test]
    fn lui_and_pc_advance() {
        let mut rv = Rv::new();
        assert_eq!(rv.sim.cycles(), 0);
        rv.exec(lui(1, 0xabcde));
        assert_eq!(rv.word(WB), 0xabcde000);
        let pc0 = rv.word(PC);
        rv.exec(addi(0, 0, 0)); // nop
        assert_eq!(rv.word(PC), pc0 + 4);
    }

    #[test]
    fn branch_redirects_pc() {
        let mut rv = Rv::new();
        rv.exec(addi(1, 0, 9));
        rv.exec(addi(2, 0, 9));
        let pc_before = rv.word(PC) + 4; // pc of the branch after this fetch
        rv.exec(beq(1, 2, 16));
        assert!(rv.out[BR_TAKEN], "beq of equal values must take");
        // branch target = pc + 16
        let target = rv.word(BR_TAKEN + 1);
        assert_eq!(target, pc_before + 16);
        // next pc reflects the redirect (the nop executes *at* the target)
        rv.exec(addi(0, 0, 0));
        assert_eq!(rv.word(PC), target);
        // not-taken case
        rv.exec(addi(2, 0, 1));
        rv.exec(beq(1, 2, 16));
        assert!(!rv.out[BR_TAKEN]);
    }

    #[test]
    fn loads_and_stores() {
        let mut rv = Rv::new();
        rv.exec(addi(1, 0, 0x40)); // base
        rv.exec(sw(1, 1, 8)); // store x1 at x1+8
        assert!(rv.out[1], "mem_we");
        assert_eq!(rv.word(MEM_ADDR), 0x48);
        let wdata = rv.word(MEM_ADDR + 32);
        assert_eq!(wdata, 0x40);
        rv.exec_with_mem(lw(3, 1, 8), 0xcafe_f00d);
        assert!(rv.out[0], "mem_re");
        assert_eq!(rv.word(MEM_ADDR), 0x48);
        assert_eq!(rv.word(WB), 0xcafe_f00d);
        // and x3 really holds it
        rv.exec(op(4, 3, 0, 0b110, 0)); // or x4 = x3 | x0
        assert_eq!(rv.word(WB), 0xcafe_f00d);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut rv = Rv::new();
        rv.exec(addi(0, 0, 123)); // write to x0 discarded
        rv.exec(op(1, 0, 0, 0b110, 0)); // x1 = x0 | x0
        assert_eq!(rv.word(WB), 0);
    }
}
