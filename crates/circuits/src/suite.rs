//! The Table I benchmark registry: one entry per circuit the paper
//! evaluates, with sizing knobs for the harness.

use c2nn_netlist::Netlist;

/// A named benchmark circuit.
pub struct Benchmark {
    /// Table I row name.
    pub name: &'static str,
    /// Short description for reports.
    pub description: &'static str,
    /// Build the netlist.
    pub build: fn() -> Netlist,
}

/// The six circuits of the paper's Table I, in row order.
pub fn table1_suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "AES",
            description: "AES-128 encryption core, 1 round/cycle, hardware key schedule",
            build: crate::aes::aes128,
        },
        Benchmark {
            name: "SHA",
            description: "SHA-256 compression core, 1 round/cycle, 16-word schedule ring",
            build: crate::sha::sha256,
        },
        Benchmark {
            name: "SPI",
            description: "SPI mode-0 master with transfer counter (Verilog frontend)",
            build: crate::spi::spi,
        },
        Benchmark {
            name: "UART",
            description: "UART with TX/RX FIFOs, oversampled RX (Verilog frontend)",
            build: crate::uart::uart,
        },
        Benchmark {
            name: "DMA",
            description: "64-channel round-robin memory-to-memory DMA engine",
            build: || crate::dma::dma(64),
        },
        Benchmark {
            name: "RISC-V interface",
            description: "RV32I single-cycle decode/execute unit with register file",
            build: crate::riscv::riscv_interface,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_validate() {
        for bench in table1_suite() {
            let nl = (bench.build)();
            nl.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            assert!(
                nl.gate_count() > 100,
                "{} suspiciously small: {}",
                bench.name,
                nl.gate_count()
            );
        }
    }

    #[test]
    fn sizes_are_ordered_like_the_paper() {
        // Table I ordering: DMA largest; SPI/UART smallest group
        let sizes: std::collections::HashMap<&str, usize> = table1_suite()
            .iter()
            .map(|b| (b.name, (b.build)().gate_count()))
            .collect();
        assert!(sizes["DMA"] > sizes["AES"], "DMA should be the largest");
        assert!(sizes["AES"] > sizes["UART"]);
        assert!(sizes["AES"] > sizes["SPI"]);
        assert!(sizes["SHA"] > sizes["UART"]);
    }
}
