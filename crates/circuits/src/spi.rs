//! SPI master (mode 0) — the "SPI" row of Table I. Ships as Verilog source
//! compiled through the frontend, like the UART.

use c2nn_netlist::Netlist;

/// The Verilog source of the SPI master (top module `spi_master`).
pub const SPI_VERILOG: &str = r#"
// Mode-0 SPI master: sample MISO on the rising SCLK edge, shift MOSI on
// the falling edge, MSB first, one byte per `start` pulse.
module spi_master #(parameter DIV = 2) (
  input clk, input start, input [7:0] tx_data, input miso,
  output reg sclk, output mosi, output reg cs_n = 1'b1,
  output reg [7:0] rx_data, output reg done, output busy);
  reg [7:0] sh;
  reg [3:0] bitcnt;
  reg [7:0] divcnt;
  reg active;
  assign mosi = sh[7];
  assign busy = active;
  always @(posedge clk) begin
    done <= 1'b0;
    if (!active) begin
      if (start) begin
        sh <= tx_data;
        bitcnt <= 4'd0;
        divcnt <= 8'd0;
        active <= 1'b1;
        cs_n <= 1'b0;
        sclk <= 1'b0;
      end
    end else begin
      if (divcnt == DIV - 1) begin
        divcnt <= 8'd0;
        if (!sclk) begin
          sclk <= 1'b1;                       // rising edge: sample
          rx_data <= {rx_data[6:0], miso};
        end else begin
          sclk <= 1'b0;                       // falling edge: shift
          sh <= {sh[6:0], 1'b0};
          if (bitcnt == 4'd7) begin
            active <= 1'b0;
            cs_n <= 1'b1;
            done <= 1'b1;
          end
          bitcnt <= bitcnt + 4'd1;
        end
      end else begin
        divcnt <= divcnt + 8'd1;
      end
    end
  end
endmodule

// Byte-stream wrapper: a small command register block around the master,
// giving the circuit some control-plane logic like a real SPI peripheral.
module spi (
  input clk, input start, input [7:0] tx_data, input miso,
  output sclk, output mosi, output cs_n, output [7:0] rx_data,
  output done, output busy, output [7:0] xfer_count);
  reg [7:0] count;
  wire done_i;
  spi_master #(.DIV(2)) core (.clk(clk), .start(start), .tx_data(tx_data),
                              .miso(miso), .sclk(sclk), .mosi(mosi),
                              .cs_n(cs_n), .rx_data(rx_data), .done(done_i),
                              .busy(busy));
  always @(posedge clk) begin
    if (done_i) count <= count + 8'd1;
  end
  assign done = done_i;
  assign xfer_count = count;
endmodule
"#;

/// Elaborate the SPI netlist.
pub fn spi() -> Netlist {
    c2nn_verilog::compile(SPI_VERILOG, "spi").expect("SPI source must elaborate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_refsim::CycleSim;

    // inputs: start, tx_data[8], miso
    fn stim(start: bool, tx: u8, miso: bool) -> Vec<bool> {
        let mut v = vec![start];
        v.extend((0..8).map(|i| tx >> i & 1 == 1));
        v.push(miso);
        v
    }

    #[test]
    fn elaborates() {
        let nl = spi();
        assert!(nl.gate_count() > 150, "SPI gates: {}", nl.gate_count());
    }

    #[test]
    fn loopback_byte_roundtrip() {
        let nl = spi();
        let mut sim = CycleSim::new(&nl).unwrap();
        // outputs: sclk, mosi, cs_n, rx_data[8], done, busy, xfer_count[8]
        for &byte in &[0xc3u8, 0x01, 0x80, 0x5a] {
            let mut mosi = false;
            let mut out = sim.step(&stim(true, byte, mosi));
            mosi = out[1];
            let mut done = false;
            for _ in 0..200 {
                out = sim.step(&stim(false, 0, mosi));
                mosi = out[1];
                if out[11] {
                    done = true;
                    break;
                }
            }
            assert!(done, "SPI transfer never completed");
            let rx: u8 = (0..8).map(|i| (out[3 + i] as u8) << i).sum();
            assert_eq!(rx, byte, "loopback byte mismatch");
        }
        // transfer counter advanced 4 times
        let out = sim.step(&stim(false, 0, false));
        let count: u8 = (0..8).map(|i| (out[13 + i] as u8) << i).sum();
        assert_eq!(count, 4);
    }

    #[test]
    fn cs_idles_high() {
        let nl = spi();
        let mut sim = CycleSim::new(&nl).unwrap();
        for _ in 0..20 {
            let out = sim.step(&stim(false, 0, false));
            assert!(out[2], "cs_n must idle high");
            assert!(!out[12], "busy must idle low");
        }
    }
}
