//! AES-128 encryption core (iterative, one round per cycle) — the "AES"
//! row of the paper's Table I.
//!
//! Interface (all signals active high, one clock):
//! * `start` — pulse with `key` and `pt` valid; loads and begins;
//! * `key[127:0]`, `pt[127:0]` — byte `i` of the FIPS-197 byte sequence in
//!   bits `8i..8i+8` (LSB-first within the byte);
//! * `ct[127:0]` — ciphertext, valid when `done`;
//! * `busy`, `done`.
//!
//! Latency: 1 load cycle + 10 round cycles. S-boxes are synthesized from
//! the real FIPS-197 table via Shannon mux trees; the key schedule runs in
//! hardware alongside the rounds.

use c2nn_netlist::{Net, Netlist, NetlistBuilder, WordOps};

/// The FIPS-197 S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

type Byte = Vec<Net>; // 8 nets, LSB first

fn sbox_byte(b: &mut NetlistBuilder, x: &Byte) -> Byte {
    (0..8)
        .map(|k| {
            let mut bits = [0u64; 4];
            for (i, &s) in SBOX.iter().enumerate() {
                if s >> k & 1 == 1 {
                    bits[i / 64] |= 1 << (i % 64);
                }
            }
            b.synth_truth_table(x, &bits)
        })
        .collect()
}

/// GF(2^8) multiply by 2 (xtime).
fn xtime(b: &mut NetlistBuilder, x: &Byte) -> Byte {
    // (x << 1) ^ (x[7] ? 0x1b : 0)
    let msb = x[7];
    let mut out: Byte = Vec::with_capacity(8);
    let zero = b.zero();
    for k in 0..8 {
        let shifted = if k == 0 { zero } else { x[k - 1] };
        let bit = if 0x1bu8 >> k & 1 == 1 {
            // shifted ^ msb
            b.xor2(shifted, msb)
        } else {
            shifted
        };
        out.push(bit);
    }
    out
}

fn xor_bytes(b: &mut NetlistBuilder, xs: &[&Byte]) -> Byte {
    (0..8)
        .map(|k| {
            let bits: Vec<Net> = xs.iter().map(|x| x[k]).collect();
            b.xor_many(&bits)
        })
        .collect()
}

/// MixColumns on one column `[a0, a1, a2, a3]`.
fn mix_column(b: &mut NetlistBuilder, col: &[Byte; 4]) -> [Byte; 4] {
    let d: Vec<Byte> = col.iter().map(|a| xtime(b, a)).collect(); // 2·a_i
    let t: Vec<Byte> = (0..4).map(|i| xor_bytes(b, &[&d[i], &col[i]])).collect(); // 3·a_i
    [
        xor_bytes(b, &[&d[0], &t[1], &col[2], &col[3]]),
        xor_bytes(b, &[&col[0], &d[1], &t[2], &col[3]]),
        xor_bytes(b, &[&col[0], &col[1], &d[2], &t[3]]),
        xor_bytes(b, &[&t[0], &col[1], &col[2], &d[3]]),
    ]
}

/// Build the AES-128 core netlist.
pub fn aes128() -> Netlist {
    let mut b = NetlistBuilder::new("aes128");
    let clk = b.clock("clk");
    let start = b.input("start");
    let key_in: Vec<Net> = b.input_word("key", 128);
    let pt_in: Vec<Net> = b.input_word("pt", 128);

    // state registers (pre-allocated for feedback)
    let state_q = b.fresh_word("state", 128);
    let rkey_q = b.fresh_word("rkey", 128);
    let round_q = b.fresh_word("round", 4);
    let busy_q = b.fresh(Some("busy"));
    let done_q = b.fresh(Some("done"));

    let bytes =
        |w: &[Net]| -> Vec<Byte> { (0..16).map(|i| w[8 * i..8 * i + 8].to_vec()).collect() };
    let st = bytes(&state_q);
    let rk = bytes(&rkey_q);

    // ---- round datapath ----
    // SubBytes
    let sub: Vec<Byte> = st.iter().map(|byte| sbox_byte(&mut b, byte)).collect();
    // ShiftRows: byte index r + 4c (column-major); row r rotates left by r
    let mut shifted: Vec<Byte> = vec![Vec::new(); 16];
    for r in 0..4 {
        for c in 0..4 {
            shifted[r + 4 * c] = sub[r + 4 * ((c + r) % 4)].clone();
        }
    }
    // MixColumns
    let mut mixed: Vec<Byte> = vec![Vec::new(); 16];
    for c in 0..4 {
        let col = [
            shifted[4 * c].clone(),
            shifted[4 * c + 1].clone(),
            shifted[4 * c + 2].clone(),
            shifted[4 * c + 3].clone(),
        ];
        let m = mix_column(&mut b, &col);
        for r in 0..4 {
            mixed[4 * c + r] = m[r].clone();
        }
    }
    // last round (round 10) skips MixColumns
    let is_last = b.eq_const(&round_q, 10);
    let after_rows: Vec<Byte> = (0..16)
        .map(|i| {
            (0..8)
                .map(|k| b.mux(is_last, mixed[i][k], shifted[i][k]))
                .collect()
        })
        .collect();

    // ---- key schedule for this round ----
    // words w0..w3, word i = bytes 4i..4i+3 (byte 0 of a word is first)
    let rcon_tables: Vec<u64> = {
        // rcon value per round 1..=10 indexed by 4-bit round
        let rc = [0x01u8, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
        (0..8)
            .map(|k| {
                let mut bits = 0u64;
                for round in 1..=10usize {
                    if rc[round - 1] >> k & 1 == 1 {
                        bits |= 1 << round;
                    }
                }
                bits
            })
            .collect()
    };
    let rcon: Byte = rcon_tables
        .iter()
        .map(|&bits| b.synth_truth_table(&round_q, &[bits]))
        .collect();
    // RotWord(SubWord(w3)): w3 bytes are rk[12..16]
    let subw: Vec<Byte> = (12..16).map(|i| sbox_byte(&mut b, &rk[i])).collect();
    let rot = [&subw[1], &subw[2], &subw[3], &subw[0]];
    let mut nk: Vec<Byte> = Vec::with_capacity(16);
    for i in 0..4 {
        // w0' byte i = w0 byte i ^ rot[i] ^ (i == 0 ? rcon : 0)
        let mut parts: Vec<&Byte> = vec![&rk[i], rot[i]];
        if i == 0 {
            parts.push(&rcon);
        }
        nk.push(xor_bytes(&mut b, &parts));
    }
    for w in 1..4 {
        for i in 0..4 {
            let prev = nk[4 * (w - 1) + i].clone();
            let cur = rk[4 * w + i].clone();
            nk.push(xor_bytes(&mut b, &[&prev, &cur]));
        }
    }
    let next_key: Vec<Net> = nk.iter().flat_map(|by| by.iter().copied()).collect();

    // AddRoundKey with the *next* round key
    let round_out: Vec<Net> = {
        let flat: Vec<Net> = after_rows
            .iter()
            .flat_map(|by| by.iter().copied())
            .collect();
        b.xor_word(&flat, &next_key)
    };

    // ---- control ----
    let not_busy = b.not(busy_q);
    let load = b.and2(start, not_busy);
    // initial AddRoundKey at load
    let initial = b.xor_word(&pt_in, &key_in);

    // state_next = load ? initial : busy ? round_out : state
    let hold_or_round = b.mux_word(busy_q, &state_q, &round_out);
    let state_next = b.mux_word(load, &hold_or_round, &initial);
    let rkey_hold = b.mux_word(busy_q, &rkey_q, &next_key);
    let rkey_next = b.mux_word(load, &rkey_hold, &key_in);

    let round_inc = b.inc_word(&round_q);
    let round_hold = b.mux_word(busy_q, &round_q, &round_inc);
    let one_word = b.const_word(1, 4);
    let round_next = b.mux_word(load, &round_hold, &one_word);

    // busy: set on load, cleared after round 10
    let finishing = b.and2(busy_q, is_last);
    let not_finishing = b.not(finishing);
    let busy_keep = b.and2(busy_q, not_finishing);
    let busy_next = b.or2(load, busy_keep);
    // done: set when finishing, cleared on load
    let not_load = b.not(load);
    let done_keep = b.or2(done_q, finishing);
    let done_next = b.and2(done_keep, not_load);

    b.connect_ff_word(&state_next, &state_q, clk, None, None, 0, 0);
    b.connect_ff_word(&rkey_next, &rkey_q, clk, None, None, 0, 0);
    b.connect_ff_word(&round_next, &round_q, clk, None, None, 0, 0);
    b.push_ff_raw(busy_next, busy_q, clk, None, None, false, false);
    b.push_ff_raw(done_next, done_q, clk, None, None, false, false);

    b.output_word(&state_q, "ct");
    b.output(busy_q, "busy");
    b.output(done_q, "done");
    b.finish().unwrap()
}

/// Software AES-128 reference (FIPS-197), used by the tests.
pub mod reference {
    use super::SBOX;

    fn xtime(a: u8) -> u8 {
        (a << 1) ^ if a & 0x80 != 0 { 0x1b } else { 0 }
    }

    /// Encrypt one block.
    pub fn encrypt(key: [u8; 16], pt: [u8; 16]) -> [u8; 16] {
        let mut rk = key;
        let mut s = pt;
        for (i, b) in s.iter_mut().enumerate() {
            *b ^= rk[i];
        }
        let rc = [0x01u8, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
        for round in 1..=10 {
            // SubBytes
            for b in s.iter_mut() {
                *b = SBOX[*b as usize];
            }
            // ShiftRows (byte r + 4c)
            let t = s;
            for r in 0..4 {
                for c in 0..4 {
                    s[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
                }
            }
            // MixColumns except last round
            if round < 10 {
                for c in 0..4 {
                    let a: [u8; 4] = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
                    s[4 * c] = xtime(a[0]) ^ (xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3];
                    s[4 * c + 1] = a[0] ^ xtime(a[1]) ^ (xtime(a[2]) ^ a[2]) ^ a[3];
                    s[4 * c + 2] = a[0] ^ a[1] ^ xtime(a[2]) ^ (xtime(a[3]) ^ a[3]);
                    s[4 * c + 3] = (xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ xtime(a[3]);
                }
            }
            // key schedule
            let mut w: [[u8; 4]; 4] = [
                [rk[0], rk[1], rk[2], rk[3]],
                [rk[4], rk[5], rk[6], rk[7]],
                [rk[8], rk[9], rk[10], rk[11]],
                [rk[12], rk[13], rk[14], rk[15]],
            ];
            let rot = [w[3][1], w[3][2], w[3][3], w[3][0]];
            for (i, &r) in rot.iter().enumerate() {
                w[0][i] ^= SBOX[r as usize] ^ if i == 0 { rc[round - 1] } else { 0 };
            }
            for k in 1..4 {
                let prev = w[k - 1];
                for (i, p) in prev.iter().enumerate() {
                    w[k][i] ^= p;
                }
            }
            for k in 0..4 {
                for i in 0..4 {
                    rk[4 * k + i] = w[k][i];
                }
            }
            // AddRoundKey
            for (i, b) in s.iter_mut().enumerate() {
                *b ^= rk[i];
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_refsim::CycleSim;

    fn pack_bytes(bytes: &[u8]) -> Vec<bool> {
        bytes
            .iter()
            .flat_map(|&by| (0..8).map(move |k| by >> k & 1 == 1))
            .collect()
    }

    fn unpack_bytes(bits: &[bool]) -> Vec<u8> {
        bits.chunks(8)
            .map(|c| c.iter().enumerate().map(|(k, &b)| (b as u8) << k).sum())
            .collect()
    }

    #[test]
    fn reference_matches_fips_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let want: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(reference::encrypt(key, pt), want);
    }

    #[test]
    fn hardware_encrypts_fips_vector() {
        let nl = aes128();
        assert!(
            nl.gate_count() > 8_000,
            "AES too small: {}",
            nl.gate_count()
        );
        let mut sim = CycleSim::new(&nl).unwrap();
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        // inputs: start ‖ key ‖ pt
        let mut stim = vec![true];
        stim.extend(pack_bytes(&key));
        stim.extend(pack_bytes(&pt));
        let idle: Vec<bool> = {
            let mut v = vec![false];
            v.extend(vec![false; 256]);
            v
        };
        sim.step(&stim);
        let mut out = Vec::new();
        for _ in 0..12 {
            out = sim.step(&idle);
            if out[129] {
                break; // done
            }
        }
        assert!(out[129], "AES core never signalled done");
        let ct = unpack_bytes(&out[..128]);
        assert_eq!(
            ct,
            reference::encrypt(key, pt).to_vec(),
            "hardware ciphertext mismatch"
        );
    }

    #[test]
    fn hardware_random_blocks_match_reference() {
        let nl = aes128();
        let mut sim = CycleSim::new(&nl).unwrap();
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..3 {
            let key: Vec<u8> = (0..16).map(|_| rng() as u8).collect();
            let pt: Vec<u8> = (0..16).map(|_| rng() as u8).collect();
            let mut stim = vec![true];
            stim.extend(pack_bytes(&key));
            stim.extend(pack_bytes(&pt));
            let mut idle = vec![false];
            idle.extend(vec![false; 256]);
            sim.step(&stim);
            let mut out = Vec::new();
            for _ in 0..12 {
                out = sim.step(&idle);
                if out[129] {
                    break;
                }
            }
            let want = reference::encrypt(
                key.clone().try_into().unwrap(),
                pt.clone().try_into().unwrap(),
            );
            assert_eq!(unpack_bytes(&out[..128]), want.to_vec(), "trial {trial}");
        }
    }
}
