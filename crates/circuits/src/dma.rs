//! Multi-channel memory-to-memory DMA engine — the "DMA" row of Table I
//! (the paper's largest circuit). Parameterizable channel count scales the
//! design from a few thousand to hundreds of thousands of gates.
//!
//! Interface:
//! * config port: `cfg_we`, `cfg_ch[CB]`, `cfg_sel[2]`, `cfg_data[32]` —
//!   `sel` 0 = source address, 1 = destination address, 2 = word count
//!   (writing a nonzero count arms the channel);
//! * memory port: `mem_re`/`mem_raddr[32]` issue reads, `mem_rdata[32]`
//!   returns the word on the following cycle, `mem_we`/`mem_waddr[32]`/
//!   `mem_wdata[32]` issue writes;
//! * status: `active[N]` (one bit per channel), `irq` pulses when any
//!   channel finishes.
//!
//! The engine round-robins over armed channels; each transfer is a 2-cycle
//! read→write beat that increments both addresses and decrements the count.

use c2nn_netlist::{Net, Netlist, NetlistBuilder, WordOps};

/// Build the DMA engine with `channels` (power of two, ≥2) channels.
pub fn dma(channels: usize) -> Netlist {
    assert!(channels.is_power_of_two() && channels >= 2);
    let cb = channels.trailing_zeros() as usize;
    let mut b = NetlistBuilder::new(format!("dma{channels}"));
    let clk = b.clock("clk");

    // config port
    let cfg_we = b.input("cfg_we");
    let cfg_ch = b.input_word("cfg_ch", cb);
    let cfg_sel = b.input_word("cfg_sel", 2);
    let cfg_data = b.input_word("cfg_data", 32);
    // memory read-return
    let mem_rdata = b.input_word("mem_rdata", 32);

    // per-channel registers
    let src_q: Vec<Vec<Net>> = (0..channels)
        .map(|i| b.fresh_word(&format!("src{i}"), 32))
        .collect();
    let dst_q: Vec<Vec<Net>> = (0..channels)
        .map(|i| b.fresh_word(&format!("dst{i}"), 32))
        .collect();
    let cnt_q: Vec<Vec<Net>> = (0..channels)
        .map(|i| b.fresh_word(&format!("cnt{i}"), 16))
        .collect();

    // engine state: phase 0 = issue read, 1 = write back
    let phase_q = b.fresh(Some("phase"));
    let cur_q = b.fresh_word("cur", cb); // channel being serviced
    let irq_q = b.fresh(Some("irq"));

    // channel activity = count != 0
    let active: Vec<Net> = cnt_q.iter().map(|c| b.reduce_or(c)).collect::<Vec<_>>();
    let any_active = b.or_many(&active);

    // round-robin pick: next armed channel at or after cur+1 (priority
    // rotated by the current channel) — evaluated as a priority chain over
    // the double-length vector.
    let cur_plus = b.inc_word(&cur_q);
    let mut pick: Vec<Net> = b.const_word(0, cb);
    let mut found = b.zero();
    for off in 0..channels {
        // candidate = cur + 1 + off (mod channels)
        let off_w = b.const_word(off as u64, cb);
        let cand = b.add_word(&cur_plus, &off_w);
        // is the candidate active?
        let mut is_act = b.zero();
        for (ch, &a) in active.iter().enumerate() {
            let here = b.eq_const(&cand, ch as u64);
            let t = b.and2(here, a);
            is_act = b.or2(is_act, t);
        }
        let not_found = b.not(found);
        let take = b.and2(is_act, not_found);
        pick = b.mux_word(take, &pick, &cand);
        found = b.or2(found, take);
    }

    // current channel's registers (one-hot muxes)
    let sel_bits: Vec<Net> = (0..channels)
        .map(|ch| b.eq_const(&cur_q, ch as u64))
        .collect();
    let cur_src = b.onehot_mux_word(&sel_bits, &src_q);
    let cur_dst = b.onehot_mux_word(&sel_bits, &dst_q);
    let cur_active = b.onehot_mux_word(
        &sel_bits,
        &active.iter().map(|&a| vec![a]).collect::<Vec<_>>(),
    );

    // memory port behavior
    let not_phase = b.not(phase_q);
    let reading = b.and_many(&[not_phase, cur_active[0], any_active]);
    let writing = b.and2(phase_q, cur_active[0]);
    b.output(reading, "mem_re");
    b.output_word(&cur_src, "mem_raddr");
    b.output(writing, "mem_we");
    b.output_word(&cur_dst, "mem_waddr");
    // single-cycle memory: the word for the address issued in the read
    // phase is on `mem_rdata` during the write phase — pass it through
    b.output_word(&mem_rdata, "mem_wdata");

    // per-channel register updates: config writes and engine progress
    let one16 = b.const_word(1, 16);
    let one32 = b.const_word(1, 32);
    let mut finish_any = b.zero();
    for ch in 0..channels {
        let is_cfg = {
            let here = b.eq_const(&cfg_ch, ch as u64);
            b.and2(cfg_we, here)
        };
        let cfg_src = {
            let s0 = b.eq_const(&cfg_sel, 0);
            b.and2(is_cfg, s0)
        };
        let cfg_dst = {
            let s1 = b.eq_const(&cfg_sel, 1);
            b.and2(is_cfg, s1)
        };
        let cfg_cnt = {
            let s2 = b.eq_const(&cfg_sel, 2);
            b.and2(is_cfg, s2)
        };
        // engine progress applies to the serviced channel in write phase
        let serviced = b.and2(writing, sel_bits[ch]);
        let src_inc = b.add_word(&src_q[ch], &one32);
        let dst_inc = b.add_word(&dst_q[ch], &one32);
        let cnt_dec = b.sub_word(&cnt_q[ch], &one16);
        let src_adv = b.mux_word(serviced, &src_q[ch], &src_inc);
        let dst_adv = b.mux_word(serviced, &dst_q[ch], &dst_inc);
        let cnt_adv = b.mux_word(serviced, &cnt_q[ch], &cnt_dec);
        let src_next = b.mux_word(cfg_src, &src_adv, &cfg_data);
        let dst_next = b.mux_word(cfg_dst, &dst_adv, &cfg_data);
        let cfg_cnt16 = cfg_data[..16].to_vec();
        let cnt_next = b.mux_word(cfg_cnt, &cnt_adv, &cfg_cnt16);
        b.connect_ff_word(&src_next, &src_q[ch], clk, None, None, 0, 0);
        b.connect_ff_word(&dst_next, &dst_q[ch], clk, None, None, 0, 0);
        b.connect_ff_word(&cnt_next, &cnt_q[ch], clk, None, None, 0, 0);
        // finishing: serviced beat that brings the count to zero
        let goes_zero = {
            let is_one = b.eq_const(&cnt_q[ch], 1);
            b.and2(serviced, is_one)
        };
        finish_any = b.or2(finish_any, goes_zero);
    }

    // phase & channel advance: read -> write -> (next channel, read)
    let adv_read = reading; // move to write phase
    let zero_bit = b.zero();
    let one_bit = b.one();
    let t = b.mux(writing, phase_q, zero_bit);
    let phase_next = b.mux(adv_read, t, one_bit);
    b.push_ff_raw(phase_next, phase_q, clk, None, None, false, false);
    // the channel pointer advances after a write beat, and also skips ahead
    // when parked on an idle channel while others are armed
    let cur_idle = b.not(cur_active[0]);
    let idle_skip = b.and_many(&[not_phase, cur_idle, any_active]);
    let advance = b.or2(writing, idle_skip);
    let cur_next = b.mux_word(advance, &cur_q, &pick);
    b.connect_ff_word(&cur_next, &cur_q, clk, None, None, 0, 0);

    b.push_ff_raw(finish_any, irq_q, clk, None, None, false, false);
    b.output(irq_q, "irq");
    for (ch, &a) in active.iter().enumerate() {
        b.output(a, &format!("active{ch}"));
    }
    b.finish().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_refsim::CycleSim;
    use std::collections::HashMap;

    struct DmaHarness {
        sim: CycleSim,
        mem: HashMap<u32, u32>,
        cb: usize,
        channels: usize,
        /// last cycle's outputs
        out: Vec<bool>,
    }

    impl DmaHarness {
        fn new(channels: usize) -> Self {
            let nl = dma(channels);
            DmaHarness {
                sim: CycleSim::new(&nl).unwrap(),
                mem: HashMap::new(),
                cb: channels.trailing_zeros() as usize,
                channels,
                out: Vec::new(),
            }
        }

        fn step(&mut self, cfg: Option<(u32, u32, u32)>) {
            // inputs: cfg_we, cfg_ch[cb], cfg_sel[2], cfg_data[32], mem_rdata[32]
            let (we, ch, sel, data) = match cfg {
                Some((ch, sel, data)) => (true, ch, sel, data),
                None => (false, 0, 0, 0),
            };
            // respond to last cycle's read with memory content
            let rdata = if !self.out.is_empty() && self.out[0] {
                let addr: u32 = (0..32).map(|i| (self.out[1 + i] as u32) << i).sum();
                *self.mem.get(&addr).unwrap_or(&0)
            } else {
                0
            };
            let mut inp = vec![we];
            inp.extend((0..self.cb).map(|i| ch >> i & 1 == 1));
            inp.extend((0..2).map(|i| sel >> i & 1 == 1));
            inp.extend((0..32).map(|i| data >> i & 1 == 1));
            inp.extend((0..32).map(|i| rdata >> i & 1 == 1));
            let out = self.sim.step(&inp);
            // outputs: mem_re, mem_raddr[32], mem_we, mem_waddr[32],
            // mem_wdata[32], irq, active[N]
            if out[33] {
                let waddr: u32 = (0..32).map(|i| (out[34 + i] as u32) << i).sum();
                let wdata: u32 = (0..32).map(|i| (out[66 + i] as u32) << i).sum();
                self.mem.insert(waddr, wdata);
            }
            self.out = out;
        }

        fn any_active(&self) -> bool {
            let base = 99; // 1+32+1+32+32+1
            (0..self.channels).any(|ch| self.out[base + ch])
        }
    }

    #[test]
    fn single_channel_copies_block() {
        let mut h = DmaHarness::new(4);
        for i in 0..8u32 {
            h.mem.insert(0x100 + i, 0xdead_0000 + i);
        }
        h.step(Some((1, 0, 0x100))); // ch1 src
        h.step(Some((1, 1, 0x200))); // ch1 dst
        h.step(Some((1, 2, 8))); // ch1 count -> armed
        for _ in 0..50 {
            h.step(None);
            if !h.any_active() {
                break;
            }
        }
        assert!(!h.any_active(), "channel never finished");
        for i in 0..8u32 {
            assert_eq!(
                h.mem.get(&(0x200 + i)),
                Some(&(0xdead_0000 + i)),
                "word {i} not copied"
            );
        }
    }

    #[test]
    fn two_channels_interleave_and_both_finish() {
        let mut h = DmaHarness::new(4);
        for i in 0..4u32 {
            h.mem.insert(0x10 + i, 0xaa00 + i);
            h.mem.insert(0x40 + i, 0xbb00 + i);
        }
        h.step(Some((0, 0, 0x10)));
        h.step(Some((0, 1, 0x80)));
        h.step(Some((2, 0, 0x40)));
        h.step(Some((2, 1, 0xc0)));
        h.step(Some((0, 2, 4))); // arm ch0
        h.step(Some((2, 2, 4))); // arm ch2
        for _ in 0..80 {
            h.step(None);
            if !h.any_active() {
                break;
            }
        }
        assert!(!h.any_active());
        for i in 0..4u32 {
            assert_eq!(h.mem.get(&(0x80 + i)), Some(&(0xaa00 + i)), "ch0 word {i}");
            assert_eq!(h.mem.get(&(0xc0 + i)), Some(&(0xbb00 + i)), "ch2 word {i}");
        }
    }

    #[test]
    fn gate_count_scales_with_channels() {
        let g4 = dma(4).gate_count();
        let g16 = dma(16).gate_count();
        assert!(g16 > 3 * g4, "16ch ({g16}) should dwarf 4ch ({g4})");
    }
}
