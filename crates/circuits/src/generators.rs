//! Parameterized circuit generators for tests, property checks, and the
//! ablation benchmarks: random DAGs, arithmetic arrays, LFSRs, counters.

use c2nn_netlist::{Net, Netlist, NetlistBuilder, WordOps};

/// A deterministic xorshift generator (no external RNG dependency in the
/// library path; benches seed it explicitly).
#[derive(Clone, Debug)]
pub struct XorShift(pub u64);

impl XorShift {
    pub fn gen(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Random combinational DAG: `num_inputs` inputs, `num_gates` random 1–3
/// input gates over earlier signals, `num_outputs` outputs drawn from the
/// deepest signals (so little logic is dead).
pub fn random_dag(num_inputs: usize, num_gates: usize, num_outputs: usize, seed: u64) -> Netlist {
    let mut rng = XorShift(seed | 1);
    let mut b = NetlistBuilder::new(format!("rand_{num_inputs}x{num_gates}"));
    let mut pool: Vec<Net> = b.input_word("x", num_inputs);
    for _ in 0..num_gates {
        let i = pool[rng.gen() as usize % pool.len()];
        let j = pool[rng.gen() as usize % pool.len()];
        let k = pool[rng.gen() as usize % pool.len()];
        let g = match rng.gen() % 7 {
            0 => b.and2(i, j),
            1 => b.or2(i, j),
            2 => b.xor2(i, j),
            3 => b.nand2(i, j),
            4 => b.nor2(i, j),
            5 => b.mux(i, j, k),
            _ => b.not(i),
        };
        pool.push(g);
    }
    let n = pool.len();
    for o in 0..num_outputs {
        let idx = n - 1 - (rng.gen() as usize % (num_gates / 2 + 1)).min(n - 1);
        b.output(pool[idx], &format!("y{o}"));
    }
    b.finish().unwrap()
}

/// Random sequential circuit: a random next-state function over
/// `state_bits` flip-flops plus `num_inputs` inputs.
pub fn random_fsm(
    num_inputs: usize,
    state_bits: usize,
    num_gates: usize,
    num_outputs: usize,
    seed: u64,
) -> Netlist {
    let mut rng = XorShift(seed | 1);
    let mut b = NetlistBuilder::new(format!("rfsm_{state_bits}"));
    let clk = b.clock("clk");
    let ins = b.input_word("x", num_inputs);
    let state = b.fresh_word("s", state_bits);
    let mut pool: Vec<Net> = ins.iter().chain(&state).copied().collect();
    for _ in 0..num_gates {
        let i = pool[rng.gen() as usize % pool.len()];
        let j = pool[rng.gen() as usize % pool.len()];
        let k = pool[rng.gen() as usize % pool.len()];
        let g = match rng.gen() % 6 {
            0 => b.and2(i, j),
            1 => b.or2(i, j),
            2 => b.xor2(i, j),
            3 => b.mux(i, j, k),
            4 => b.xnor2(i, j),
            _ => b.not(i),
        };
        pool.push(g);
    }
    let next: Vec<Net> = (0..state_bits)
        .map(|_| pool[pool.len() - 1 - rng.gen() as usize % (num_gates / 2 + 1)])
        .collect();
    b.connect_ff_word(&next, &state, clk, None, None, 0, rng.gen());
    for o in 0..num_outputs {
        let s = pool[pool.len() - 1 - rng.gen() as usize % (num_gates / 2 + 1)];
        b.output(s, &format!("y{o}"));
    }
    b.finish().unwrap()
}

/// `width × width` array multiplier (combinational), truncated product.
pub fn multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("mul{width}"));
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let mut acc = b.const_word(0, width);
    for (i, &bi) in c.iter().enumerate() {
        let shifted = b.shl_const(&a, i);
        let gated: Vec<Net> = shifted.iter().map(|&s| b.and2(s, bi)).collect();
        acc = b.add_word(&acc, &gated);
    }
    b.output_word(&acc, "p");
    b.finish().unwrap()
}

/// Fibonacci LFSR over the given taps (bit indices), `width` bits.
pub fn lfsr(width: usize, taps: &[usize]) -> Netlist {
    let mut b = NetlistBuilder::new(format!("lfsr{width}"));
    let clk = b.clock("clk");
    let q = b.fresh_word("q", width);
    let tap_nets: Vec<Net> = taps.iter().map(|&t| q[t]).collect();
    let fb = b.xor_many(&tap_nets);
    let mut next = vec![fb];
    next.extend_from_slice(&q[..width - 1]);
    // nonzero init so it doesn't lock up
    b.connect_ff_word(&next, &q, clk, None, None, 0, 1);
    b.output_word(&q, "q");
    b.finish().unwrap()
}

/// Up-counter with enable.
pub fn counter(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("ctr{width}"));
    let clk = b.clock("clk");
    let en = b.input("en");
    let q = b.fresh_word("q", width);
    let inc = b.inc_word(&q);
    let next = b.mux_word(en, &q, &inc);
    b.connect_ff_word(&next, &q, clk, None, None, 0, 0);
    b.output_word(&q, "q");
    b.finish().unwrap()
}

/// Population count of `width` input bits.
pub fn popcount(width: usize) -> Netlist {
    let out_w = usize::BITS as usize - (width.max(1)).leading_zeros() as usize;
    let mut b = NetlistBuilder::new(format!("popcnt{width}"));
    let ins = b.input_word("x", width);
    let mut acc = b.const_word(0, out_w + 1);
    for &bit in &ins {
        let mut w = vec![bit];
        let zeros = b.const_word(0, out_w);
        w.extend_from_slice(&zeros);
        acc = b.add_word(&acc, &w);
    }
    b.output_word(&acc, "count");
    b.finish().unwrap()
}

/// CRC-32 (IEEE 802.3) bit-serial update circuit: one message bit per
/// cycle into a 32-bit LFSR-style register.
pub fn crc32() -> Netlist {
    const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7
    let mut b = NetlistBuilder::new("crc32");
    let clk = b.clock("clk");
    let bit_in = b.input("bit");
    let init = b.input("init");
    let q = b.fresh_word("crc", 32);
    // feedback = crc[0] ^ bit; shift right; xor POLY where fb set
    let fb = b.xor2(q[0], bit_in);
    let mut next: Vec<Net> = Vec::with_capacity(32);
    for i in 0..32 {
        let shifted = if i == 31 { b.zero() } else { q[i + 1] };
        let bit = if POLY >> i & 1 == 1 {
            b.xor2(shifted, fb)
        } else {
            shifted
        };
        next.push(bit);
    }
    // init loads all-ones (standard CRC-32 preset)
    let ones = b.const_word(u64::MAX, 32);
    let next = b.mux_word(init, &next, &ones);
    b.connect_ff_word(&next, &q, clk, None, None, 0, u64::MAX);
    b.output_word(&q, "crc");
    b.finish().unwrap()
}

/// Software CRC-32 reference for the tests (bitwise, reflected).
pub fn crc32_reference(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in data {
        for k in 0..8 {
            let fb = (crc ^ (byte >> k) as u32) & 1;
            crc >>= 1;
            if fb == 1 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// Transposed-form FIR filter with constant integer taps: `width`-bit
/// samples in, full-precision accumulator chain out.
pub fn fir(width: usize, taps: &[i64]) -> Netlist {
    assert!(!taps.is_empty());
    let acc_w = width + 8; // headroom for the tap sums
    let mut b = NetlistBuilder::new(format!("fir{}", taps.len()));
    let clk = b.clock("clk");
    let x = b.input_word("x", width);
    // constant multiply by shift-add over the tap's binary expansion
    let mul_const = |b: &mut NetlistBuilder, x: &[Net], c: i64| -> Vec<Net> {
        let xw = b.resize_word(x, acc_w);
        let mut acc = b.const_word(0, acc_w);
        let mag = c.unsigned_abs();
        for bit in 0..acc_w.min(63) {
            if mag >> bit & 1 == 1 {
                let sh = b.shl_const(&xw, bit);
                acc = b.add_word(&acc, &sh);
            }
        }
        if c < 0 {
            let zero = b.const_word(0, acc_w);
            b.sub_word(&zero, &acc)
        } else {
            acc
        }
    };
    // transposed form: y = z0; z_i <= z_{i+1} + tap_i * x
    let regs: Vec<Vec<Net>> = (0..taps.len())
        .map(|i| b.fresh_word(&format!("z{i}"), acc_w))
        .collect();
    for (i, &t) in taps.iter().enumerate() {
        let prod = mul_const(&mut b, &x, t);
        let next = if i + 1 < taps.len() {
            b.add_word(&regs[i + 1].clone(), &prod)
        } else {
            prod
        };
        b.connect_ff_word(&next, &regs[i], clk, None, None, 0, 0);
    }
    b.output_word(&regs[0], "y");
    b.finish().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_refsim::CycleSim;

    #[test]
    fn random_dag_is_valid_and_deterministic() {
        let a = random_dag(10, 100, 5, 42);
        let b = random_dag(10, 100, 5, 42);
        assert_eq!(a.gates.len(), b.gates.len());
        a.validate().unwrap();
        assert_eq!(a.inputs.len(), 10);
        assert_eq!(a.outputs.len(), 5);
    }

    #[test]
    fn random_fsm_steps() {
        let nl = random_fsm(4, 8, 60, 3, 7);
        let mut sim = CycleSim::new(&nl).unwrap();
        for t in 0..20u64 {
            let stim: Vec<bool> = (0..4).map(|j| t >> j & 1 == 1).collect();
            let out = sim.step(&stim);
            assert_eq!(out.len(), 3);
        }
    }

    #[test]
    fn multiplier_correct() {
        let nl = multiplier(5);
        let mut sim = CycleSim::new(&nl).unwrap();
        for a in 0..32u64 {
            for c in [0u64, 1, 7, 31] {
                let bits: Vec<bool> = (0..10).map(|j| (a | c << 5) >> j & 1 == 1).collect();
                let out = sim.eval_comb(&bits);
                let got: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
                assert_eq!(got, (a * c) & 31, "{a}*{c}");
            }
        }
    }

    #[test]
    fn lfsr_has_long_period() {
        // maximal 8-bit LFSR taps (x^8 + x^6 + x^5 + x^4 + 1)
        let nl = lfsr(8, &[7, 5, 4, 3]);
        let mut sim = CycleSim::new(&nl).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..255 {
            let out = sim.step(&[]);
            let v: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
            assert_ne!(v, 0, "LFSR locked up");
            seen.insert(v);
        }
        assert_eq!(seen.len(), 255, "period must be 2^8 - 1");
    }

    #[test]
    fn crc32_matches_reference() {
        let nl = crc32();
        let mut sim = CycleSim::new(&nl).unwrap();
        let data = b"123456789"; // canonical check input -> 0xCBF43926
        assert_eq!(crc32_reference(data), 0xCBF43926);
        // preset, then shift all bits LSB-first
        sim.step(&[false, true]);
        for &byte in data {
            for k in 0..8 {
                sim.step(&[byte >> k & 1 == 1, false]);
            }
        }
        let out = sim.step(&[false, false]);
        let crc: u32 = out.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
        // register holds pre-inversion value one cycle after the last bit;
        // account for the extra idle step by recomputing: the output above
        // reflects the state after all 72 bits, i.e. !crc32.
        assert_eq!(!crc, 0xCBF43926, "CRC register mismatch");
    }

    #[test]
    fn fir_impulse_response_is_taps() {
        let taps = [3i64, -2, 5, 1];
        let nl = fir(4, &taps);
        let mut sim = CycleSim::new(&nl).unwrap();
        // impulse x=1 then zeros: output replays the taps
        let mut outs = Vec::new();
        let width = 4;
        let step = |sim: &mut CycleSim, v: u64| -> i64 {
            let stim: Vec<bool> = (0..width).map(|j| v >> j & 1 == 1).collect();
            let out = sim.step(&stim);
            let raw: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
            // sign-extend from acc_w = 12 bits
            ((raw << (64 - 12)) as i64) >> (64 - 12)
        };
        step(&mut sim, 1);
        for _ in 0..taps.len() {
            outs.push(step(&mut sim, 0));
        }
        assert_eq!(outs, taps.to_vec());
    }

    #[test]
    fn fir_superposition() {
        // linearity: response to x=2 is twice the impulse response
        let taps = [1i64, 4, -3];
        let nl = fir(4, &taps);
        let mut sim = CycleSim::new(&nl).unwrap();
        let step = |sim: &mut CycleSim, v: u64| -> i64 {
            let stim: Vec<bool> = (0..4).map(|j| v >> j & 1 == 1).collect();
            let out = sim.step(&stim);
            let raw: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
            ((raw << 52) as i64) >> 52
        };
        step(&mut sim, 2);
        let got: Vec<i64> = (0..3).map(|_| step(&mut sim, 0)).collect();
        assert_eq!(got, vec![2, 8, -6]);
    }

    #[test]
    fn popcount_counts() {
        let nl = popcount(9);
        let mut sim = CycleSim::new(&nl).unwrap();
        for x in [0u64, 1, 0b101010101, 0b111111111, 0b100000000] {
            let bits: Vec<bool> = (0..9).map(|j| x >> j & 1 == 1).collect();
            let out = sim.eval_comb(&bits);
            let got: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
            assert_eq!(got, x.count_ones() as u64, "x={x:b}");
        }
    }
}
