//! SHA-256 compression core (iterative, one round per cycle) — the "SHA"
//! row of the paper's Table I.
//!
//! Protocol (one clock):
//! 1. pulse `init` to load the FIPS-180 initial hash value;
//! 2. while idle, pulse `we` 16 times with `win[31:0]` to load the 512-bit
//!    message block (big-endian words, first word first);
//! 3. pulse `go`; the core runs 64 rounds (message schedule computed in a
//!    16-word ring) and then adds the working variables into the hash;
//! 4. when `done`, `digest[255:0]` holds the (possibly multi-block) hash —
//!    word `i` of the standard digest in bits `32i..32i+32`.

use c2nn_netlist::{Net, Netlist, NetlistBuilder, WordOps};

/// FIPS-180-4 round constants.
pub const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// FIPS-180-4 initial hash value.
pub const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

type Word = Vec<Net>; // 32 nets, LSB first

fn rotr(b: &mut NetlistBuilder, x: &Word, k: usize) -> Word {
    b.rotr_const(x, k)
}

fn big_sigma0(b: &mut NetlistBuilder, x: &Word) -> Word {
    let r2 = rotr(b, x, 2);
    let r13 = rotr(b, x, 13);
    let r22 = rotr(b, x, 22);
    let t = b.xor_word(&r2, &r13);
    b.xor_word(&t, &r22)
}

fn big_sigma1(b: &mut NetlistBuilder, x: &Word) -> Word {
    let r6 = rotr(b, x, 6);
    let r11 = rotr(b, x, 11);
    let r25 = rotr(b, x, 25);
    let t = b.xor_word(&r6, &r11);
    b.xor_word(&t, &r25)
}

fn small_sigma0(b: &mut NetlistBuilder, x: &Word) -> Word {
    let r7 = rotr(b, x, 7);
    let r18 = rotr(b, x, 18);
    let s3 = b.shr_const(x, 3);
    let t = b.xor_word(&r7, &r18);
    b.xor_word(&t, &s3)
}

fn small_sigma1(b: &mut NetlistBuilder, x: &Word) -> Word {
    let r17 = rotr(b, x, 17);
    let r19 = rotr(b, x, 19);
    let s10 = b.shr_const(x, 10);
    let t = b.xor_word(&r17, &r19);
    b.xor_word(&t, &s10)
}

/// Ch(e,f,g) = (e AND f) XOR (NOT e AND g)
fn ch(b: &mut NetlistBuilder, e: &Word, f: &Word, g: &Word) -> Word {
    (0..32).map(|i| b.mux(e[i], g[i], f[i])).collect()
}

/// Maj(a,b,c) = majority bitwise
fn maj(bl: &mut NetlistBuilder, a: &Word, b: &Word, c: &Word) -> Word {
    (0..32)
        .map(|i| {
            let ab = bl.and2(a[i], b[i]);
            let ac = bl.and2(a[i], c[i]);
            let bc = bl.and2(b[i], c[i]);
            bl.or_many(&[ab, ac, bc])
        })
        .collect()
}

/// Build the SHA-256 core netlist.
pub fn sha256() -> Netlist {
    let mut b = NetlistBuilder::new("sha256");
    let clk = b.clock("clk");
    let init = b.input("init");
    let we = b.input("we");
    let go = b.input("go");
    let win: Word = b.input_word("win", 32);

    // hash registers h0..h7, message ring w0..w15, working vars, control
    let h_q: Vec<Word> = (0..8).map(|i| b.fresh_word(&format!("h{i}"), 32)).collect();
    let w_q: Vec<Word> = (0..16)
        .map(|i| b.fresh_word(&format!("w{i}"), 32))
        .collect();
    let v_q: Vec<Word> = (0..8).map(|i| b.fresh_word(&format!("v{i}"), 32)).collect();
    let round_q = b.fresh_word("round", 6);
    let busy_q = b.fresh(Some("busy"));
    let done_q = b.fresh(Some("done"));

    let not_busy = b.not(busy_q);
    let start = b.and2(go, not_busy);
    let load = b.and2(we, not_busy);
    let is_last = b.eq_const(&round_q, 63);
    let finishing = b.and2(busy_q, is_last);

    // ---- round constant from the counter ----
    let k_word: Word = (0..32)
        .map(|bit| {
            let mut bits = 0u64;
            for (t, &k) in K.iter().enumerate() {
                if k >> bit & 1 == 1 {
                    bits |= 1 << t;
                }
            }
            b.synth_truth_table(&round_q, &[bits])
        })
        .collect();

    // ---- message schedule ----
    // new scheduled word: σ1(w14) + w9 + σ0(w1) + w0
    let s1 = small_sigma1(&mut b, &w_q[14]);
    let s0 = small_sigma0(&mut b, &w_q[1]);
    let t_a = b.add_word(&s1, &w_q[9]);
    let t_b = b.add_word(&s0, &w_q[0]);
    let w_new = b.add_word(&t_a, &t_b);

    // ring shifts when loading (insert win) or running (insert w_new)
    let shift_en = b.or2(load, busy_q);
    let tail_in = b.mux_word(busy_q, &win, &w_new);
    for i in 0..16 {
        let next_val = if i == 15 {
            tail_in.clone()
        } else {
            w_q[i + 1].clone()
        };
        let held = b.mux_word(shift_en, &w_q[i], &next_val);
        b.connect_ff_word(&held, &w_q[i], clk, None, None, 0, 0);
    }

    // ---- round function ----
    let (a, bb, c, d, e, f, g, h) = (
        &v_q[0], &v_q[1], &v_q[2], &v_q[3], &v_q[4], &v_q[5], &v_q[6], &v_q[7],
    );
    let bs1 = big_sigma1(&mut b, e);
    let ch_w = ch(&mut b, e, f, g);
    let t1a = b.add_word(h, &bs1);
    let t1b = b.add_word(&ch_w, &k_word);
    let t1c = b.add_word(&t1a, &t1b);
    let t1 = b.add_word(&t1c, &w_q[0]); // w0 = W[t]
    let bs0 = big_sigma0(&mut b, a);
    let mj = maj(&mut b, a, bb, c);
    let t2 = b.add_word(&bs0, &mj);
    let new_a = b.add_word(&t1, &t2);
    let new_e = b.add_word(d, &t1);

    // next working vars when busy
    let next_v: Vec<Word> = vec![
        new_a,
        a.clone(),
        bb.clone(),
        c.clone(),
        new_e,
        e.clone(),
        f.clone(),
        g.clone(),
    ];

    // ---- register updates ----
    // working vars: start loads h; busy steps the round function
    for i in 0..8 {
        let stepped = b.mux_word(busy_q, &v_q[i], &next_v[i]);
        let started = b.mux_word(start, &stepped, &h_q[i]);
        b.connect_ff_word(&started, &v_q[i], clk, None, None, 0, 0);
    }
    // hash: init loads IV; finishing adds working vars
    for i in 0..8 {
        let sum = b.add_word(&h_q[i], &next_v_final(&v_q, &next_v, i));
        let with_final = b.mux_word(finishing, &h_q[i], &sum);
        let iv = b.const_word(H0[i] as u64, 32);
        let with_init = b.mux_word(init, &with_final, &iv);
        b.connect_ff_word(&with_init, &h_q[i], clk, None, None, 0, 0);
    }
    // round counter
    let round_inc = b.inc_word(&round_q);
    let round_run = b.mux_word(busy_q, &round_q, &round_inc);
    let zero6 = b.const_word(0, 6);
    let round_next = b.mux_word(start, &round_run, &zero6);
    b.connect_ff_word(&round_next, &round_q, clk, None, None, 0, 0);
    // busy / done
    let not_finishing = b.not(finishing);
    let busy_keep = b.and2(busy_q, not_finishing);
    let busy_next = b.or2(start, busy_keep);
    let clear = b.or2(start, init);
    let not_clear = b.not(clear);
    let done_keep = b.or2(done_q, finishing);
    let done_next = b.and2(done_keep, not_clear);
    b.push_ff_raw(busy_next, busy_q, clk, None, None, false, false);
    b.push_ff_raw(done_next, done_q, clk, None, None, false, false);

    // digest output: h0..h7
    for (i, h) in h_q.iter().enumerate() {
        b.output_word(h, &format!("digest{i}"));
        let _ = i;
    }
    b.output(busy_q, "busy");
    b.output(done_q, "done");
    b.finish().unwrap()
}

/// In round 63 the final `a..h` of the block are `next_v` (the values the
/// working registers are about to take); the hash update must use them.
fn next_v_final(_v_q: &[Word], next_v: &[Word], i: usize) -> Word {
    next_v[i].clone()
}

/// Software SHA-256 reference (FIPS-180-4), used by the tests.
pub mod reference {
    use super::{H0, K};

    /// Compress one 512-bit block into the hash state.
    pub fn compress(h: &mut [u32; 8], block: &[u32; 16]) {
        let mut w = [0u32; 64];
        w[..16].copy_from_slice(block);
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }

    /// Hash a byte message (single-call convenience).
    pub fn digest(msg: &[u8]) -> [u32; 8] {
        let mut padded = msg.to_vec();
        let bitlen = (msg.len() as u64) * 8;
        padded.push(0x80);
        while padded.len() % 64 != 56 {
            padded.push(0);
        }
        padded.extend_from_slice(&bitlen.to_be_bytes());
        let mut h = H0;
        for chunk in padded.chunks(64) {
            let mut block = [0u32; 16];
            for (i, w) in block.iter_mut().enumerate() {
                *w = u32::from_be_bytes(chunk[4 * i..4 * i + 4].try_into().unwrap());
            }
            compress(&mut h, &block);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_refsim::CycleSim;

    #[test]
    fn reference_matches_known_vectors() {
        // SHA-256("abc")
        let d = reference::digest(b"abc");
        assert_eq!(
            d,
            [
                0xba7816bf, 0x8f01cfea, 0x414140de, 0x5dae2223, 0xb00361a3, 0x96177a9c, 0xb410ff61,
                0xf20015ad
            ]
        );
        // SHA-256("")
        let d = reference::digest(b"");
        assert_eq!(d[0], 0xe3b0c442);
    }

    fn word_to_bits(w: u32) -> Vec<bool> {
        (0..32).map(|i| w >> i & 1 == 1).collect()
    }

    /// Drive the hardware through one block and return the digest words.
    fn run_block(sim: &mut CycleSim, block: &[u32; 16], do_init: bool) -> [u32; 8] {
        let idle = |init: bool, we: bool, go: bool, w: u32| -> Vec<bool> {
            let mut v = vec![init, we, go];
            v.extend(word_to_bits(w));
            v
        };
        if do_init {
            sim.step(&idle(true, false, false, 0));
        }
        for &w in block {
            sim.step(&idle(false, true, false, w));
        }
        sim.step(&idle(false, false, true, 0));
        let mut out = Vec::new();
        for _ in 0..70 {
            out = sim.step(&idle(false, false, false, 0));
            if out[257] {
                break;
            }
        }
        assert!(out[257], "SHA core never done");
        let mut digest = [0u32; 8];
        for (i, d) in digest.iter_mut().enumerate() {
            *d = (0..32).map(|k| (out[32 * i + k] as u32) << k).sum();
        }
        digest
    }

    #[test]
    fn hardware_hashes_abc() {
        let nl = sha256();
        assert!(
            nl.gate_count() > 5_000,
            "SHA too small: {}",
            nl.gate_count()
        );
        let mut sim = CycleSim::new(&nl).unwrap();
        // "abc" padded single block
        let mut block = [0u32; 16];
        block[0] = 0x61626380;
        block[15] = 24;
        let digest = run_block(&mut sim, &block, true);
        assert_eq!(
            digest,
            [
                0xba7816bf, 0x8f01cfea, 0x414140de, 0x5dae2223, 0xb00361a3, 0x96177a9c, 0xb410ff61,
                0xf20015ad
            ]
        );
    }

    #[test]
    fn hardware_multi_block_matches_reference() {
        let nl = sha256();
        let mut sim = CycleSim::new(&nl).unwrap();
        // two random-ish blocks chained
        let mut seed = 0xabcdefu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as u32
        };
        let b1: [u32; 16] = std::array::from_fn(|_| rng());
        let b2: [u32; 16] = std::array::from_fn(|_| rng());
        let hw1 = run_block(&mut sim, &b1, true);
        let hw2 = run_block(&mut sim, &b2, false);
        let mut want = H0;
        reference::compress(&mut want, &b1);
        assert_eq!(hw1, want, "block 1");
        reference::compress(&mut want, &b2);
        assert_eq!(hw2, want, "block 2");
    }
}
