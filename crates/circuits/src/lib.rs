//! # c2nn-circuits
//!
//! The benchmark circuit suite mirroring the paper's Table I: AES-128,
//! SHA-256, SPI master, UART, a multi-channel DMA engine, and an RV32I
//! decode/interface unit — plus parameterized generators for tests and
//! ablations. The larger cores are built programmatically on the netlist
//! builder; UART and SPI ship as real Verilog sources that exercise the
//! `c2nn-verilog` frontend end-to-end.

pub mod aes;
pub mod dma;
pub mod generators;
pub mod riscv;
pub mod sha;
pub mod spi;
pub mod suite;
pub mod uart;

pub use aes::aes128;
pub use dma::dma;
pub use riscv::riscv_interface;
pub use sha::sha256;
pub use spi::spi;
pub use suite::{table1_suite, Benchmark};
pub use uart::uart;
