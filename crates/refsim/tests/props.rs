//! Property tests for the reference simulators: all three engines
//! (levelized, event-driven, 64-lane word-parallel) agree on arbitrary
//! sequential circuits.

use c2nn_netlist::{Net, Netlist, NetlistBuilder};
use c2nn_refsim::{CycleSim, EventSim, WordSim};
use proptest::prelude::*;

fn random_fsm(seed: u64, state_bits: usize, gates: usize) -> Netlist {
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut b = NetlistBuilder::new("fsm");
    let clk = b.clock("clk");
    let ins = b.input_word("x", 4);
    let state = b.fresh_word("s", state_bits);
    let mut pool: Vec<Net> = ins.iter().chain(&state).copied().collect();
    for _ in 0..gates {
        let i = pool[rng() as usize % pool.len()];
        let j = pool[rng() as usize % pool.len()];
        let k = pool[rng() as usize % pool.len()];
        let g = match rng() % 6 {
            0 => b.and2(i, j),
            1 => b.or2(i, j),
            2 => b.xor2(i, j),
            3 => b.mux(i, j, k),
            4 => b.nor2(i, j),
            _ => b.not(i),
        };
        pool.push(g);
    }
    let next: Vec<Net> = (0..state_bits)
        .map(|_| pool[pool.len() - 1 - rng() as usize % (gates / 2 + 1)])
        .collect();
    b.connect_ff_word(&next, &state, clk, None, None, 0, rng());
    for o in 0..3 {
        let n = pool[pool.len() - 1 - (rng() as usize % (gates / 2 + 1))];
        b.output(n, &format!("y{o}"));
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Event-driven simulation is bit-identical to full levelized
    /// evaluation, whatever the activity pattern.
    #[test]
    fn event_equals_cycle(seed in 1u64.., state_bits in 2usize..10, gates in 8usize..80) {
        let nl = random_fsm(seed, state_bits, gates);
        let mut cy = CycleSim::new(&nl).unwrap();
        let mut ev = EventSim::new(&nl).unwrap();
        let mut s = seed;
        for cycle in 0..60 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            // biased stimuli (mostly-idle) to exercise event skipping
            let stim: Vec<bool> = (0..4).map(|j| s >> (17 + 3 * j) & 7 == 0).collect();
            prop_assert_eq!(ev.step(&stim), cy.step(&stim), "cycle {}", cycle);
        }
        // the event simulator must not have evaluated MORE than everything
        prop_assert!(ev.activity() <= 1.0 + 1e-9);
    }

    /// Each lane of the 64-lane word simulator equals an independent
    /// scalar simulation.
    #[test]
    fn word_lanes_equal_scalar(seed in 1u64.., state_bits in 2usize..8, gates in 8usize..50) {
        let nl = random_fsm(seed, state_bits, gates);
        let mut ws = WordSim::new(&nl).unwrap();
        // check 4 sample lanes
        let lanes = [0usize, 13, 40, 63];
        let mut scalars: Vec<CycleSim> =
            lanes.iter().map(|_| CycleSim::new(&nl).unwrap()).collect();
        let mut s = seed ^ 0xabcd;
        for cycle in 0..25 {
            let mut words = vec![0u64; 4];
            let mut per_lane = vec![[false; 4]; 64];
            for (lane, row) in per_lane.iter_mut().enumerate() {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(lane as u64);
                for (j, w) in words.iter_mut().enumerate() {
                    let bit = s >> (11 + j) & 1 == 1;
                    row[j] = bit;
                    if bit {
                        *w |= 1 << lane;
                    }
                }
            }
            let wout = ws.step(&words);
            for (si, &lane) in lanes.iter().enumerate() {
                let out = scalars[si].step(&per_lane[lane]);
                for (j, &o) in out.iter().enumerate() {
                    prop_assert_eq!(
                        o,
                        wout[j] >> lane & 1 == 1,
                        "cycle {} lane {} output {}",
                        cycle, lane, j
                    );
                }
            }
        }
    }

    /// Reset returns the simulator to its exact power-on trajectory.
    #[test]
    fn reset_is_deterministic(seed in 1u64.., gates in 8usize..40) {
        let nl = random_fsm(seed, 5, gates);
        let mut sim = CycleSim::new(&nl).unwrap();
        let stim: Vec<Vec<bool>> = (0..10)
            .map(|c| (0..4).map(|j| (c + j) % 3 == 0).collect())
            .collect();
        let first = sim.run(&stim);
        sim.reset();
        let second = sim.run(&stim);
        prop_assert_eq!(first, second);
    }
}
