//! Event-driven cycle simulator (ESSENT-style, paper §I: "simulators, such
//! as ESSENT, benefit from the sparsity of events happening in a DC to skip
//! unnecessary computations").
//!
//! Gates are evaluated only when one of their inputs changed this cycle.
//! For low-activity circuits this evaluates a small fraction of the gates
//! per cycle; the [`EventSim::activity`] statistics quantify it.

use c2nn_netlist::{prepare, CutCircuit, Netlist, SeqError};

/// Event-driven simulator with per-cycle activity accounting.
#[derive(Clone, Debug)]
pub struct EventSim {
    cut: CutCircuit,
    /// gate index -> logic level (evaluation wave ordering)
    gate_level: Vec<u32>,
    /// net -> reader gate indices
    readers: Vec<Vec<u32>>,
    /// level buckets of gates pending evaluation this cycle
    pending: Vec<Vec<u32>>,
    in_pending: Vec<bool>,
    vals: Vec<bool>,
    state: Vec<bool>,
    cycles: u64,
    gates_evaluated: u64,
    gate_count: usize,
    first_cycle: bool,
}

impl EventSim {
    /// Build from a (possibly sequential) netlist.
    pub fn new(nl: &Netlist) -> Result<Self, SeqError> {
        let gate_count = nl.gate_count();
        let cut = prepare(nl)?;
        Ok(Self::from_cut(cut, gate_count))
    }

    /// Build from an already-cut circuit.
    pub fn from_cut(cut: CutCircuit, gate_count: usize) -> Self {
        let comb = &cut.comb;
        let levels = c2nn_netlist::levelize(comb).expect("cut circuit must be a DAG");
        let gate_level: Vec<u32> = comb
            .gates
            .iter()
            .map(|g| levels[g.output.index()])
            .collect();
        let max_level = gate_level.iter().copied().max().unwrap_or(0) as usize;
        let mut readers = vec![Vec::new(); comb.num_nets as usize];
        for (gi, g) in comb.gates.iter().enumerate() {
            for &inp in &g.inputs {
                readers[inp.index()].push(gi as u32);
            }
        }
        let vals = vec![false; comb.num_nets as usize];
        let state = cut.state_init.clone();
        EventSim {
            gate_level,
            readers,
            pending: vec![Vec::new(); max_level + 1],
            in_pending: vec![false; comb.gates.len()],
            vals,
            state,
            cycles: 0,
            gates_evaluated: 0,
            gate_count,
            first_cycle: true,
            cut,
        }
    }

    pub fn num_inputs(&self) -> usize {
        self.cut.num_primary_inputs
    }

    pub fn num_outputs(&self) -> usize {
        self.cut.num_primary_outputs
    }

    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average fraction of gates evaluated per cycle (1.0 = no skipping).
    pub fn activity(&self) -> f64 {
        if self.cycles == 0 || self.cut.comb.gates.is_empty() {
            return 0.0;
        }
        self.gates_evaluated as f64 / (self.cycles as f64 * self.cut.comb.gates.len() as f64)
    }

    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    fn schedule(&mut self, gi: u32) {
        if !self.in_pending[gi as usize] {
            self.in_pending[gi as usize] = true;
            self.pending[self.gate_level[gi as usize] as usize].push(gi);
        }
    }

    fn drive(&mut self, net: c2nn_netlist::Net, value: bool, force: bool) {
        if self.vals[net.index()] != value || force {
            self.vals[net.index()] = value;
            let rs = std::mem::take(&mut self.readers[net.index()]);
            for &gi in &rs {
                self.schedule(gi);
            }
            self.readers[net.index()] = rs;
        }
    }

    /// Simulate one clock cycle (same contract as
    /// [`crate::cycle::CycleSim::step`]).
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.cut.num_primary_inputs);
        let force = self.first_cycle;
        // apply input and state changes, scheduling affected gates
        let in_nets: Vec<_> = self.cut.comb.inputs.clone();
        for (j, &net) in in_nets.iter().enumerate() {
            let v = if j < inputs.len() {
                inputs[j]
            } else {
                self.state[j - inputs.len()]
            };
            self.drive(net, v, force);
        }
        if force {
            // first cycle: every gate must settle once (consts etc.)
            for gi in 0..self.cut.comb.gates.len() as u32 {
                self.schedule(gi);
            }
            self.first_cycle = false;
        }
        // evaluate in level waves
        for level in 0..self.pending.len() {
            let bucket = std::mem::take(&mut self.pending[level]);
            for gi in bucket {
                self.in_pending[gi as usize] = false;
                let g = &self.cut.comb.gates[gi as usize];
                let mut scratch = [false; 8];
                let v = if g.inputs.len() <= 8 {
                    for (s, n) in scratch.iter_mut().zip(&g.inputs) {
                        *s = self.vals[n.index()];
                    }
                    g.kind.eval(&scratch[..g.inputs.len()])
                } else {
                    let ins: Vec<bool> = g.inputs.iter().map(|n| self.vals[n.index()]).collect();
                    g.kind.eval(&ins)
                };
                self.gates_evaluated += 1;
                let out = g.output;
                if self.vals[out.index()] != v {
                    self.vals[out.index()] = v;
                    let rs = std::mem::take(&mut self.readers[out.index()]);
                    for &r in &rs {
                        debug_assert!(
                            self.gate_level[r as usize] as usize > level,
                            "level order violated"
                        );
                        self.schedule(r);
                    }
                    self.readers[out.index()] = rs;
                }
            }
        }
        let outs: Vec<bool> = self.cut.comb.outputs[..self.cut.num_primary_outputs]
            .iter()
            .map(|o| self.vals[o.index()])
            .collect();
        for (i, o) in self.cut.comb.outputs[self.cut.num_primary_outputs..]
            .iter()
            .enumerate()
        {
            self.state[i] = self.vals[o.index()];
        }
        self.cycles += 1;
        outs
    }

    /// Run a full stimulus sequence.
    pub fn run(&mut self, stimuli: &[Vec<bool>]) -> Vec<Vec<bool>> {
        stimuli.iter().map(|s| self.step(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use c2nn_netlist::{NetlistBuilder, WordOps};

    fn counter(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("ctr");
        let clk = b.clock("clk");
        let en = b.input("en");
        let q = b.fresh_word("q", width);
        let inc = b.inc_word(&q);
        let next = b.mux_word(en, &q, &inc);
        b.connect_ff_word(&next, &q, clk, None, None, 0, 0);
        b.output_word(&q, "q");
        b.finish().unwrap()
    }

    #[test]
    fn event_sim_matches_cycle_sim() {
        let nl = counter(8);
        let mut ev = EventSim::new(&nl).unwrap();
        let mut cy = CycleSim::new(&nl).unwrap();
        let mut seed = 7u64;
        for _ in 0..200 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let en = seed >> 33 & 1 == 1;
            assert_eq!(ev.step(&[en]), cy.step(&[en]));
        }
    }

    #[test]
    fn low_activity_counter_skips_work() {
        // a held (en=0) counter changes nothing after the first cycle
        let nl = counter(16);
        let mut ev = EventSim::new(&nl).unwrap();
        for _ in 0..100 {
            ev.step(&[false]);
        }
        assert!(
            ev.activity() < 0.2,
            "idle counter should evaluate few gates: {}",
            ev.activity()
        );
    }

    #[test]
    fn random_logic_matches_reference() {
        let mut b = NetlistBuilder::new("r");
        let ins = b.input_word("x", 10);
        let mut pool = ins.clone();
        let mut seed = 99u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..60 {
            let i = pool[rng() as usize % pool.len()];
            let j = pool[rng() as usize % pool.len()];
            let g = match rng() % 4 {
                0 => b.and2(i, j),
                1 => b.or2(i, j),
                2 => b.xor2(i, j),
                _ => b.not(i),
            };
            pool.push(g);
        }
        for k in 0..8 {
            let o = pool[pool.len() - 1 - k];
            b.output(o, &format!("y{k}"));
        }
        let nl = b.finish().unwrap();
        let mut ev = EventSim::new(&nl).unwrap();
        let mut cy = CycleSim::new(&nl).unwrap();
        for t in 0..100u64 {
            let stim: Vec<bool> = (0..10)
                .map(|j| t.wrapping_mul(j + 3) >> 2 & 1 == 1)
                .collect();
            assert_eq!(ev.step(&stim), cy.step(&stim), "cycle {t}");
        }
    }
}
