//! Bit-parallel (64-lane) cycle simulator.
//!
//! Simulates 64 independent stimulus streams at once, one per bit lane of a
//! `u64` — the strongest single-threaded CPU baseline we can offer the
//! benchmark harness (a "batch Verilator" that commercial tools do not
//! provide; paper §II-A notes no commercial simulator exploits stimulus
//! parallelism). Used in the ablations and to accelerate equivalence tests.

use c2nn_netlist::{prepare, CutCircuit, Netlist, SeqError};

/// 64-lane cycle simulator: every value is a `u64` of 64 parallel stimuli.
#[derive(Clone, Debug)]
pub struct WordSim {
    cut: CutCircuit,
    order: Vec<usize>,
    vals: Vec<u64>,
    state: Vec<u64>,
    cycles: u64,
    gate_count: usize,
}

impl WordSim {
    pub const LANES: usize = 64;

    /// Build from a (possibly sequential) netlist.
    pub fn new(nl: &Netlist) -> Result<Self, SeqError> {
        let gate_count = nl.gate_count();
        let cut = prepare(nl)?;
        let order = c2nn_netlist::topo_order(&cut.comb).expect("cut circuit must be a DAG");
        let vals = vec![0u64; cut.comb.num_nets as usize];
        let state: Vec<u64> = cut
            .state_init
            .iter()
            .map(|&b| if b { !0u64 } else { 0 })
            .collect();
        Ok(WordSim {
            cut,
            order,
            vals,
            state,
            cycles: 0,
            gate_count,
        })
    }

    pub fn num_inputs(&self) -> usize {
        self.cut.num_primary_inputs
    }

    pub fn num_outputs(&self) -> usize {
        self.cut.num_primary_outputs
    }

    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// One clock cycle for all 64 lanes. `inputs[j]` packs lane `l`'s value
    /// of input `j` in bit `l`.
    pub fn step(&mut self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.cut.num_primary_inputs);
        let comb = &self.cut.comb;
        for (j, &inp) in comb.inputs.iter().enumerate() {
            self.vals[inp.index()] = if j < inputs.len() {
                inputs[j]
            } else {
                self.state[j - inputs.len()]
            };
        }
        let mut scratch: Vec<u64> = Vec::with_capacity(8);
        for &gi in &self.order {
            let g = &comb.gates[gi];
            scratch.clear();
            scratch.extend(g.inputs.iter().map(|n| self.vals[n.index()]));
            self.vals[g.output.index()] = g.kind.eval_word(&scratch);
        }
        let outs: Vec<u64> = comb.outputs[..self.cut.num_primary_outputs]
            .iter()
            .map(|o| self.vals[o.index()])
            .collect();
        for (s, o) in self
            .state
            .iter_mut()
            .zip(&comb.outputs[self.cut.num_primary_outputs..])
        {
            *s = self.vals[o.index()];
        }
        self.cycles += 1;
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use c2nn_netlist::{NetlistBuilder, WordOps};

    #[test]
    fn lanes_agree_with_scalar_sim() {
        // 4-bit accumulator: q <= q + in
        let mut b = NetlistBuilder::new("acc");
        let clk = b.clock("clk");
        let d = b.input_word("d", 4);
        let q = b.fresh_word("q", 4);
        let sum = b.add_word(&q, &d);
        b.connect_ff_word(&sum, &q, clk, None, None, 0, 0);
        b.output_word(&q, "q");
        let nl = b.finish().unwrap();

        let mut ws = WordSim::new(&nl).unwrap();
        let mut scalars: Vec<CycleSim> = (0..64).map(|_| CycleSim::new(&nl).unwrap()).collect();
        let mut seed = 0x1234u64;
        for cycle in 0..20 {
            // random per-lane stimuli
            let mut lane_inputs = vec![0u64; 4];
            let mut per_lane: Vec<Vec<bool>> = vec![vec![false; 4]; 64];
            for (lane, row) in per_lane.iter_mut().enumerate() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(lane as u64);
                for j in 0..4 {
                    let bit = seed >> (17 + j) & 1 == 1;
                    row[j] = bit;
                    if bit {
                        lane_inputs[j] |= 1 << lane;
                    }
                }
            }
            let word_out = ws.step(&lane_inputs);
            for (lane, sim) in scalars.iter_mut().enumerate() {
                let out = sim.step(&per_lane[lane]);
                for j in 0..4 {
                    assert_eq!(
                        out[j],
                        word_out[j] >> lane & 1 == 1,
                        "cycle {cycle} lane {lane} bit {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn initial_state_broadcasts() {
        let mut b = NetlistBuilder::new("init");
        let clk = b.clock("clk");
        let zero = b.zero();
        let q = b.dff(zero, clk, true);
        b.output(q, "q");
        let nl = b.finish().unwrap();
        let mut ws = WordSim::new(&nl).unwrap();
        let out = ws.step(&[]);
        assert_eq!(out[0], !0u64, "init=1 must appear in all lanes");
        let out = ws.step(&[]);
        assert_eq!(out[0], 0);
    }
}
