//! Value-change-dump (VCD) waveform writer.
//!
//! Any simulator in this crate (or the compiled-NN simulator) can record
//! its per-cycle inputs/outputs into a [`VcdRecorder`] and dump an IEEE
//! 1364 VCD file viewable in GTKWave & co. — the debugging surface a
//! downstream RTL user expects from a simulator.

use std::fmt::Write as _;

/// One traced signal: a name and a width.
#[derive(Clone, Debug)]
struct Var {
    name: String,
    width: usize,
    id: String,
}

/// Records per-cycle values and renders a VCD document.
#[derive(Clone, Debug, Default)]
pub struct VcdRecorder {
    module: String,
    vars: Vec<Var>,
    /// history[cycle][var] = bit vector (LSB first)
    history: Vec<Vec<Vec<bool>>>,
}

fn id_code(i: usize) -> String {
    // printable identifier codes: ! .. ~ per the VCD spec
    let mut i = i;
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

impl VcdRecorder {
    /// New recorder for a module scope name.
    pub fn new(module: impl Into<String>) -> Self {
        VcdRecorder {
            module: module.into(),
            ..Default::default()
        }
    }

    /// Declare a traced signal; call before the first [`VcdRecorder::tick`].
    /// Returns the variable index used in `tick`'s value slice order.
    pub fn add_var(&mut self, name: &str, width: usize) -> usize {
        assert!(
            self.history.is_empty(),
            "declare all variables before recording"
        );
        let id = id_code(self.vars.len());
        self.vars.push(Var {
            name: name.to_string(),
            width,
            id,
        });
        self.vars.len() - 1
    }

    /// Record one cycle: `values[i]` is variable `i`'s bits (LSB first).
    pub fn tick(&mut self, values: &[Vec<bool>]) {
        assert_eq!(values.len(), self.vars.len(), "one value per declared var");
        for (v, var) in values.iter().zip(&self.vars) {
            assert_eq!(v.len(), var.width, "width mismatch for {}", var.name);
        }
        self.history.push(values.to_vec());
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> usize {
        self.history.len()
    }

    /// Render the VCD document (one timestep per cycle; only changed
    /// values are emitted, per the format).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "$timescale 1ns $end");
        let _ = writeln!(s, "$scope module {} $end", self.module);
        for v in &self.vars {
            let _ = writeln!(s, "$var wire {} {} {} $end", v.width, v.id, v.name);
        }
        let _ = writeln!(s, "$upscope $end");
        let _ = writeln!(s, "$enddefinitions $end");
        let mut last: Vec<Option<&Vec<bool>>> = vec![None; self.vars.len()];
        for (t, row) in self.history.iter().enumerate() {
            let mut changes = String::new();
            for (i, (v, var)) in row.iter().zip(&self.vars).enumerate() {
                if last[i] == Some(v) {
                    continue;
                }
                if var.width == 1 {
                    let _ = writeln!(changes, "{}{}", v[0] as u8, var.id);
                } else {
                    let bits: String = v.iter().rev().map(|&b| if b { '1' } else { '0' }).collect();
                    let _ = writeln!(changes, "b{} {}", bits, var.id);
                }
                last[i] = Some(v);
            }
            if !changes.is_empty() || t == 0 {
                let _ = writeln!(s, "#{t}");
                s.push_str(&changes);
            }
        }
        let _ = writeln!(s, "#{}", self.history.len());
        s
    }

    /// Write the document to a file.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Trace a [`crate::CycleSim`] run: records all primary inputs and outputs
/// (grouped per named port bit) for the given stimuli and returns the
/// recorder.
pub fn trace_run(
    nl: &c2nn_netlist::Netlist,
    stimuli: &[Vec<bool>],
) -> Result<VcdRecorder, c2nn_netlist::SeqError> {
    let mut sim = crate::CycleSim::new(nl)?;
    let mut rec = VcdRecorder::new(nl.name.clone());
    for (i, &n) in nl.inputs.iter().enumerate() {
        let name = nl
            .net_name(n)
            .map(sanitize)
            .unwrap_or_else(|| format!("in{i}"));
        rec.add_var(&name, 1);
    }
    for (i, &n) in nl.outputs.iter().enumerate() {
        let name = nl
            .net_name(n)
            .map(sanitize)
            .unwrap_or_else(|| format!("out{i}"));
        rec.add_var(&name, 1);
    }
    for stim in stimuli {
        let out = sim.step(stim);
        let mut row: Vec<Vec<bool>> = stim.iter().map(|&b| vec![b]).collect();
        row.extend(out.iter().map(|&b| vec![b]));
        rec.tick(&row);
    }
    Ok(rec)
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_netlist::{NetlistBuilder, WordOps};

    #[test]
    fn renders_header_and_changes() {
        let mut rec = VcdRecorder::new("top");
        rec.add_var("clk_en", 1);
        rec.add_var("bus", 4);
        rec.tick(&[vec![true], vec![true, false, true, false]]);
        rec.tick(&[vec![true], vec![true, false, true, false]]); // no change
        rec.tick(&[vec![false], vec![false, false, false, true]]);
        let vcd = rec.render();
        assert!(vcd.contains("$var wire 1 ! clk_en $end"));
        assert!(vcd.contains("$var wire 4 \" bus $end"));
        assert!(vcd.contains("#0\n1!\nb0101 \""));
        // unchanged cycle emits no values
        assert!(!vcd.contains("#1\n1!"));
        assert!(vcd.contains("#2\n0!\nb1000 \""));
    }

    #[test]
    fn trace_counter_run() {
        let mut b = NetlistBuilder::new("ctr");
        let clk = b.clock("clk");
        let en = b.input("en");
        let q = b.fresh_word("q", 3);
        let inc = b.inc_word(&q);
        let next = b.mux_word(en, &q, &inc);
        b.connect_ff_word(&next, &q, clk, None, None, 0, 0);
        b.output_word(&q, "q");
        let nl = b.finish().unwrap();
        let stimuli: Vec<Vec<bool>> = (0..6).map(|_| vec![true]).collect();
        let rec = trace_run(&nl, &stimuli).unwrap();
        assert_eq!(rec.cycles(), 6);
        let vcd = rec.render();
        assert!(vcd.starts_with("$timescale"));
        // counter bit 0 toggles every cycle — every timestep appears
        for t in 0..6 {
            assert!(vcd.contains(&format!("#{t}")), "missing timestep {t}");
        }
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }
}
