//! Levelized cycle-accurate interpreter — the workspace's Verilator
//! stand-in and golden reference model.
//!
//! Like Verilator, it is a 2-state, cycle-based, single-stimulus simulator:
//! each `step` evaluates every gate once in topological order and then
//! updates the flip-flops. Its throughput in gates·cycles/s is nearly
//! constant across circuit sizes — exactly the plateau the paper's Table I
//! shows for the Verilator column.

use c2nn_netlist::{prepare, CutCircuit, Driver, Netlist, SeqError};

/// A compiled cycle simulator over a flip-flop-cut circuit.
#[derive(Clone, Debug)]
pub struct CycleSim {
    cut: CutCircuit,
    /// Gate indices in evaluation order.
    order: Vec<usize>,
    /// Current value of every net of the combinational netlist.
    vals: Vec<bool>,
    /// Current flip-flop state.
    state: Vec<bool>,
    /// Cycles simulated since construction/reset.
    cycles: u64,
    /// Gate count of the *original* netlist (for throughput accounting).
    gate_count: usize,
}

impl CycleSim {
    /// Build from a (possibly sequential) netlist: clock-unify, cut
    /// flip-flops, levelize.
    pub fn new(nl: &Netlist) -> Result<Self, SeqError> {
        let gate_count = nl.gate_count();
        let cut = prepare(nl)?;
        Ok(Self::from_cut(cut, gate_count))
    }

    /// Build from an already-cut circuit.
    pub fn from_cut(cut: CutCircuit, gate_count: usize) -> Self {
        let order = c2nn_netlist::topo_order(&cut.comb).expect("cut circuit must be a DAG");
        let vals = vec![false; cut.comb.num_nets as usize];
        let state = cut.state_init.clone();
        CycleSim {
            cut,
            order,
            vals,
            state,
            cycles: 0,
            gate_count,
        }
    }

    /// The underlying cut circuit.
    pub fn cut(&self) -> &CutCircuit {
        &self.cut
    }

    /// Number of primary inputs expected by [`CycleSim::step`].
    pub fn num_inputs(&self) -> usize {
        self.cut.num_primary_inputs
    }

    /// Number of primary outputs produced by [`CycleSim::step`].
    pub fn num_outputs(&self) -> usize {
        self.cut.num_primary_outputs
    }

    /// Gate count used for gates·cycles/s throughput accounting.
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current flip-flop state.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Return to the power-on state.
    pub fn reset(&mut self) {
        self.state.copy_from_slice(&self.cut.state_init);
        self.cycles = 0;
    }

    /// Simulate one clock cycle: present `inputs`, settle combinational
    /// logic, capture outputs, clock the flip-flops. Outputs reflect the
    /// state *before* the clock edge (standard cycle semantics).
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.cut.num_primary_inputs, "input width");
        let comb = &self.cut.comb;
        for (j, &inp) in comb.inputs.iter().enumerate() {
            self.vals[inp.index()] = if j < inputs.len() {
                inputs[j]
            } else {
                self.state[j - inputs.len()]
            };
        }
        let mut scratch: Vec<bool> = Vec::with_capacity(8);
        for &gi in &self.order {
            let g = &comb.gates[gi];
            scratch.clear();
            scratch.extend(g.inputs.iter().map(|n| self.vals[n.index()]));
            self.vals[g.output.index()] = g.kind.eval(&scratch);
        }
        let outs: Vec<bool> = comb.outputs[..self.cut.num_primary_outputs]
            .iter()
            .map(|o| self.vals[o.index()])
            .collect();
        for (s, o) in self
            .state
            .iter_mut()
            .zip(&comb.outputs[self.cut.num_primary_outputs..])
        {
            *s = self.vals[o.index()];
        }
        self.cycles += 1;
        outs
    }

    /// Run a full stimulus sequence, returning the outputs of every cycle.
    pub fn run(&mut self, stimuli: &[Vec<bool>]) -> Vec<Vec<bool>> {
        stimuli.iter().map(|s| self.step(s)).collect()
    }

    /// Evaluate only the combinational function `[inputs ‖ state] →
    /// [outputs ‖ next state]` without clocking (used by equivalence tests).
    pub fn eval_comb(&mut self, full_inputs: &[bool]) -> Vec<bool> {
        let comb = &self.cut.comb;
        assert_eq!(full_inputs.len(), comb.inputs.len());
        for (j, &inp) in comb.inputs.iter().enumerate() {
            self.vals[inp.index()] = full_inputs[j];
        }
        let mut scratch: Vec<bool> = Vec::with_capacity(8);
        for &gi in &self.order {
            let g = &comb.gates[gi];
            scratch.clear();
            scratch.extend(g.inputs.iter().map(|n| self.vals[n.index()]));
            self.vals[g.output.index()] = g.kind.eval(&scratch);
        }
        comb.outputs.iter().map(|o| self.vals[o.index()]).collect()
    }
}

/// Sanity helper: confirm a netlist's combinational part has a single
/// settled evaluation (always true for a validated DAG; exposed for tests).
pub fn is_simulable(nl: &Netlist) -> bool {
    nl.validate().is_ok()
        && nl
            .drivers()
            .map(|d| {
                nl.outputs
                    .iter()
                    .all(|o| !matches!(d[o.index()], Driver::None))
            })
            .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_netlist::{NetlistBuilder, WordOps};

    fn counter(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("ctr");
        let clk = b.clock("clk");
        let en = b.input("en");
        let q = b.fresh_word("q", width);
        let inc = b.inc_word(&q);
        let next = b.mux_word(en, &q, &inc);
        b.connect_ff_word(&next, &q, clk, None, None, 0, 0);
        b.output_word(&q, "q");
        b.finish().unwrap()
    }

    fn word_val(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    #[test]
    fn counter_counts_with_enable() {
        let nl = counter(8);
        let mut sim = CycleSim::new(&nl).unwrap();
        assert_eq!(sim.num_inputs(), 1);
        assert_eq!(sim.num_outputs(), 8);
        let pattern = [true, true, false, true, true, true, false, false, true];
        let mut expected = 0u64;
        for &en in &pattern {
            let out = sim.step(&[en]);
            assert_eq!(word_val(&out), expected);
            if en {
                expected = (expected + 1) & 0xff;
            }
        }
        assert_eq!(sim.cycles(), pattern.len() as u64);
    }

    #[test]
    fn reset_restores_power_on() {
        let nl = counter(4);
        let mut sim = CycleSim::new(&nl).unwrap();
        for _ in 0..5 {
            sim.step(&[true]);
        }
        assert_ne!(word_val(sim.state()), 0);
        sim.reset();
        assert_eq!(word_val(sim.state()), 0);
        assert_eq!(sim.cycles(), 0);
        let out = sim.step(&[false]);
        assert_eq!(word_val(&out), 0);
    }

    #[test]
    fn combinational_circuit_steps() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.xor2(a, c);
        b.output(y, "y");
        let nl = b.finish().unwrap();
        let mut sim = CycleSim::new(&nl).unwrap();
        assert_eq!(sim.step(&[true, false]), vec![true]);
        assert_eq!(sim.step(&[true, true]), vec![false]);
    }

    #[test]
    fn run_matches_repeated_step() {
        let nl = counter(4);
        let mut a = CycleSim::new(&nl).unwrap();
        let mut b = CycleSim::new(&nl).unwrap();
        let stim: Vec<Vec<bool>> = (0..10).map(|i| vec![i % 3 != 0]).collect();
        let ra = a.run(&stim);
        let rb: Vec<Vec<bool>> = stim.iter().map(|s| b.step(s)).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn simulable_check() {
        let nl = counter(2);
        assert!(is_simulable(&nl));
    }
}
