//! # c2nn-refsim
//!
//! Reference cycle-accurate gate-level simulators — the workspace's stand-in
//! for Verilator (golden model *and* baseline in every benchmark):
//!
//! * [`CycleSim`] — levelized full-evaluation interpreter: 2-state,
//!   cycle-based, one stimulus at a time, single thread. Its near-constant
//!   gates·cycles/s across circuit sizes reproduces the Verilator plateau
//!   in the paper's Table I.
//! * [`EventSim`] — event-driven variant (ESSENT-style) that skips gates
//!   whose inputs did not change, with activity accounting.
//! * [`WordSim`] — 64-lane bit-parallel variant (64 stimuli per step), the
//!   strongest single-thread CPU baseline for the ablations.
//!
//! All three share step semantics: outputs reflect the state before the
//! clock edge, flip-flops update after outputs are sampled. Equivalence
//! between them is enforced by tests; equivalence between them and the
//! compiled neural networks is the paper's §IV-A verification, enforced in
//! the workspace integration suite.

pub mod cycle;
pub mod event;
pub mod vcd;
pub mod word;

pub use cycle::{is_simulable, CycleSim};
pub use event::EventSim;
pub use vcd::{trace_run, VcdRecorder};
pub use word::WordSim;
