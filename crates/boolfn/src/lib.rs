//! # c2nn-boolfn
//!
//! Boolean-function core of the C2NN workspace: bit-packed truth tables,
//! sparse multilinear polynomials, and the transforms between them —
//! including the paper's **Algorithm 1** (divide-and-conquer LUT →
//! polynomial conversion) and the DNF baseline it is compared against in
//! Figure 4.
//!
//! ## The representation (paper Eq. 1)
//!
//! Every Boolean function has a unique multilinear ("Hamiltonian") extension
//! `f(x) = Σ_{S} w_S ∏_{s∈S} x_s` with integer coefficients. Evaluating it
//! at Boolean points reproduces the function *exactly* — the property that
//! lets the neural network compiler in `c2nn-core` build networks that are
//! bit-identical to the circuit, not approximations.
//!
//! ```
//! use c2nn_boolfn::{Lut, lut_to_poly};
//!
//! let xor = Lut::xor(2);
//! let p = lut_to_poly(&xor);          // x0 + x1 − 2·x0·x1
//! assert_eq!(p.to_algebra(), "x0 + x1 - 2·x0·x1");
//! for x in 0..4u32 {
//!     assert_eq!(p.eval_mask(x), (x.count_ones() % 2) as i64);
//! }
//! ```

pub mod analysis;
pub mod bdd;
pub mod lut;
pub mod poly;
pub mod transform;

pub use bdd::{Bdd, BddManager};
pub use lut::Lut;
pub use poly::{Polynomial, Term};
pub use transform::{known, lut_to_poly, lut_to_poly_dnf, poly_to_lut};
