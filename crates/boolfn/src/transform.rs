//! Truth-table ⇄ polynomial transforms.
//!
//! * [`lut_to_poly`] — the paper's **Algorithm 1**: a divide-and-conquer
//!   (FFT-inspired) conversion from value representation to coefficient
//!   representation in `O(2^L · L)` integer operations. Implemented
//!   iteratively and in place (it is exactly a Möbius / finite-difference
//!   transform over the subset lattice).
//! * [`lut_to_poly_dnf`] — the baseline the paper compares against in
//!   Figure 4: expand every 1-minterm's product of literals into its `2^z`
//!   signed monomials, `O(2^{2L})` worst case.
//! * [`poly_to_lut`] — the inverse (zeta transform), used for verification.

use crate::lut::Lut;
use crate::poly::{Polynomial, Term};

/// Algorithm 1: truth table → multilinear polynomial coefficients.
///
/// The recursion `[w_left, w_right − w_left]` over table halves is unrolled
/// into the standard in-place butterfly: for each variable `k`, subtract the
/// `x_k = 0` half from the `x_k = 1` half.
pub fn lut_to_poly(lut: &Lut) -> Polynomial {
    let n = lut.inputs();
    let rows = lut.num_rows();
    let mut w: Vec<i32> = (0..rows as u64).map(|r| lut.get(r) as i32).collect();
    for k in 0..n {
        let bit = 1usize << k;
        // Safe split-free iteration: for every index with bit k set,
        // subtract the partner with bit k clear.
        for i in 0..rows {
            if i & bit != 0 {
                w[i] -= w[i ^ bit];
            }
        }
    }
    Polynomial::from_dense(n, &w)
}

/// Inverse of [`lut_to_poly`]: evaluate the polynomial at every Boolean
/// point (the zeta transform over the subset lattice). Returns `None` if any
/// evaluation is not 0/1 — i.e. the polynomial is not the multilinear
/// extension of a Boolean function.
pub fn poly_to_lut(poly: &Polynomial) -> Option<Lut> {
    let n = poly.vars();
    let rows = 1usize << n;
    let mut v = vec![0i64; rows];
    for t in poly.terms() {
        v[t.mask as usize] = t.coeff as i64;
    }
    for k in 0..n {
        let bit = 1usize << k;
        for i in 0..rows {
            if i & bit != 0 {
                v[i] += v[i ^ bit];
            }
        }
    }
    let mut lut = Lut::zeros(n);
    for (i, &val) in v.iter().enumerate() {
        match val {
            0 => {}
            1 => lut.set(i as u64, true),
            _ => return None,
        }
    }
    Some(lut)
}

/// The DNF-expansion baseline (paper §III-B2, Figure 4's blue curve).
///
/// For every minterm `m` with `f(m)=1`, the product of literals
/// `∏_{j: m_j=1} x_j · ∏_{j: m_j=0} (1 − x_j)` is expanded: each subset `T`
/// of the zero-positions contributes `(−1)^{|T|}` to the monomial
/// `ones(m) ∪ T`. Worst case `Σ_m 2^{zeros(m)} = O(2^{2L})` additions.
pub fn lut_to_poly_dnf(lut: &Lut) -> Polynomial {
    let n = lut.inputs();
    let rows = lut.num_rows() as u64;
    let full: u64 = rows - 1;
    let mut dense = vec![0i32; rows as usize];
    for m in 0..rows {
        if !lut.get(m) {
            continue;
        }
        let zeros = full & !m;
        // enumerate all subsets T of `zeros` (including empty)
        let mut t = zeros;
        loop {
            let sign = if t.count_ones().is_multiple_of(2) {
                1
            } else {
                -1
            };
            dense[(m | t) as usize] += sign;
            if t == 0 {
                break;
            }
            t = (t - 1) & zeros;
        }
    }
    Polynomial::from_dense(n, &dense)
}

/// Closed-form polynomials for common wide functions (paper §V future work:
/// "polynomial libraries for known functions"). These avoid the `O(2^L)`
/// table entirely, enabling arbitrarily wide ANDs/ORs/XOR parities.
pub mod known {
    use super::*;

    /// `AND(x_0..x_{n-1}) = ∏ x_j` — a single monomial, any width.
    pub fn and(n: u8) -> Polynomial {
        assert!(n <= 26);
        Polynomial::monomial(n, (1u32 << n) - 1)
    }

    /// `OR = 1 − ∏ (1 − x_j)`: inclusion–exclusion, `2^n − 1` terms of
    /// alternating sign (dense, provided for completeness/testing).
    pub fn or(n: u8) -> Polynomial {
        assert!(n <= 20, "OR polynomial is dense; keep n small");
        let mut terms = Vec::with_capacity((1usize << n) - 1);
        for mask in 1u32..1 << n {
            let sign = if mask.count_ones() % 2 == 1 { 1 } else { -1 };
            terms.push(Term { mask, coeff: sign });
        }
        Polynomial::from_terms(n, terms)
    }

    /// `XOR`: coefficient `(−2)^{|S|−1}` on every nonempty `S`.
    pub fn xor(n: u8) -> Polynomial {
        assert!(n <= 20, "XOR polynomial is dense; keep n small");
        let mut terms = Vec::with_capacity((1usize << n) - 1);
        for mask in 1u32..1 << n {
            let k = mask.count_ones();
            let coeff = if k == 1 {
                1
            } else {
                // (-2)^(k-1)
                let mag = 1i32 << (k - 1);
                if k % 2 == 1 {
                    mag
                } else {
                    -mag
                }
            };
            terms.push(Term { mask, coeff });
        }
        Polynomial::from_terms(n, terms)
    }

    /// `NOT(x) = 1 − x`.
    pub fn not() -> Polynomial {
        Polynomial::from_terms(
            1,
            vec![Term { mask: 0, coeff: 1 }, Term { mask: 1, coeff: -1 }],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_roundtrip(lut: &Lut) {
        let p = lut_to_poly(lut);
        // every Boolean point evaluates exactly to the table value
        for x in 0..lut.num_rows() as u32 {
            assert_eq!(
                p.eval_mask(x),
                lut.get(x as u64) as i64,
                "{lut:?} at x={x:b}"
            );
        }
        assert_eq!(poly_to_lut(&p).as_ref(), Some(lut));
    }

    #[test]
    fn roundtrip_standard_functions() {
        for n in 1..=6u8 {
            check_roundtrip(&Lut::and(n));
            check_roundtrip(&Lut::or(n));
            check_roundtrip(&Lut::xor(n));
        }
        check_roundtrip(&Lut::majority(3));
        check_roundtrip(&Lut::majority(5));
        check_roundtrip(&Lut::mux());
        check_roundtrip(&Lut::zeros(4));
        check_roundtrip(&Lut::ones(4));
    }

    #[test]
    fn roundtrip_exhaustive_3vars() {
        // all 256 functions of 3 variables
        for f in 0u64..256 {
            let lut = Lut::from_bits(3, vec![f]);
            check_roundtrip(&lut);
        }
    }

    #[test]
    fn dnf_equals_divide_and_conquer() {
        for f in 0u64..256 {
            let lut = Lut::from_bits(3, vec![f]);
            assert_eq!(lut_to_poly_dnf(&lut), lut_to_poly(&lut), "f={f:08b}");
        }
        // spot-check larger, pseudo-random tables
        let mut state = 0x2545f4914f6cdd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in 4..=8u8 {
            for _ in 0..5 {
                let lut = Lut::random(n, &mut rng);
                assert_eq!(lut_to_poly_dnf(&lut), lut_to_poly(&lut));
            }
        }
    }

    #[test]
    fn known_and_matches_table() {
        for n in 1..=6u8 {
            assert_eq!(known::and(n), lut_to_poly(&Lut::and(n)));
        }
        // and also works far beyond table range
        let wide = known::and(26);
        assert_eq!(wide.num_terms(), 1);
        assert_eq!(wide.degree(), 26);
    }

    #[test]
    fn known_or_and_xor_match_tables() {
        for n in 1..=6u8 {
            assert_eq!(known::or(n), lut_to_poly(&Lut::or(n)), "or {n}");
            assert_eq!(known::xor(n), lut_to_poly(&Lut::xor(n)), "xor {n}");
        }
    }

    #[test]
    fn known_not_matches() {
        let not_lut = Lut::from_fn(1, |r| r == 0);
        assert_eq!(known::not(), lut_to_poly(&not_lut));
    }

    #[test]
    fn coefficients_are_bounded() {
        // |w_S| ≤ 2^n for 0/1 functions (finite differences double at most)
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for _ in 0..10 {
            let lut = Lut::random(8, &mut rng);
            let p = lut_to_poly(&lut);
            assert!(p.max_abs_coeff() <= 1 << 8);
        }
    }

    #[test]
    fn poly_to_lut_rejects_non_boolean() {
        // p = 2·x0 evaluates to 2 at x0=1
        let p = Polynomial::from_terms(1, vec![Term { mask: 1, coeff: 2 }]);
        assert!(poly_to_lut(&p).is_none());
    }

    #[test]
    fn xor_poly_has_full_density() {
        // XOR's polynomial touches every nonempty subset: 2^n − 1 terms
        let p = lut_to_poly(&Lut::xor(5));
        assert_eq!(p.num_terms(), 31);
        assert_eq!(p.coeff(0b11111), 16); // (−2)^4
    }

    #[test]
    fn and_poly_is_single_term() {
        let p = lut_to_poly(&Lut::and(7));
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.coeff(0x7f), 1);
    }
}
