//! Sparse multi-linear polynomial representation of Boolean functions
//! (paper Eq. 1, the "Hamiltonian" representation).
//!
//! `f(x_1,…,x_n) = Σ_{S ⊆ [n]} w_S · ∏_{s∈S} x_s` over the reals. For a 0/1
//! function the coefficients `w_S` are integers with |w_S| ≤ 2^n, so `i32` is
//! exact for every LUT size this workspace produces (L ≤ 26).

use std::fmt;

/// One monomial: the variable set as a bitmask plus its integer coefficient.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Term {
    /// Bit `j` set ⇔ variable `j` appears in the monomial. `0` = constant.
    pub mask: u32,
    pub coeff: i32,
}

impl Term {
    /// The variables of the monomial, in ascending index order.
    pub fn vars(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = self.mask;
        (0..32usize).filter(move |&j| mask >> j & 1 == 1)
    }

    /// Number of variables in the monomial (0 for the constant term).
    pub fn degree(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// A sparse multilinear polynomial over `vars ≤ 26` Boolean variables.
///
/// Invariants: terms sorted by mask, unique masks, no zero coefficients.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Polynomial {
    vars: u8,
    terms: Vec<Term>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero(vars: u8) -> Self {
        Polynomial {
            vars,
            terms: Vec::new(),
        }
    }

    /// Build from raw `(mask, coeff)` pairs; merges duplicates, drops zeros.
    pub fn from_terms(vars: u8, mut raw: Vec<Term>) -> Self {
        assert!(vars <= 26);
        for t in &raw {
            assert!(
                t.mask < (1u32 << vars),
                "term mask {:#x} out of range for {} vars",
                t.mask,
                vars
            );
        }
        raw.sort_by_key(|t| t.mask);
        let mut terms: Vec<Term> = Vec::with_capacity(raw.len());
        for t in raw {
            match terms.last_mut() {
                Some(last) if last.mask == t.mask => last.coeff += t.coeff,
                _ => terms.push(t),
            }
        }
        terms.retain(|t| t.coeff != 0);
        Polynomial { vars, terms }
    }

    /// Build from a dense coefficient vector indexed by mask.
    pub fn from_dense(vars: u8, dense: &[i32]) -> Self {
        assert_eq!(dense.len(), 1usize << vars);
        let terms = dense
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(m, &c)| Term {
                mask: m as u32,
                coeff: c,
            })
            .collect();
        Polynomial { vars, terms }
    }

    /// Dense coefficient vector indexed by mask.
    pub fn to_dense(&self) -> Vec<i32> {
        let mut d = vec![0i32; 1usize << self.vars];
        for t in &self.terms {
            d[t.mask as usize] = t.coeff;
        }
        d
    }

    /// Number of variables.
    #[inline]
    pub fn vars(&self) -> u8 {
        self.vars
    }

    /// The sorted, deduplicated, nonzero terms.
    #[inline]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of nonzero monomials.
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Degree: size of the largest monomial (0 for constants / zero).
    pub fn degree(&self) -> u32 {
        self.terms
            .iter()
            .map(|t| t.mask.count_ones())
            .max()
            .unwrap_or(0)
    }

    /// Fraction of the `2^vars` possible monomials that are *absent* —
    /// the paper's sparsity notion applied to the polynomial.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.num_terms() as f64 / (1usize << self.vars) as f64
    }

    /// Largest |coefficient| (0 for the zero polynomial).
    pub fn max_abs_coeff(&self) -> i32 {
        self.terms.iter().map(|t| t.coeff.abs()).max().unwrap_or(0)
    }

    /// Split into the constant term and the proper (degree ≥ 1) cubes —
    /// the shape the NN lowering consumes: one threshold neuron per cube,
    /// the constant folded into the output row's bias.
    pub fn split_constant(&self) -> (i32, &[Term]) {
        match self.terms.first() {
            Some(t) if t.mask == 0 => (t.coeff, &self.terms[1..]),
            _ => (0, &self.terms[..]),
        }
    }

    /// Coefficient of the monomial `mask` (0 if absent).
    pub fn coeff(&self, mask: u32) -> i32 {
        self.terms
            .binary_search_by_key(&mask, |t| t.mask)
            .map(|i| self.terms[i].coeff)
            .unwrap_or(0)
    }

    /// Evaluate on a Boolean point given as a bitmask (bit `j` = variable `j`).
    ///
    /// For a polynomial produced from a truth table this returns exactly 0
    /// or 1 — the exactness property the NN compiler relies on.
    pub fn eval_mask(&self, x: u32) -> i64 {
        let mut acc = 0i64;
        for t in &self.terms {
            if t.mask & x == t.mask {
                acc += t.coeff as i64;
            }
        }
        acc
    }

    /// Evaluate on a real-valued point (used by the analysis module for
    /// probability/noise computations; multilinear extension).
    pub fn eval_real(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars as usize);
        let mut acc = 0.0;
        for t in &self.terms {
            let mut prod = t.coeff as f64;
            let mut m = t.mask;
            while m != 0 {
                let j = m.trailing_zeros();
                prod *= x[j as usize];
                m &= m - 1;
            }
            acc += prod;
        }
        acc
    }

    /// Sum of two polynomials over the same variable count.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        assert_eq!(self.vars, other.vars);
        let mut raw: Vec<Term> = self.terms.clone();
        raw.extend_from_slice(&other.terms);
        Polynomial::from_terms(self.vars, raw)
    }

    /// Negation.
    pub fn neg(&self) -> Polynomial {
        Polynomial {
            vars: self.vars,
            terms: self
                .terms
                .iter()
                .map(|t| Term {
                    mask: t.mask,
                    coeff: -t.coeff,
                })
                .collect(),
        }
    }

    /// Product of two polynomials (multilinear reduction `x^2 = x` applied,
    /// i.e. monomial masks are OR-ed). Used by the known-function polynomial
    /// library (paper §V) to compose e.g. AND-of-wide-vectors directly.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        assert_eq!(self.vars, other.vars);
        let mut raw = Vec::with_capacity(self.terms.len() * other.terms.len());
        for a in &self.terms {
            for b in &other.terms {
                raw.push(Term {
                    mask: a.mask | b.mask,
                    coeff: a.coeff * b.coeff,
                });
            }
        }
        Polynomial::from_terms(self.vars, raw)
    }

    /// The monomial `∏_{j ∈ mask} x_j` with coefficient 1.
    pub fn monomial(vars: u8, mask: u32) -> Polynomial {
        Polynomial::from_terms(vars, vec![Term { mask, coeff: 1 }])
    }

    /// The constant polynomial `c`.
    pub fn constant(vars: u8, c: i32) -> Polynomial {
        Polynomial::from_terms(vars, vec![Term { mask: 0, coeff: c }])
    }

    /// Render as human-readable algebra, e.g. `1 - x0·x2 + 2·x1`.
    pub fn to_algebra(&self) -> String {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, t) in self.terms.iter().enumerate() {
            let c = t.coeff;
            if i == 0 {
                if c < 0 {
                    s.push('-');
                }
            } else if c < 0 {
                s.push_str(" - ");
            } else {
                s.push_str(" + ");
            }
            let a = c.abs();
            let vars: Vec<String> = (0..self.vars)
                .filter(|&j| t.mask >> j & 1 == 1)
                .map(|j| format!("x{j}"))
                .collect();
            if vars.is_empty() {
                s.push_str(&a.to_string());
            } else {
                if a != 1 {
                    s.push_str(&a.to_string());
                    s.push('·');
                }
                s.push_str(&vars.join("·"));
            }
        }
        s
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_algebra())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_terms_merges_and_sorts() {
        let p = Polynomial::from_terms(
            3,
            vec![
                Term {
                    mask: 0b10,
                    coeff: 2,
                },
                Term {
                    mask: 0b01,
                    coeff: 1,
                },
                Term {
                    mask: 0b10,
                    coeff: -2,
                },
            ],
        );
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.coeff(0b01), 1);
        assert_eq!(p.coeff(0b10), 0);
    }

    #[test]
    fn and_polynomial_eval() {
        // AND(x0,x1) = x0·x1
        let p = Polynomial::monomial(2, 0b11);
        assert_eq!(p.eval_mask(0b11), 1);
        assert_eq!(p.eval_mask(0b01), 0);
        assert_eq!(p.eval_mask(0b00), 0);
    }

    #[test]
    fn or_polynomial_via_algebra() {
        // OR(a,b) = a + b - ab
        let a = Polynomial::monomial(2, 0b01);
        let b = Polynomial::monomial(2, 0b10);
        let ab = a.mul(&b);
        let or = a.add(&b).add(&ab.neg());
        for x in 0..4u32 {
            assert_eq!(or.eval_mask(x), (x != 0) as i64, "x={x}");
        }
    }

    #[test]
    fn xor_polynomial_via_algebra() {
        // XOR(a,b) = a + b - 2ab
        let a = Polynomial::monomial(2, 0b01);
        let b = Polynomial::monomial(2, 0b10);
        let m2ab = a.mul(&b).neg().add(&a.mul(&b).neg());
        let xor = a.add(&b).add(&m2ab);
        for x in 0..4u32 {
            assert_eq!(xor.eval_mask(x), ((x.count_ones() % 2) == 1) as i64);
        }
        assert_eq!(xor.degree(), 2);
        assert_eq!(xor.max_abs_coeff(), 2);
    }

    #[test]
    fn multilinear_reduction_in_mul() {
        // x0 · x0 = x0 (idempotence)
        let x0 = Polynomial::monomial(1, 1);
        assert_eq!(x0.mul(&x0), x0);
    }

    #[test]
    fn dense_roundtrip() {
        let p = Polynomial::from_terms(
            3,
            vec![
                Term { mask: 0, coeff: 1 },
                Term {
                    mask: 0b111,
                    coeff: -4,
                },
            ],
        );
        let d = p.to_dense();
        assert_eq!(d.len(), 8);
        assert_eq!(Polynomial::from_dense(3, &d), p);
    }

    #[test]
    fn eval_real_extends_boolean() {
        // multilinear extension of AND at (0.5, 0.5) = 0.25
        let p = Polynomial::monomial(2, 0b11);
        assert!((p.eval_real(&[0.5, 0.5]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sparsity_and_degree() {
        let p = Polynomial::monomial(4, 0b1010);
        assert_eq!(p.degree(), 2);
        assert!((p.sparsity() - (1.0 - 1.0 / 16.0)).abs() < 1e-12);
    }

    #[test]
    fn algebra_rendering() {
        let p = Polynomial::from_terms(
            3,
            vec![
                Term { mask: 0, coeff: 1 },
                Term {
                    mask: 0b101,
                    coeff: -1,
                },
                Term {
                    mask: 0b010,
                    coeff: 2,
                },
            ],
        );
        assert_eq!(p.to_algebra(), "1 + 2·x1 - x0·x2");
    }

    #[test]
    fn term_vars_and_degree() {
        let t = Term {
            mask: 0b1011,
            coeff: -2,
        };
        assert_eq!(t.vars().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(t.degree(), 3);
        assert_eq!(Term { mask: 0, coeff: 1 }.degree(), 0);
        assert_eq!(Term { mask: 0, coeff: 1 }.vars().count(), 0);
    }

    #[test]
    fn split_constant_peels_the_mask_zero_term() {
        let p = Polynomial::from_terms(
            2,
            vec![
                Term { mask: 0, coeff: 1 },
                Term {
                    mask: 0b01,
                    coeff: -1,
                },
                Term {
                    mask: 0b11,
                    coeff: 2,
                },
            ],
        );
        let (c, cubes) = p.split_constant();
        assert_eq!(c, 1);
        assert_eq!(cubes.len(), 2);
        assert!(cubes.iter().all(|t| t.mask != 0));

        let q = Polynomial::monomial(2, 0b10);
        assert_eq!(q.split_constant(), (0, q.terms()));
        assert_eq!(Polynomial::zero(2).split_constant().0, 0);
    }

    #[test]
    fn zero_polynomial() {
        let z = Polynomial::zero(5);
        assert_eq!(z.num_terms(), 0);
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval_mask(0b10101), 0);
        assert_eq!(z.to_algebra(), "0");
    }
}
