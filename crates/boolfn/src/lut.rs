//! Bit-packed truth tables (look-up tables).
//!
//! A [`Lut`] stores the complete truth table of a Boolean function
//! `f: {0,1}^n -> {0,1}` with row `i`'s value in bit `i % 64` of word
//! `i / 64`. Row index encoding: input `j` of the function is bit `j` of the
//! row index (input 0 = least significant). This matches the convention used
//! across the workspace (cone evaluation, polynomial transforms, NN layers).

use std::fmt;

/// A complete truth table over `inputs ≤ 26` variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Lut {
    inputs: u8,
    bits: Vec<u64>,
}

impl Lut {
    /// Maximum supported input count (2^26 rows = 8 MiB per table).
    pub const MAX_INPUTS: u8 = 26;

    /// An all-zero table over `inputs` variables.
    pub fn zeros(inputs: u8) -> Self {
        assert!(inputs <= Self::MAX_INPUTS, "LUT too wide: {inputs}");
        let words = Self::words_for(inputs);
        Lut {
            inputs,
            bits: vec![0; words],
        }
    }

    /// An all-one table over `inputs` variables.
    pub fn ones(inputs: u8) -> Self {
        let mut l = Self::zeros(inputs);
        for w in &mut l.bits {
            *w = !0;
        }
        l.mask_tail();
        l
    }

    fn words_for(inputs: u8) -> usize {
        (1usize << inputs).div_ceil(64)
    }

    /// Zero the bits beyond `2^inputs` in the last word so equality and
    /// popcounts are well defined.
    fn mask_tail(&mut self) {
        let rows = self.num_rows();
        if rows < 64 {
            let mask = (1u64 << rows) - 1;
            self.bits[0] &= mask;
        }
    }

    /// Build from an explicit bit-packed table.
    pub fn from_bits(inputs: u8, bits: Vec<u64>) -> Self {
        assert!(inputs <= Self::MAX_INPUTS);
        assert_eq!(bits.len(), Self::words_for(inputs));
        let mut l = Lut { inputs, bits };
        l.mask_tail();
        l
    }

    /// Build by evaluating `f` on every row (row index = packed inputs).
    pub fn from_fn(inputs: u8, mut f: impl FnMut(u64) -> bool) -> Self {
        let mut l = Self::zeros(inputs);
        for row in 0..l.num_rows() as u64 {
            if f(row) {
                l.set(row, true);
            }
        }
        l
    }

    /// A uniformly random table.
    pub fn random(inputs: u8, rng: &mut impl FnMut() -> u64) -> Self {
        let mut l = Self::zeros(inputs);
        for w in &mut l.bits {
            *w = rng();
        }
        l.mask_tail();
        l
    }

    /// Number of input variables.
    #[inline]
    pub fn inputs(&self) -> u8 {
        self.inputs
    }

    /// Number of rows (`2^inputs`).
    #[inline]
    pub fn num_rows(&self) -> usize {
        1usize << self.inputs
    }

    /// The packed table words.
    #[inline]
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }

    /// Value of row `row`.
    #[inline]
    pub fn get(&self, row: u64) -> bool {
        debug_assert!((row as usize) < self.num_rows());
        self.bits[(row / 64) as usize] >> (row % 64) & 1 == 1
    }

    /// Set row `row` to `value`.
    #[inline]
    pub fn set(&mut self, row: u64, value: bool) {
        debug_assert!((row as usize) < self.num_rows());
        let w = &mut self.bits[(row / 64) as usize];
        if value {
            *w |= 1 << (row % 64);
        } else {
            *w &= !(1 << (row % 64));
        }
    }

    /// Evaluate on a slice of input bits (`inputs[j]` = variable `j`).
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.inputs as usize);
        let row: u64 = inputs
            .iter()
            .enumerate()
            .map(|(j, &b)| (b as u64) << j)
            .sum();
        self.get(row)
    }

    /// Number of rows where the function is 1.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is this function constant?
    pub fn is_constant(&self) -> Option<bool> {
        match self.count_ones() {
            0 => Some(false),
            c if c == self.num_rows() => Some(true),
            _ => None,
        }
    }

    /// Does the function actually depend on variable `j`?
    pub fn depends_on(&self, j: u8) -> bool {
        assert!(j < self.inputs);
        let rows = self.num_rows() as u64;
        let bit = 1u64 << j;
        // compare f(x) vs f(x ^ bit) for all x with bit clear
        for x in 0..rows {
            if x & bit == 0 && self.get(x) != self.get(x | bit) {
                return true;
            }
        }
        false
    }

    /// Positive cofactor: the function with variable `j` fixed to `value`,
    /// over `inputs - 1` variables (remaining variables keep their relative
    /// order).
    pub fn cofactor(&self, j: u8, value: bool) -> Lut {
        assert!(j < self.inputs);
        let mut out = Lut::zeros(self.inputs - 1);
        let low_mask = (1u64 << j) - 1;
        for r in 0..out.num_rows() as u64 {
            let src = (r & low_mask) | ((r & !low_mask) << 1) | ((value as u64) << j);
            if self.get(src) {
                out.set(r, true);
            }
        }
        out
    }

    /// Exact combinatorial influence of variable `j`: the fraction of inputs
    /// where flipping `j` flips the output (O'Donnell, Def. 2.13).
    pub fn influence(&self, j: u8) -> f64 {
        assert!(j < self.inputs);
        let rows = self.num_rows() as u64;
        let bit = 1u64 << j;
        let mut flips = 0usize;
        for x in 0..rows {
            if x & bit == 0 && self.get(x) != self.get(x | bit) {
                flips += 1;
            }
        }
        flips as f64 / (rows / 2) as f64
    }

    // ----- standard functions used throughout tests and benches -----

    /// n-input AND.
    pub fn and(n: u8) -> Lut {
        Lut::from_fn(n, |row| row == (1u64 << n) - 1)
    }

    /// n-input OR.
    pub fn or(n: u8) -> Lut {
        Lut::from_fn(n, |row| row != 0)
    }

    /// n-input XOR (parity).
    pub fn xor(n: u8) -> Lut {
        Lut::from_fn(n, |row| row.count_ones() % 2 == 1)
    }

    /// n-input majority (n odd).
    pub fn majority(n: u8) -> Lut {
        Lut::from_fn(n, move |row| row.count_ones() > n as u32 / 2)
    }

    /// 3-input mux: inputs `[s, a, b]` (s = variable 0) computing `s ? b : a`.
    pub fn mux() -> Lut {
        Lut::from_fn(3, |row| {
            let s = row & 1 == 1;
            let a = row >> 1 & 1 == 1;
            let b = row >> 2 & 1 == 1;
            if s {
                b
            } else {
                a
            }
        })
    }
}

impl fmt::Debug for Lut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lut({} vars: ", self.inputs)?;
        let rows = self.num_rows().min(32);
        for r in (0..rows).rev() {
            write!(f, "{}", self.get(r as u64) as u8)?;
        }
        if self.num_rows() > 32 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_or_xor_tables() {
        let and3 = Lut::and(3);
        assert_eq!(and3.count_ones(), 1);
        assert!(and3.get(0b111));
        let or3 = Lut::or(3);
        assert_eq!(or3.count_ones(), 7);
        let xor3 = Lut::xor(3);
        assert_eq!(xor3.count_ones(), 4);
        assert!(xor3.get(0b001));
        assert!(!xor3.get(0b011));
    }

    #[test]
    fn eval_matches_get() {
        let maj = Lut::majority(3);
        assert!(maj.eval(&[true, true, false]));
        assert!(!maj.eval(&[true, false, false]));
    }

    #[test]
    fn constant_detection() {
        assert_eq!(Lut::zeros(4).is_constant(), Some(false));
        assert_eq!(Lut::ones(4).is_constant(), Some(true));
        assert_eq!(Lut::xor(4).is_constant(), None);
    }

    #[test]
    fn tail_masked_for_small_tables() {
        let l = Lut::ones(3);
        assert_eq!(l.bits()[0], 0xff);
        assert_eq!(l.count_ones(), 8);
    }

    #[test]
    fn large_table_multiword() {
        let l = Lut::xor(8);
        assert_eq!(l.bits().len(), 4);
        assert_eq!(l.count_ones(), 128);
    }

    #[test]
    fn depends_on_detects_dummy_vars() {
        // f(x0,x1,x2) = x0 ^ x2 — ignores x1
        let f = Lut::from_fn(3, |r| (r & 1 != 0) ^ (r >> 2 & 1 != 0));
        assert!(f.depends_on(0));
        assert!(!f.depends_on(1));
        assert!(f.depends_on(2));
    }

    #[test]
    fn cofactor_of_mux() {
        let m = Lut::mux(); // s=v0, a=v1, b=v2; s?b:a
        let s0 = m.cofactor(0, false); // = a over (a,b)
        let s1 = m.cofactor(0, true); // = b over (a,b)
        for r in 0..4u64 {
            assert_eq!(s0.get(r), r & 1 == 1, "a cofactor row {r}");
            assert_eq!(s1.get(r), r >> 1 & 1 == 1, "b cofactor row {r}");
        }
    }

    #[test]
    fn influence_of_xor_is_one() {
        let x = Lut::xor(5);
        for j in 0..5 {
            assert_eq!(x.influence(j), 1.0);
        }
    }

    #[test]
    fn influence_of_and_is_small() {
        let a = Lut::and(3);
        // flipping x0 matters only when x1=x2=1: 1 of 4 assignments
        assert!((a.influence(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mux_truth_table() {
        let m = Lut::mux();
        // s=1,a=0,b=1 -> 1 (row 0b101)
        assert!(m.get(0b101));
        // s=0,a=0,b=1 -> 0 (row 0b100)
        assert!(!m.get(0b100));
        // s=0,a=1 -> 1 (row 0b010)
        assert!(m.get(0b010));
    }
}
