//! Analysis of Boolean functions (paper §II-B background).
//!
//! The paper motivates the multilinear representation through the *Analysis
//! of Boolean Functions* toolkit (O'Donnell 2014): Fourier expansion over
//! the ±1 domain, variable influence, and noise stability. This module
//! implements those quantities exactly from a [`Lut`], both to document the
//! sparsity/low-order hypothesis the paper leans on (§II-B, §III-F) and to
//! cross-check the polynomial pipeline.

use crate::lut::Lut;

/// Fourier coefficients `f̂(S)` of `f: {−1,1}^n → {−1,1}` indexed by subset
/// mask, computed with an in-place Walsh–Hadamard transform in `O(2^n · n)`.
///
/// Truth-table convention: table value `1` maps to `−1` and `0` to `+1`
/// (i.e. `χ(b) = (−1)^b`), and row bit `j` gives the sign of variable `j`.
pub fn fourier_coeffs(lut: &Lut) -> Vec<f64> {
    let n = lut.inputs();
    let rows = lut.num_rows();
    let mut v: Vec<f64> = (0..rows as u64)
        .map(|r| if lut.get(r) { -1.0 } else { 1.0 })
        .collect();
    for k in 0..n {
        let bit = 1usize << k;
        for i in 0..rows {
            if i & bit == 0 {
                let a = v[i];
                let b = v[i | bit];
                v[i] = a + b;
                v[i | bit] = a - b;
            }
        }
    }
    let scale = 1.0 / rows as f64;
    for x in &mut v {
        *x *= scale;
    }
    v
}

/// Spectral influence of variable `j`: `Inf_j(f) = Σ_{S ∋ j} f̂(S)²`.
/// Agrees with the combinatorial [`Lut::influence`] (O'Donnell Thm 2.20).
pub fn spectral_influence(coeffs: &[f64], j: u8) -> f64 {
    let bit = 1usize << j;
    coeffs
        .iter()
        .enumerate()
        .filter(|(mask, _)| mask & bit != 0)
        .map(|(_, &c)| c * c)
        .sum()
}

/// Total influence `I(f) = Σ_j Inf_j(f) = Σ_S |S| · f̂(S)²`.
pub fn total_influence(coeffs: &[f64]) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .map(|(mask, &c)| mask.count_ones() as f64 * c * c)
        .sum()
}

/// Noise stability `Stab_ρ(f) = Σ_S ρ^{|S|} f̂(S)²` — the probability-based
/// robustness measure the paper cites when arguing real-life circuits yield
/// sparse, low-order polynomials.
pub fn noise_stability(coeffs: &[f64], rho: f64) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .map(|(mask, &c)| rho.powi(mask.count_ones() as i32) * c * c)
        .sum()
}

/// Spectral weight at each degree: `W_k = Σ_{|S| = k} f̂(S)²`. Sums to 1 by
/// Parseval; concentration on low `k` is the paper's "low-order" property.
pub fn degree_weights(coeffs: &[f64], n: u8) -> Vec<f64> {
    let mut w = vec![0.0; n as usize + 1];
    for (mask, &c) in coeffs.iter().enumerate() {
        w[mask.count_ones() as usize] += c * c;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parseval_holds() {
        for lut in [Lut::and(4), Lut::or(4), Lut::xor(4), Lut::majority(5)] {
            let c = fourier_coeffs(&lut);
            let sum: f64 = c.iter().map(|x| x * x).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{lut:?}: {sum}");
        }
    }

    #[test]
    fn xor_spectrum_is_one_point() {
        // parity has all weight on the full set
        let c = fourier_coeffs(&Lut::xor(4));
        for (mask, &v) in c.iter().enumerate() {
            if mask == 0b1111 {
                assert!((v.abs() - 1.0).abs() < 1e-12);
            } else {
                assert!(v.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spectral_influence_matches_combinatorial() {
        for lut in [Lut::and(3), Lut::majority(5), Lut::mux()] {
            let c = fourier_coeffs(&lut);
            for j in 0..lut.inputs() {
                let spec = spectral_influence(&c, j);
                let comb = lut.influence(j);
                assert!(
                    (spec - comb).abs() < 1e-9,
                    "{lut:?} var {j}: {spec} vs {comb}"
                );
            }
        }
    }

    #[test]
    fn total_influence_of_parity_is_n() {
        let c = fourier_coeffs(&Lut::xor(6));
        assert!((total_influence(&c) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn noise_stability_limits() {
        let c = fourier_coeffs(&Lut::majority(5));
        // ρ=1: perfectly stable = 1 (Parseval)
        assert!((noise_stability(&c, 1.0) - 1.0).abs() < 1e-9);
        // ρ=0: only the constant term survives
        let const_w = c[0] * c[0];
        assert!((noise_stability(&c, 0.0) - const_w).abs() < 1e-12);
        // monotone in ρ for nonneg ρ
        assert!(noise_stability(&c, 0.3) <= noise_stability(&c, 0.8) + 1e-12);
    }

    #[test]
    fn degree_weights_sum_to_one() {
        let lut = Lut::majority(5);
        let w = degree_weights(&fourier_coeffs(&lut), lut.inputs());
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // majority is odd: even-degree weights vanish (except none at 0? MAJ
        // has zero even weight including degree 0)
        assert!(w[0].abs() < 1e-12);
        assert!(w[2].abs() < 1e-12);
        assert!(w[1] > 0.5, "majority concentrates on degree 1: {w:?}");
    }
}
