//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! The paper's §II-B lists diagrams (BDD, AIG) among the standard Boolean
//! function representations next to truth tables and polynomials; this
//! module completes the trio. BDDs are canonical — two equal functions get
//! the same node — which gives O(1) equivalence checking, the complement of
//! the polynomial representation the compiler uses.

use crate::lut::Lut;
use std::collections::HashMap;

/// Handle to a function inside a [`BddManager`]. Canonical: two handles in
/// the same manager are equal iff the functions are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Bdd(u32);

#[derive(Clone, Copy, Debug)]
struct Node {
    var: u8,
    lo: u32,
    hi: u32,
}

/// A shared store of ROBDD nodes with the fixed variable order 0 < 1 < ….
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u8, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
}

const FALSE: u32 = 0;
const TRUE: u32 = 1;
/// Terminal marker variable (greater than any real variable).
const TERM: u8 = u8::MAX;

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    pub fn new() -> Self {
        BddManager {
            nodes: vec![
                Node {
                    var: TERM,
                    lo: 0,
                    hi: 0,
                },
                Node {
                    var: TERM,
                    lo: 1,
                    hi: 1,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        }
    }

    /// The constant function.
    pub fn constant(&self, v: bool) -> Bdd {
        Bdd(if v { TRUE } else { FALSE })
    }

    /// The projection function `x_i`.
    pub fn var(&mut self, i: u8) -> Bdd {
        assert!(i < TERM);
        Bdd(self.mk(i, FALSE, TRUE))
    }

    fn mk(&mut self, var: u8, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo; // reduction rule
        }
        if let Some(&n) = self.unique.get(&(var, lo, hi)) {
            return n;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    /// If-then-else: `f ? g : h` — the universal BDD operation.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        Bdd(self.ite_rec(f.0, g.0, h.0))
    }

    fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> u32 {
        // terminal cases
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        // split on the top variable
        let top = self.nodes[f as usize]
            .var
            .min(self.nodes[g as usize].var)
            .min(self.nodes[h as usize].var);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite_rec(f0, g0, h0);
        let hi = self.ite_rec(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactors(&self, n: u32, var: u8) -> (u32, u32) {
        let node = self.nodes[n as usize];
        if node.var == var {
            (node.lo, node.hi)
        } else {
            (n, n)
        }
    }

    pub fn not(&mut self, f: Bdd) -> Bdd {
        let (t, e) = (self.constant(false), self.constant(true));
        self.ite(f, t, e)
    }

    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let e = self.constant(false);
        self.ite(f, g, e)
    }

    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let t = self.constant(true);
        self.ite(f, t, g)
    }

    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Evaluate on the assignment packed as a mask (bit `i` = `x_i`).
    pub fn eval(&self, f: Bdd, assignment: u64) -> bool {
        let mut n = f.0;
        loop {
            let node = self.nodes[n as usize];
            if node.var == TERM {
                return n == TRUE;
            }
            n = if assignment >> node.var & 1 == 1 {
                node.hi
            } else {
                node.lo
            };
        }
    }

    /// Build the BDD of a truth table (variable order = table order).
    #[allow(clippy::wrong_self_convention)] // `self` is the node manager, not the source
    pub fn from_lut(&mut self, lut: &Lut) -> Bdd {
        let n = lut.inputs();
        Bdd(self.from_lut_rec(lut, n, 0, 0))
    }

    #[allow(clippy::wrong_self_convention)] // `self` is the node manager, not the source
    fn from_lut_rec(&mut self, lut: &Lut, n: u8, var: u8, prefix: u64) -> u32 {
        if var == n {
            return if lut.get(prefix) { TRUE } else { FALSE };
        }
        // split on the HIGHEST variable first so the order matches 0 < 1 < …
        // from the root; here we recurse from var 0 upward instead, building
        // bottom var at the root — equivalent canonical form for order 0<1<…
        let lo = self.from_lut_rec(lut, n, var + 1, prefix);
        let hi = self.from_lut_rec(lut, n, var + 1, prefix | 1 << var);
        self.mk(var, lo, hi)
    }

    /// Reconstruct the truth table over `n` variables.
    pub fn to_lut(&self, f: Bdd, n: u8) -> Lut {
        Lut::from_fn(n, |row| self.eval(f, row))
    }

    /// Number of internal nodes reachable from `f` (a complexity measure).
    pub fn node_count(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= TRUE || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        seen.len()
    }

    /// Number of satisfying assignments over `n` variables.
    pub fn sat_count(&self, f: Bdd, n: u8) -> u64 {
        let mut memo: HashMap<u32, u64> = HashMap::new();
        self.sat_rec(f.0, 0, n, &mut memo)
    }

    fn sat_rec(&self, node: u32, from_var: u8, n: u8, memo: &mut HashMap<u32, u64>) -> u64 {
        let nd = self.nodes[node as usize];
        let var = if nd.var == TERM { n } else { nd.var };
        debug_assert!(var >= from_var);
        let skipped = (var - from_var) as u32;
        if node <= TRUE {
            return if node == TRUE { 1u64 << skipped } else { 0 };
        }
        let below = if let Some(&v) = memo.get(&node) {
            v
        } else {
            let lo = self.sat_rec(nd.lo, nd.var + 1, n, memo);
            let hi = self.sat_rec(nd.hi, nd.var + 1, n, memo);
            let v = lo + hi;
            memo.insert(node, v);
            v
        };
        below << skipped
    }

    /// Total nodes allocated in the manager (shared across functions).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut m = BddManager::new();
        let t = m.constant(true);
        let f = m.constant(false);
        assert_ne!(t, f);
        let x0 = m.var(0);
        assert!(m.eval(x0, 0b1));
        assert!(!m.eval(x0, 0b0));
    }

    #[test]
    fn canonicity() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        // (x & y) built two different ways is the same node
        let a = m.and(x, y);
        let ny = m.not(y);
        let t1 = m.or(x, ny);
        let nt1 = m.not(t1);
        let b = {
            // x & y = ~(~ (x & y)) via De Morgan: ~(~x | ~y)
            let nx = m.not(x);
            let or = m.or(nx, ny);
            m.not(or)
        };
        assert_eq!(a, b, "canonical forms must coincide");
        assert_ne!(a, nt1);
    }

    #[test]
    fn lut_roundtrip_all_3var_functions() {
        let mut m = BddManager::new();
        for f in 0u64..256 {
            let lut = Lut::from_bits(3, vec![f]);
            let b = m.from_lut(&lut);
            assert_eq!(m.to_lut(b, 3), lut, "f={f:08b}");
        }
        // all 256 functions share one manager; canonicity keeps it at
        // exactly the distinct-subfunction count: 240 nodes testing x0
        // (3-var functions that depend on x0) + 12 testing x1 + 2 testing
        // x2 + 2 terminals = 256
        assert_eq!(m.size(), 256, "manager has {} nodes", m.size());
    }

    #[test]
    fn ops_match_tables() {
        let mut m = BddManager::new();
        let and8 = {
            let mut acc = m.constant(true);
            for i in 0..8 {
                let v = m.var(i);
                acc = m.and(acc, v);
            }
            acc
        };
        assert_eq!(m.to_lut(and8, 8), Lut::and(8));
        let xor6 = {
            let mut acc = m.constant(false);
            for i in 0..6 {
                let v = m.var(i);
                acc = m.xor(acc, v);
            }
            acc
        };
        assert_eq!(m.to_lut(xor6, 6), Lut::xor(6));
    }

    #[test]
    fn parity_bdd_is_linear_size() {
        // the classic result: parity has a 2n−1-node BDD but a 2^n−1-term
        // polynomial — the two representations have opposite strengths
        let mut m = BddManager::new();
        let lut = Lut::xor(10);
        let b = m.from_lut(&lut);
        assert_eq!(m.node_count(b), 2 * 10 - 1);
        let poly = crate::transform::lut_to_poly(&lut);
        assert_eq!(poly.num_terms(), (1 << 10) - 1);
    }

    #[test]
    fn sat_count_matches_popcount() {
        let mut m = BddManager::new();
        let mut seed = 0x1d5au64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in 1..=8u8 {
            for _ in 0..4 {
                let lut = Lut::random(n, &mut rng);
                let b = m.from_lut(&lut);
                assert_eq!(m.sat_count(b, n), lut.count_ones() as u64, "{lut:?}");
            }
        }
    }

    #[test]
    fn equivalence_check_is_pointer_compare() {
        let mut m = BddManager::new();
        // majority(3) expressed two ways
        let (a, b, c) = {
            let x = m.var(0);
            let y = m.var(1);
            let z = m.var(2);
            (x, y, z)
        };
        let maj1 = {
            let ab = m.and(a, b);
            let ac = m.and(a, c);
            let bc = m.and(b, c);
            let t = m.or(ab, ac);
            m.or(t, bc)
        };
        let maj2 = m.from_lut(&Lut::majority(3));
        assert_eq!(maj1, maj2);
    }
}
