//! Property tests for the Boolean-function core: Algorithm 1 is exact and
//! agrees with the DNF method; polynomial algebra is consistent; Fourier
//! identities hold.

use c2nn_boolfn::{analysis, lut_to_poly, lut_to_poly_dnf, poly_to_lut, Lut, Polynomial, Term};
use proptest::prelude::*;

fn lut_strategy(max_vars: u8) -> impl Strategy<Value = Lut> {
    (
        1u8..=max_vars,
        proptest::collection::vec(any::<u64>(), 1..=(1usize << max_vars) / 64 + 1),
    )
        .prop_map(|(n, words)| {
            let need = (1usize << n).div_ceil(64);
            let mut w = words;
            w.resize(need, 0);
            Lut::from_bits(n, w)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Algorithm 1 round-trips exactly: the polynomial evaluates to the
    /// table at every Boolean point, and the inverse transform recovers it.
    #[test]
    fn alg1_roundtrip(lut in lut_strategy(8)) {
        let p = lut_to_poly(&lut);
        for x in 0..lut.num_rows() as u32 {
            prop_assert_eq!(p.eval_mask(x), lut.get(x as u64) as i64);
        }
        prop_assert_eq!(poly_to_lut(&p), Some(lut));
    }

    /// The D&C transform and the DNF baseline produce identical polynomials.
    #[test]
    fn alg1_equals_dnf(lut in lut_strategy(8)) {
        prop_assert_eq!(lut_to_poly(&lut), lut_to_poly_dnf(&lut));
    }

    /// Coefficients are bounded by 2^n (finite differences of a 0/1 table).
    #[test]
    fn coefficients_bounded(lut in lut_strategy(9)) {
        let p = lut_to_poly(&lut);
        prop_assert!(p.max_abs_coeff() as i64 <= 1i64 << lut.inputs());
        prop_assert!(p.degree() <= lut.inputs() as u32);
    }

    /// Polynomial product = pointwise product of functions.
    #[test]
    fn product_is_pointwise_and(a in lut_strategy(6), b_bits in any::<u64>()) {
        let n = a.inputs();
        let rows = a.num_rows();
        let need = rows.div_ceil(64);
        let b = Lut::from_bits(n, vec![b_bits; need]);
        let pa = lut_to_poly(&a);
        let pb = lut_to_poly(&b);
        let prod = pa.mul(&pb);
        for x in 0..rows as u32 {
            prop_assert_eq!(prod.eval_mask(x), (a.get(x as u64) && b.get(x as u64)) as i64);
        }
    }

    /// Sum of polynomials = pointwise sum of functions.
    #[test]
    fn sum_is_pointwise(a in lut_strategy(6), b_bits in any::<u64>()) {
        let n = a.inputs();
        let need = a.num_rows().div_ceil(64);
        let b = Lut::from_bits(n, vec![b_bits; need]);
        let s = lut_to_poly(&a).add(&lut_to_poly(&b));
        for x in 0..a.num_rows() as u32 {
            prop_assert_eq!(s.eval_mask(x), a.get(x as u64) as i64 + b.get(x as u64) as i64);
        }
    }

    /// Parseval: Fourier weights sum to 1 for every Boolean function.
    #[test]
    fn parseval(lut in lut_strategy(8)) {
        let c = analysis::fourier_coeffs(&lut);
        let sum: f64 = c.iter().map(|x| x * x).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "Parseval sum = {}", sum);
    }

    /// Spectral influence equals combinatorial influence for every variable.
    #[test]
    fn influences_agree(lut in lut_strategy(7)) {
        let c = analysis::fourier_coeffs(&lut);
        for j in 0..lut.inputs() {
            let spec = analysis::spectral_influence(&c, j);
            let comb = lut.influence(j);
            prop_assert!((spec - comb).abs() < 1e-9, "var {}: {} vs {}", j, spec, comb);
        }
    }

    /// Multilinear extension: eval_real on 0/1 points equals eval_mask.
    #[test]
    fn real_extension_consistent(lut in lut_strategy(6)) {
        let p = lut_to_poly(&lut);
        for x in 0..lut.num_rows() as u32 {
            let point: Vec<f64> = (0..lut.inputs())
                .map(|j| (x >> j & 1) as f64)
                .collect();
            prop_assert!((p.eval_real(&point) - p.eval_mask(x) as f64).abs() < 1e-9);
        }
    }

    /// from_terms normalization: sorted, unique, no zeros — and stable.
    #[test]
    fn term_normalization(terms in proptest::collection::vec((0u32..64, -8i32..8), 0..20)) {
        let p = Polynomial::from_terms(
            6,
            terms.iter().map(|&(mask, coeff)| Term { mask, coeff }).collect(),
        );
        let ts = p.terms();
        for w in ts.windows(2) {
            prop_assert!(w[0].mask < w[1].mask, "sorted unique");
        }
        prop_assert!(ts.iter().all(|t| t.coeff != 0));
        // rebuilding from its own terms is the identity
        let q = Polynomial::from_terms(6, ts.to_vec());
        prop_assert_eq!(p, q);
    }
}
