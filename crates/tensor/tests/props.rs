//! Property tests for the tensor substrate: the sparse kernels agree with
//! naive dense reference implementations on random matrices.

use c2nn_tensor::{forward_dense, forward_sparse, Activation, Csr, Dense, Device};
use proptest::prelude::*;

type Trip = (u32, u32, i32);

fn trips_strategy(rows: u32, cols: u32, max: usize) -> impl Strategy<Value = Vec<Trip>> {
    proptest::collection::vec((0..rows, 0..cols, -4i32..5), 0..max)
}

fn dense_of(rows: usize, cols: usize, trips: &[Trip]) -> Vec<i64> {
    let mut d = vec![0i64; rows * cols];
    for &(r, c, v) in trips {
        d[r as usize * cols + c as usize] += v as i64;
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// from_triplets sums duplicates and agrees with the dense accumulation.
    #[test]
    fn triplets_accumulate(trips in trips_strategy(9, 7, 40)) {
        let m: Csr<i32> = Csr::from_triplets(9, 7, trips.clone());
        let d = dense_of(9, 7, &trips);
        for r in 0..9 {
            for c in 0..7 {
                prop_assert_eq!(m.get(r, c) as i64, d[r * 7 + c]);
            }
        }
        // nnz counts only true nonzeros
        prop_assert_eq!(m.nnz(), d.iter().filter(|&&v| v != 0).count());
    }

    /// SpGEMM equals the straightforward dense product.
    #[test]
    fn spgemm_equals_dense(
        a_trips in trips_strategy(6, 8, 30),
        b_trips in trips_strategy(8, 5, 30),
    ) {
        let a: Csr<i32> = Csr::from_triplets(6, 8, a_trips.clone());
        let b: Csr<i32> = Csr::from_triplets(8, 5, b_trips.clone());
        let c = a.matmul(&b);
        let da = dense_of(6, 8, &a_trips);
        let db = dense_of(8, 5, &b_trips);
        for i in 0..6 {
            for j in 0..5 {
                let want: i64 = (0..8).map(|k| da[i * 8 + k] * db[k * 5 + j]).sum();
                prop_assert_eq!(c.get(i, j) as i64, want, "({},{})", i, j);
            }
        }
    }

    /// Sparse forward = dense forward, serial = parallel, on random layers.
    #[test]
    fn forwards_agree(
        trips in trips_strategy(10, 12, 50),
        bias in proptest::collection::vec(-3i32..4, 10),
        xbits in proptest::collection::vec(any::<bool>(), 12 * 5),
        threshold in any::<bool>(),
    ) {
        let w: Csr<i32> = Csr::from_triplets(10, 12, trips.clone());
        let dvals: Vec<i32> = w.to_dense();
        let wd = Dense::from_vec(10, 12, dvals);
        let xvals: Vec<i32> = xbits.iter().map(|&b| b as i32).collect();
        let x = Dense::from_vec(12, 5, xvals);
        let act = if threshold { Activation::Threshold } else { Activation::Linear };
        let ys = forward_sparse(&w, &bias, &x, act, Device::Serial);
        let yp = forward_sparse(&w, &bias, &x, act, Device::Parallel);
        let yd = forward_dense(&wd, &bias, &x, act, Device::Serial);
        prop_assert_eq!(&ys, &yp);
        prop_assert_eq!(&ys, &yd);
        // manual reference for one lane
        for (j, &bj) in bias.iter().enumerate() {
            for lane in 0..5 {
                let mut acc = bj as i64;
                for k in 0..12 {
                    acc += w.get(j, k) as i64 * x.get(k, lane) as i64;
                }
                let want = if threshold { (acc > 0) as i64 } else { acc };
                prop_assert_eq!(ys.get(j, lane) as i64, want);
            }
        }
    }

    /// matvec equals a row of SpMM.
    #[test]
    fn matvec_consistent(trips in trips_strategy(8, 8, 30), v in proptest::collection::vec(-3i32..4, 8)) {
        let m: Csr<i32> = Csr::from_triplets(8, 8, trips);
        let y = m.matvec(&v);
        let x = Dense::from_vec(8, 1, v.clone());
        let y2 = forward_sparse(&m, &[0; 8], &x, Activation::Linear, Device::Serial);
        for (j, &yj) in y.iter().enumerate() {
            prop_assert_eq!(yj, y2.get(j, 0));
        }
    }

    /// Lane encode/decode round-trips.
    #[test]
    fn lanes_roundtrip(lanes in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 9), 1..6)) {
        let m: Dense<f32> = Dense::from_lanes(&lanes);
        prop_assert_eq!(m.rows(), 9);
        prop_assert_eq!(m.cols(), lanes.len());
        prop_assert_eq!(m.to_lanes(), lanes);
    }
}
