//! Compressed-sparse-row matrices — the storage format behind every NN
//! layer (paper §III-F: weight matrices of compiled circuits are ≳99.9%
//! sparse, which is both the memory win and the compute win).

use crate::scalar::Scalar;
use std::fmt;

/// Structural defect found while building a [`Csr`] from untrusted parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsrError {
    /// `row_ptr` must have exactly `rows + 1` entries starting at 0.
    BadRowPtrLen {
        /// `rows + 1`
        expected: usize,
        /// actual length
        got: usize,
    },
    /// `row_ptr` must be non-decreasing.
    RowPtrNotMonotonic {
        /// first row whose pointer decreases
        row: usize,
    },
    /// `row_ptr[rows]` must equal both `col_idx.len()` and `values.len()`.
    NnzMismatch {
        /// `row_ptr[rows]`
        row_ptr_last: usize,
        /// `col_idx.len()`
        col_idx_len: usize,
        /// `values.len()`
        values_len: usize,
    },
    /// A column index references a column ≥ `cols`.
    ColOutOfBounds {
        /// row containing the bad index
        row: usize,
        /// the offending column index
        col: u32,
        /// the matrix width
        cols: usize,
    },
    /// Column indices within a row must be strictly increasing (sorted, no
    /// duplicates) — row lookups binary-search on this invariant.
    ColNotSorted {
        /// row whose indices are unsorted or duplicated
        row: usize,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::BadRowPtrLen { expected, got } => {
                write!(f, "row_ptr has {got} entries, expected {expected}")
            }
            CsrError::RowPtrNotMonotonic { row } => {
                write!(f, "row_ptr decreases at row {row}")
            }
            CsrError::NnzMismatch { row_ptr_last, col_idx_len, values_len } => write!(
                f,
                "nnz mismatch: row_ptr ends at {row_ptr_last} but col_idx has {col_idx_len} and values {values_len} entries"
            ),
            CsrError::ColOutOfBounds { row, col, cols } => {
                write!(f, "row {row} references column {col} of a {cols}-column matrix")
            }
            CsrError::ColNotSorted { row } => {
                write!(f, "row {row} has unsorted or duplicate column indices")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// A sparse `rows × cols` matrix in CSR form.
#[derive(Clone, PartialEq, Debug)]
pub struct Csr<T> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from `(row, col, value)` triplets. Duplicates are summed;
    /// resulting zeros are dropped.
    pub fn from_triplets(rows: usize, cols: usize, mut t: Vec<(u32, u32, T)>) -> Self {
        for &(r, c, _) in &t {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "({r},{c}) out of {rows}x{cols}"
            );
        }
        t.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicate (r,c) runs in place, dropping zero sums.
        let mut merged: Vec<(u32, u32, T)> = Vec::with_capacity(t.len());
        for (r, c, v) in t {
            match merged.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != T::ZERO);
        let mut row_ptr = vec![0u32; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            row_ptr[r as usize + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero (the paper's "Mean Sparsity").
    pub fn sparsity(&self) -> f64 {
        let total = self.rows as f64 * self.cols as f64;
        if total == 0.0 {
            1.0
        } else {
            1.0 - self.nnz() as f64 / total
        }
    }

    /// Bytes used by the CSR arrays (the paper's "Memory (MB)" column).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * 4
            + self.col_idx.len() * 4
            + self.values.len() * std::mem::size_of::<T>()
    }

    /// The `(column, value)` entries of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, T)> + '_ {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Raw CSR slices `(row_ptr, col_idx, values)`.
    pub fn raw(&self) -> (&[u32], &[u32], &[T]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// Mutable view of the stored values. The sparsity *pattern* stays fixed;
    /// only magnitudes change. Used by the fault-injection harness to corrupt
    /// weights in place.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Build a CSR matrix from untrusted raw arrays, verifying every
    /// structural invariant ([`CsrError`] on violation): `row_ptr` length and
    /// monotonicity, nnz consistency, and per-row strictly increasing
    /// in-bounds column indices. This is the only way model deserialization
    /// constructs matrices, so malformed `model.json` files are rejected
    /// before any kernel can index out of bounds.
    pub fn try_from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self, CsrError> {
        check_parts(rows, cols, &row_ptr, &col_idx, values.len())?;
        Ok(Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Re-verify the structural invariants of this matrix (see
    /// [`Csr::try_from_raw_parts`]). Matrices built through the safe
    /// constructors always pass; the model validator calls this as a
    /// defense-in-depth check on programmatically assembled networks.
    pub fn check(&self) -> Result<(), CsrError> {
        check_parts(
            self.rows,
            self.cols,
            &self.row_ptr,
            &self.col_idx,
            self.values.len(),
        )
    }

    /// Dense row-major copy (test/debug sizes only).
    pub fn to_dense(&self) -> Vec<T> {
        let mut d = vec![T::ZERO; self.rows * self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                d[r * self.cols + c as usize] = v;
            }
        }
        d
    }

    /// Entry lookup (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> T {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        match self.col_idx[lo..hi].binary_search(&(c as u32)) {
            Ok(i) => self.values[lo + i],
            Err(_) => T::ZERO,
        }
    }

    /// Sparse–sparse product `self · other` (row-wise SpGEMM with a dense
    /// accumulator). This is the engine of the paper's Figure 5 layer
    /// merging: fusing an exact linear layer into the following layer is a
    /// matrix product of their weight matrices.
    pub fn matmul(&self, other: &Csr<T>) -> Csr<T> {
        assert_eq!(self.cols, other.rows, "dimension mismatch in SpGEMM");
        let mut acc: Vec<T> = vec![T::ZERO; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..self.rows {
            touched.clear();
            for (k, a) in self.row(r) {
                for (j, b) in other.row(k as usize) {
                    if acc[j as usize] == T::ZERO {
                        touched.push(j);
                    }
                    acc[j as usize] += a * b;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                let v = acc[j as usize];
                acc[j as usize] = T::ZERO;
                if v != T::ZERO {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr {
            rows: self.rows,
            cols: other.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sparse matrix × dense vector: `y = self · x`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let mut acc = T::ZERO;
                for (c, v) in self.row(r) {
                    acc += v * x[c as usize];
                }
                acc
            })
            .collect()
    }

    /// Convert element type exactly via `i32` (panics if a value is not an
    /// i32-representable integer — compiled-NN weights always are).
    pub fn cast<U: Scalar>(&self, to_i32: impl Fn(T) -> i32) -> Csr<U> {
        Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self
                .values
                .iter()
                .map(|&v| U::from_i32(to_i32(v)))
                .collect(),
        }
    }
}

fn check_parts(
    rows: usize,
    cols: usize,
    row_ptr: &[u32],
    col_idx: &[u32],
    values_len: usize,
) -> Result<(), CsrError> {
    if row_ptr.len() != rows + 1 || row_ptr.first() != Some(&0) {
        return Err(CsrError::BadRowPtrLen {
            expected: rows + 1,
            got: row_ptr.len(),
        });
    }
    for r in 0..rows {
        if row_ptr[r + 1] < row_ptr[r] {
            return Err(CsrError::RowPtrNotMonotonic { row: r });
        }
    }
    let nnz = row_ptr[rows] as usize;
    if col_idx.len() != nnz || values_len != nnz {
        return Err(CsrError::NnzMismatch {
            row_ptr_last: nnz,
            col_idx_len: col_idx.len(),
            values_len,
        });
    }
    for r in 0..rows {
        let lo = row_ptr[r] as usize;
        let hi = row_ptr[r + 1] as usize;
        let mut prev: Option<u32> = None;
        for &c in &col_idx[lo..hi] {
            if (c as usize) >= cols {
                return Err(CsrError::ColOutOfBounds {
                    row: r,
                    col: c,
                    cols,
                });
            }
            if prev.is_some_and(|p| p >= c) {
                return Err(CsrError::ColNotSorted { row: r });
            }
            prev = Some(c);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr<f32> {
        // [1 0 2]
        // [0 0 0]
        // [0 3 0]
        Csr::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0)])
    }

    #[test]
    fn triplets_roundtrip() {
        let m = small();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(
            m.to_dense(),
            vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0]
        );
    }

    #[test]
    fn duplicates_are_summed() {
        let m: Csr<i32> =
            Csr::from_triplets(2, 2, vec![(0, 0, 1), (0, 0, 2), (1, 1, 5), (1, 1, -5)]);
        assert_eq!(m.get(0, 0), 3);
        assert_eq!(m.nnz(), 1, "zero-summed duplicate must be dropped");
    }

    #[test]
    fn sparsity_and_memory() {
        let m = small();
        assert!((m.sparsity() - (1.0 - 3.0 / 9.0)).abs() < 1e-12);
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn matvec_works() {
        let m = small();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 0.0, 3.0]);
    }

    #[test]
    fn spgemm_matches_dense() {
        let a: Csr<i32> = Csr::from_triplets(2, 3, vec![(0, 0, 1), (0, 2, 2), (1, 1, 3)]);
        let b: Csr<i32> = Csr::from_triplets(3, 2, vec![(0, 1, 4), (1, 0, 5), (2, 1, -1)]);
        let c = a.matmul(&b);
        // dense check
        let ad = a.to_dense();
        let bd = b.to_dense();
        for i in 0..2 {
            for j in 0..2 {
                let mut want = 0;
                for k in 0..3 {
                    want += ad[i * 3 + k] * bd[k * 2 + j];
                }
                assert_eq!(c.get(i, j), want, "({i},{j})");
            }
        }
    }

    #[test]
    fn spgemm_cancellation_drops_entry() {
        // a row producing +1 and -1 into the same output must store nothing
        let a: Csr<i32> = Csr::from_triplets(1, 2, vec![(0, 0, 1), (0, 1, 1)]);
        let b: Csr<i32> = Csr::from_triplets(2, 1, vec![(0, 0, 1), (1, 0, -1)]);
        let c = a.matmul(&b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.get(0, 0), 0);
    }

    #[test]
    fn zero_matrix() {
        let z: Csr<f32> = Csr::zeros(4, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.sparsity(), 1.0);
        assert_eq!(z.matvec(&[1.0; 5]), vec![0.0; 4]);
    }

    #[test]
    fn try_from_raw_parts_accepts_well_formed() {
        let m = small();
        let (rp, ci, vs) = m.raw();
        let rebuilt =
            Csr::<f32>::try_from_raw_parts(3, 3, rp.to_vec(), ci.to_vec(), vs.to_vec()).unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn try_from_raw_parts_rejects_malformed() {
        use CsrError::*;
        // truncated row_ptr
        assert!(matches!(
            Csr::<f32>::try_from_raw_parts(3, 3, vec![0, 1], vec![0], vec![1.0]),
            Err(BadRowPtrLen { .. })
        ));
        // row_ptr not starting at 0
        assert!(matches!(
            Csr::<f32>::try_from_raw_parts(1, 1, vec![1, 1], vec![], vec![]),
            Err(BadRowPtrLen { .. })
        ));
        // decreasing row_ptr
        assert!(matches!(
            Csr::<f32>::try_from_raw_parts(2, 3, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]),
            Err(RowPtrNotMonotonic { row: 1 })
        ));
        // nnz mismatch (truncated values)
        assert!(matches!(
            Csr::<f32>::try_from_raw_parts(1, 3, vec![0, 2], vec![0, 1], vec![1.0]),
            Err(NnzMismatch { .. })
        ));
        // out-of-bounds column
        assert!(matches!(
            Csr::<f32>::try_from_raw_parts(1, 3, vec![0, 1], vec![7], vec![1.0]),
            Err(ColOutOfBounds {
                row: 0,
                col: 7,
                cols: 3
            })
        ));
        // permuted (unsorted) columns
        assert!(matches!(
            Csr::<f32>::try_from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]),
            Err(ColNotSorted { row: 0 })
        ));
        // duplicate columns
        assert!(matches!(
            Csr::<f32>::try_from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]),
            Err(ColNotSorted { row: 0 })
        ));
    }

    #[test]
    fn cast_f32_to_i32() {
        let m = small();
        let i: Csr<i32> = m.cast(|v| v as i32);
        assert_eq!(i.get(0, 2), 2);
        assert_eq!(i.nnz(), m.nnz());
    }
}
