//! Compressed-sparse-row matrices — the storage format behind every NN
//! layer (paper §III-F: weight matrices of compiled circuits are ≳99.9%
//! sparse, which is both the memory win and the compute win).

use crate::scalar::Scalar;
use serde::{Deserialize, Serialize};

/// A sparse `rows × cols` matrix in CSR form.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Csr<T> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from `(row, col, value)` triplets. Duplicates are summed;
    /// resulting zeros are dropped.
    pub fn from_triplets(rows: usize, cols: usize, mut t: Vec<(u32, u32, T)>) -> Self {
        for &(r, c, _) in &t {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "({r},{c}) out of {rows}x{cols}"
            );
        }
        t.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicate (r,c) runs in place, dropping zero sums.
        let mut merged: Vec<(u32, u32, T)> = Vec::with_capacity(t.len());
        for (r, c, v) in t {
            match merged.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != T::ZERO);
        let mut row_ptr = vec![0u32; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            row_ptr[r as usize + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero (the paper's "Mean Sparsity").
    pub fn sparsity(&self) -> f64 {
        let total = self.rows as f64 * self.cols as f64;
        if total == 0.0 {
            1.0
        } else {
            1.0 - self.nnz() as f64 / total
        }
    }

    /// Bytes used by the CSR arrays (the paper's "Memory (MB)" column).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * 4 + self.col_idx.len() * 4 + self.values.len() * std::mem::size_of::<T>()
    }

    /// The `(column, value)` entries of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, T)> + '_ {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Raw CSR slices `(row_ptr, col_idx, values)`.
    pub fn raw(&self) -> (&[u32], &[u32], &[T]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// Dense row-major copy (test/debug sizes only).
    pub fn to_dense(&self) -> Vec<T> {
        let mut d = vec![T::ZERO; self.rows * self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                d[r * self.cols + c as usize] = v;
            }
        }
        d
    }

    /// Entry lookup (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> T {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        match self.col_idx[lo..hi].binary_search(&(c as u32)) {
            Ok(i) => self.values[lo + i],
            Err(_) => T::ZERO,
        }
    }

    /// Sparse–sparse product `self · other` (row-wise SpGEMM with a dense
    /// accumulator). This is the engine of the paper's Figure 5 layer
    /// merging: fusing an exact linear layer into the following layer is a
    /// matrix product of their weight matrices.
    pub fn matmul(&self, other: &Csr<T>) -> Csr<T> {
        assert_eq!(self.cols, other.rows, "dimension mismatch in SpGEMM");
        let mut acc: Vec<T> = vec![T::ZERO; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..self.rows {
            touched.clear();
            for (k, a) in self.row(r) {
                for (j, b) in other.row(k as usize) {
                    if acc[j as usize] == T::ZERO {
                        touched.push(j);
                    }
                    acc[j as usize] += a * b;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                let v = acc[j as usize];
                acc[j as usize] = T::ZERO;
                if v != T::ZERO {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr {
            rows: self.rows,
            cols: other.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sparse matrix × dense vector: `y = self · x`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let mut acc = T::ZERO;
                for (c, v) in self.row(r) {
                    acc += v * x[c as usize];
                }
                acc
            })
            .collect()
    }

    /// Convert element type exactly via `i32` (panics if a value is not an
    /// i32-representable integer — compiled-NN weights always are).
    pub fn cast<U: Scalar>(&self, to_i32: impl Fn(T) -> i32) -> Csr<U> {
        Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|&v| U::from_i32(to_i32(v))).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr<f32> {
        // [1 0 2]
        // [0 0 0]
        // [0 3 0]
        Csr::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0)])
    }

    #[test]
    fn triplets_roundtrip() {
        let m = small();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(
            m.to_dense(),
            vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0]
        );
    }

    #[test]
    fn duplicates_are_summed() {
        let m: Csr<i32> =
            Csr::from_triplets(2, 2, vec![(0, 0, 1), (0, 0, 2), (1, 1, 5), (1, 1, -5)]);
        assert_eq!(m.get(0, 0), 3);
        assert_eq!(m.nnz(), 1, "zero-summed duplicate must be dropped");
    }

    #[test]
    fn sparsity_and_memory() {
        let m = small();
        assert!((m.sparsity() - (1.0 - 3.0 / 9.0)).abs() < 1e-12);
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn matvec_works() {
        let m = small();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 0.0, 3.0]);
    }

    #[test]
    fn spgemm_matches_dense() {
        let a: Csr<i32> = Csr::from_triplets(2, 3, vec![(0, 0, 1), (0, 2, 2), (1, 1, 3)]);
        let b: Csr<i32> = Csr::from_triplets(3, 2, vec![(0, 1, 4), (1, 0, 5), (2, 1, -1)]);
        let c = a.matmul(&b);
        // dense check
        let ad = a.to_dense();
        let bd = b.to_dense();
        for i in 0..2 {
            for j in 0..2 {
                let mut want = 0;
                for k in 0..3 {
                    want += ad[i * 3 + k] * bd[k * 2 + j];
                }
                assert_eq!(c.get(i, j), want, "({i},{j})");
            }
        }
    }

    #[test]
    fn spgemm_cancellation_drops_entry() {
        // a row producing +1 and -1 into the same output must store nothing
        let a: Csr<i32> = Csr::from_triplets(1, 2, vec![(0, 0, 1), (0, 1, 1)]);
        let b: Csr<i32> = Csr::from_triplets(2, 1, vec![(0, 0, 1), (1, 0, -1)]);
        let c = a.matmul(&b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.get(0, 0), 0);
    }

    #[test]
    fn zero_matrix() {
        let z: Csr<f32> = Csr::zeros(4, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.sparsity(), 1.0);
        assert_eq!(z.matvec(&[1.0; 5]), vec![0.0; 4]);
    }

    #[test]
    fn cast_f32_to_i32() {
        let m = small();
        let i: Csr<i32> = m.cast(|v| v as i32);
        assert_eq!(i.get(0, 2), 2);
        assert_eq!(i.nnz(), m.nnz());
    }
}
