//! # c2nn-tensor
//!
//! The linear-algebra substrate of the C2NN workspace — the role PyTorch +
//! cuSPARSE play in the paper. Compiled neural networks are sequences of
//! highly sparse affine layers followed by threshold activations; this crate
//! provides the storage ([`Csr`], [`Dense`]) and the forward kernels
//! ([`forward_sparse`], [`forward_dense`]) they execute on.
//!
//! The paper's GPU is modelled by [`Device::Parallel`] (a persistent worker
//! pool spreading each layer's rows across cores, see [`pool`] and [`par`];
//! sized by `C2NN_THREADS` or `available_parallelism`) and its CPU
//! reference point by [`Device::Serial`]; both produce bit-identical results,
//! so correctness tests run on either.
//!
//! Kernels are generic over [`Scalar`]: `f32` reproduces the paper's shipped
//! configuration (PyTorch sparse layers only support floats, §III-E), `i32`
//! implements the paper's proposed integer kernels (§V).

pub mod csr;
pub mod dense;
pub mod ops;
pub mod par;
pub mod pool;
pub mod scalar;

pub use csr::{Csr, CsrError};
pub use dense::Dense;
pub use ops::{forward_dense, forward_sparse, forward_sparse_into, Activation, Device};
pub use pool::Pool;
pub use scalar::Scalar;
