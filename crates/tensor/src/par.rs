//! Data-parallel chunk iteration for [`Device::Parallel`](crate::Device).
//!
//! The output matrix is pre-split into contiguous tasks of `grain` rows and
//! executed on the persistent worker pool ([`crate::pool`]): workers claim
//! tasks through an atomic cursor (dynamic assignment, so a few expensive
//! rows cannot strand one thread with all the work). Each task's sub-slice
//! is handed to exactly one claimant through a `Mutex<Option<..>>` cell, so
//! this module itself contains no `unsafe` — the lifetime-erasure needed to
//! hand borrowed slices to persistent threads lives in [`crate::pool`],
//! guarded by its completion latch.
//!
//! The pool is process-wide and shared with the serving layer; its size
//! honors the `C2NN_THREADS` env override (see [`crate::pool`] for the
//! precedence rules). If the pool is busy with another kernel's job, the
//! caller simply runs its own chunks serially instead of queueing.

use crate::pool::Pool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f(chunk_index, chunk)` to every `chunk_len`-sized chunk of `data`,
/// spreading chunks across the global worker pool. `grain` is the minimum
/// number of chunks per task (amortizes task-claim overhead for cheap rows).
///
/// `data.len()` must be an exact multiple of `chunk_len` (the feature-major
/// matrices this iterates over are always exactly `rows * batch` elements);
/// a trailing remainder is a logic error upstream and trips a debug
/// assertion rather than being silently skipped.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_in(Pool::global(), data, chunk_len, grain, f)
}

/// [`par_chunks_mut`] on an explicit pool (tests and embedders that want
/// their own thread budget).
pub fn par_chunks_mut_in<T, F>(pool: &Pool, data: &mut [T], chunk_len: usize, grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert!(
        chunk_len == 0 || data.len().is_multiple_of(chunk_len),
        "par_chunks_mut: data length {} is not a multiple of chunk length {} — \
         a trailing remainder would be silently skipped",
        data.len(),
        chunk_len
    );
    let n_chunks = data.len().checked_div(chunk_len).unwrap_or(0);
    if n_chunks == 0 {
        return;
    }
    let threads = pool.threads();
    let grain = grain.max(1);
    let n_tasks = n_chunks.div_ceil(grain);
    if threads <= 1 || n_tasks <= 1 {
        for (j, chunk) in data.chunks_exact_mut(chunk_len).enumerate() {
            f(j, chunk);
        }
        return;
    }

    // Pre-split into contiguous tasks; each Mutex cell is taken exactly once.
    type Task<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
    let mut tasks: Vec<Task<'_, T>> = Vec::with_capacity(n_tasks);
    let mut rest = &mut data[..n_chunks * chunk_len];
    let mut first_chunk = 0;
    while !rest.is_empty() {
        let take = (grain * chunk_len).min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        tasks.push(Mutex::new(Some((first_chunk, head))));
        first_chunk += take / chunk_len;
        rest = tail;
    }

    let cursor = AtomicUsize::new(0);
    let work = || loop {
        let t = cursor.fetch_add(1, Ordering::Relaxed);
        if t >= tasks.len() {
            break;
        }
        let taken = tasks[t].lock().map(|mut cell| cell.take()).unwrap_or(None);
        if let Some((start, slice)) = taken {
            for (k, chunk) in slice.chunks_exact_mut(chunk_len).enumerate() {
                f(start + k, chunk);
            }
        }
    };
    if !pool.try_run(&work) {
        // Pool busy with another kernel: claim every task on this thread.
        work();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_chunk_exactly_once() {
        let mut data = vec![0u32; 97 * 8];
        par_chunks_mut(&mut data, 8, 3, |j, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + j as u32;
            }
        });
        for (j, chunk) in data.chunks_exact(8).enumerate() {
            assert!(chunk.iter().all(|&v| v == 1 + j as u32), "chunk {j}");
        }
    }

    #[test]
    fn multi_thread_pool_visits_every_chunk_exactly_once() {
        let pool = Pool::with_threads(4);
        let mut data = vec![0u32; 193 * 4];
        par_chunks_mut_in(&pool, &mut data, 4, 2, |j, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + j as u32;
            }
        });
        for (j, chunk) in data.chunks_exact(4).enumerate() {
            assert!(chunk.iter().all(|&v| v == 1 + j as u32), "chunk {j}");
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 4, 1, |_, _| panic!("no chunks expected"));
        let mut data = vec![0u8; 4];
        par_chunks_mut(&mut data, 0, 1, |_, _| panic!("chunk_len 0"));
        par_chunks_mut(&mut data, 4, 1, |_, c| c.fill(7));
        assert_eq!(data, vec![7; 4]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not a multiple")]
    fn trailing_remainder_is_a_debug_panic() {
        let mut data = vec![0u8; 10];
        par_chunks_mut(&mut data, 4, 1, |_, _| {});
    }
}
