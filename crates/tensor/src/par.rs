//! Minimal data-parallel runtime for [`Device::Parallel`](crate::Device).
//!
//! The offline build cannot fetch Rayon, so the parallel device is built on
//! `std::thread::scope` instead: the output matrix is pre-split into
//! contiguous tasks of `grain` rows, and scoped workers claim tasks through an
//! atomic cursor (dynamic assignment, so a few expensive rows cannot strand
//! one thread with all the work). Each task's sub-slice is handed to exactly
//! one worker, so the whole scheme is safe Rust — no aliasing, no `unsafe`.
//!
//! Threads are spawned per call rather than kept in a pool; for the batched
//! kernels this is amortized over `rows × batch` AXPY work per call.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f(chunk_index, chunk)` to every `chunk_len`-sized chunk of `data`,
/// spreading chunks across available cores. `grain` is the minimum number of
/// chunks per task (amortizes task-claim overhead for cheap rows).
///
/// Chunks are `data.chunks_exact_mut(chunk_len)` — a trailing remainder
/// shorter than `chunk_len` is not visited, matching the exact-tiling layout
/// of feature-major matrices (`rows * batch` elements).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n_chunks = data.len().checked_div(chunk_len).unwrap_or(0);
    if n_chunks == 0 {
        return;
    }
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let grain = grain.max(1);
    let n_tasks = n_chunks.div_ceil(grain);
    if threads <= 1 || n_tasks <= 1 {
        for (j, chunk) in data.chunks_exact_mut(chunk_len).enumerate() {
            f(j, chunk);
        }
        return;
    }

    // Pre-split into contiguous tasks; each Mutex cell is taken exactly once.
    type Task<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
    let mut tasks: Vec<Task<'_, T>> = Vec::with_capacity(n_tasks);
    let mut rest = &mut data[..n_chunks * chunk_len];
    let mut first_chunk = 0;
    while !rest.is_empty() {
        let take = (grain * chunk_len).min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        tasks.push(Mutex::new(Some((first_chunk, head))));
        first_chunk += take / chunk_len;
        rest = tail;
    }

    let cursor = AtomicUsize::new(0);
    let workers = threads.min(tasks.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= tasks.len() {
                    break;
                }
                let taken = tasks[t].lock().map(|mut cell| cell.take()).unwrap_or(None);
                if let Some((start, slice)) = taken {
                    for (k, chunk) in slice.chunks_exact_mut(chunk_len).enumerate() {
                        f(start + k, chunk);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_chunk_exactly_once() {
        let mut data = vec![0u32; 97 * 8];
        par_chunks_mut(&mut data, 8, 3, |j, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + j as u32;
            }
        });
        for (j, chunk) in data.chunks_exact(8).enumerate() {
            assert!(chunk.iter().all(|&v| v == 1 + j as u32), "chunk {j}");
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 4, 1, |_, _| panic!("no chunks expected"));
        let mut data = vec![0u8; 4];
        par_chunks_mut(&mut data, 0, 1, |_, _| panic!("chunk_len 0"));
        par_chunks_mut(&mut data, 4, 1, |_, c| c.fill(7));
        assert_eq!(data, vec![7; 4]);
    }
}
