//! Persistent worker pool backing [`Device::Parallel`](crate::Device).
//!
//! Earlier revisions spawned fresh `std::thread::scope` workers on every
//! kernel call. That is fine for one long offline simulation, but a serving
//! workload issues thousands of small batched forward passes per second, and
//! per-call thread creation (stack allocation, TLS setup, scheduler churn)
//! then dominates. This module keeps one process-wide pool of parked worker
//! threads ([`Pool::global`]) that every parallel kernel — and the `c2nn
//! serve` batching scheduler above it — shares.
//!
//! ## Thread-count precedence
//!
//! The pool size is decided once, at first use:
//!
//! 1. `C2NN_THREADS` — if set to an integer ≥ 1, it wins unconditionally.
//!    This makes benchmark runs reproducible on shared machines where
//!    `available_parallelism` sees whatever the container happens to get.
//!    A value of `1` disables worker threads entirely (serial execution).
//! 2. [`std::thread::available_parallelism`] otherwise;
//! 3. `1` if even that is unavailable.
//!
//! Invalid `C2NN_THREADS` values (empty, `0`, non-numeric) are ignored and
//! fall through to rule 2.
//!
//! ## Execution model
//!
//! [`Pool::run`] broadcasts one job — a `&(dyn Fn() + Sync)` that internally
//! claims work items off an atomic cursor — to every parked worker and also
//! runs it on the calling thread. The call returns only after every worker
//! has finished the job, which is the load-bearing safety property: the job
//! may borrow stack data from the caller (the kernels hand it `&mut` slices
//! of the output matrix), so the borrow must outlive every use. The worker
//! side erases that lifetime with a raw pointer (the one `unsafe` in this
//! crate); the completion latch in `run` is what makes it sound.
//!
//! Only one job is in flight at a time. [`Pool::try_run`] refuses (returns
//! `false`) instead of queueing when the pool is busy, so concurrent kernel
//! invocations — e.g. two models' batchers stepping simultaneously — degrade
//! to serial execution on their own threads rather than convoying behind a
//! lock.
//!
//! ## Self-healing
//!
//! A worker whose job invocation panics marks the epoch poisoned, releases
//! the completion latch for its share (so the submitter is never wedged
//! waiting on a corpse), and exits its thread. The next job submission calls
//! `heal()`, which reaps dead workers and respawns replacements before
//! publishing work; the latch is always armed with the number of threads
//! that are actually alive ([`State::alive`]), never a stale target. The
//! cumulative [`Pool::poisoned_epochs`] counter surfaces how many jobs ever
//! lost a participant — a serving process can export it instead of silently
//! degrading.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, TryLockError};
use std::thread::JoinHandle;

/// Type-erased pointer to the job closure. Valid strictly between job
/// publication and the completion latch releasing the submitter.
struct JobPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (it is created from a `&(dyn Fn() + Sync)`)
// and `run` keeps the referent alive until every worker is done with it.
unsafe impl Send for JobPtr {}

struct State {
    /// Incremented per job; workers use it to detect fresh work.
    epoch: u64,
    /// The current job, if one is in flight.
    job: Option<JobPtr>,
    /// Workers still executing the current job.
    active: usize,
    /// Worker threads currently alive (parked or executing). A panicking
    /// worker decrements this in the same critical section that releases
    /// the latch, so `heal()` and the latch can never disagree.
    alive: usize,
    /// A worker's job closure panicked during the current epoch.
    panicked: bool,
    /// Pool is being dropped; workers exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for a new epoch.
    work: Condvar,
    /// The submitter parks here waiting for `active` to reach zero.
    done: Condvar,
}

/// A persistent, self-healing pool of parked worker threads. See the
/// module docs.
pub struct Pool {
    shared: Arc<Shared>,
    /// Serializes job submission (one job in flight at a time).
    submit: Mutex<()>,
    /// Target worker count (total parallelism is `workers + 1`: the
    /// submitting thread always participates).
    workers: usize,
    /// Live worker handles; pruned and replenished by `heal()`.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Monotonic name counter so respawned workers get fresh names.
    spawned: AtomicU64,
    /// Epochs in which at least one participant panicked.
    poisoned: AtomicU64,
}

impl Pool {
    /// A pool with `threads` total parallelism (the calling thread counts,
    /// so `threads - 1` workers are spawned; `threads <= 1` spawns none).
    pub fn with_threads(threads: usize) -> Pool {
        let workers = threads.saturating_sub(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                alive: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let pool = Pool {
            shared,
            submit: Mutex::new(()),
            workers,
            handles: Mutex::new(Vec::new()),
            spawned: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        };
        pool.heal();
        pool
    }

    /// The process-wide pool, created on first use with
    /// [`default_threads`] threads.
    pub fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool::with_threads(default_threads()))
    }

    /// Total parallelism this pool offers (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.workers + 1
    }

    /// How many jobs ever lost a participant to a panic (the caller counts
    /// as a participant in a workerless pool). Monotonic; exported by the
    /// serving stats endpoint so a production process can alarm on silent
    /// worker churn.
    pub fn poisoned_epochs(&self) -> u64 {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Worker threads currently alive (excludes the calling thread). Equal
    /// to the spawn target except in the window between a worker panic and
    /// the next submission's `heal()`.
    pub fn alive_workers(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .alive
    }

    /// Reap dead workers and respawn replacements up to the target count.
    /// Called before every job publication; cheap when nothing died (one
    /// mutex lock, no syscalls).
    fn heal(&self) {
        let missing = {
            let st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.shutdown {
                return;
            }
            self.workers.saturating_sub(st.alive)
        };
        if missing == 0 {
            return;
        }
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        handles.retain(|h| !h.is_finished());
        for _ in 0..missing {
            let shared = Arc::clone(&self.shared);
            let id = self.spawned.fetch_add(1, Ordering::Relaxed);
            let h = std::thread::Builder::new()
                .name(format!("c2nn-pool-{id}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
            handles.push(h);
        }
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.alive += missing;
    }

    /// Run `job` on every worker and on the calling thread, returning once
    /// all of them have finished. `job` must be written cooperatively: each
    /// invocation claims work items (e.g. off an atomic cursor) until none
    /// remain. Panics inside `job` propagate to the caller after every
    /// thread has stopped touching borrowed data; a worker that panicked is
    /// respawned before the next job runs.
    pub fn run(&self, job: &(dyn Fn() + Sync)) {
        let guard = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        self.run_locked(job);
        drop(guard);
    }

    /// [`Pool::run`], but if another job is already in flight, do nothing
    /// and return `false` — callers then fall back to executing the job on
    /// their own thread, which is exactly what the kernels want under
    /// concurrent load.
    pub fn try_run(&self, job: &(dyn Fn() + Sync)) -> bool {
        let guard = match self.submit.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return false,
        };
        self.run_locked(job);
        drop(guard);
        true
    }

    /// Deliberately panic exactly one pool worker (chaos injection). The
    /// call itself panics — on the worker-panic propagation path when the
    /// pool has workers, inline otherwise — so callers exercise the same
    /// failure surface a genuine kernel panic produces, and the pool's
    /// self-healing respawns the lost worker on the next job.
    pub fn inject_worker_panic(&self) {
        let claimed = AtomicBool::new(false);
        let has_workers = self.workers > 0;
        self.run(&|| {
            // with workers, one of them is the victim; in a workerless
            // pool the inline caller is — either way the panic travels
            // through `run`, so it poisons the epoch like a real one
            let am_victim = !has_workers
                || std::thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with("c2nn-pool-"));
            if am_victim && !claimed.swap(true, Ordering::Relaxed) {
                panic!("chaos: injected worker panic");
            }
        });
        // `run` panics on every path above; reaching here means the victim
        // never executed the job, which would be a pool bug — fail loudly
        // rather than silently injecting nothing.
        panic!("chaos: injected worker panic (victim never claimed)");
    }

    fn run_locked(&self, job: &(dyn Fn() + Sync)) {
        self.heal();
        if self.workers == 0 {
            // No workers: the pool degenerates to plain serial execution.
            // A panic still poisons the epoch, so the counter means the
            // same thing ("a job lost a participant") at every pool size.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                self.poisoned.fetch_add(1, Ordering::Relaxed);
                resume_unwind(payload);
            }
            return;
        }
        // SAFETY: this erases `job`'s borrow lifetime so the pointer can sit
        // in shared state. `run_locked` does not return or unwind until the
        // completion latch below has seen every worker finish, so no worker
        // dereferences the pointer after the borrow ends.
        let erased: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(job) };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(JobPtr(erased));
            // Arm the latch with the threads that will actually run the
            // job: `alive`, not the target — a corpse must never be waited
            // on (heal() above normally makes these equal).
            st.active = st.alive;
            st.panicked = false;
            drop(st);
            self.shared.work.notify_all();
        }
        // The caller is a worker too — it does its share instead of idling.
        let caller = catch_unwind(AssertUnwindSafe(job));
        // Completion latch: borrowed data in `job` may not be released (by
        // returning or unwinding) until no worker can still be running it.
        let mut st = self.shared.state.lock().unwrap();
        while st.active > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);
        if worker_panicked || caller.is_err() {
            self.poisoned.fetch_add(1, Ordering::Relaxed);
        }
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a c2nn-pool worker panicked while executing a parallel job");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    st.alive -= 1;
                    return;
                }
                if st.epoch != seen {
                    if let Some(jp) = st.job.as_ref() {
                        seen = st.epoch;
                        break jp.0;
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // SAFETY: `run_locked` does not return (or unwind) until this
        // worker decrements `active` below, so the closure and everything
        // it borrows are still alive here.
        let f = unsafe { &*job };
        let ok = catch_unwind(AssertUnwindSafe(f)).is_ok();
        let mut st = shared.state.lock().unwrap();
        if !ok {
            // Poison the epoch and die; `alive` drops in the same critical
            // section as the latch release so heal() sees a consistent
            // count. The submitter respawns a replacement before the next
            // job is published.
            st.panicked = true;
            st.alive -= 1;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
        drop(st);
        if !ok {
            return;
        }
    }
}

/// The thread count [`Pool::global`] is built with — `C2NN_THREADS` if it
/// parses to an integer ≥ 1, else [`std::thread::available_parallelism`],
/// else 1. See the module docs for why the env var takes precedence.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("C2NN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_threads_participate() {
        let pool = Pool::with_threads(4);
        assert_eq!(pool.threads(), 4);
        let cursor = AtomicUsize::new(0);
        let hits = [const { AtomicUsize::new(0) }; 256];
        pool.run(&|| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= hits.len() {
                break;
            }
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn reusable_across_many_jobs() {
        let pool = Pool::with_threads(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            let cursor = AtomicUsize::new(0);
            pool.run(&|| {
                while cursor.fetch_add(1, Ordering::Relaxed) < 10 {
                    total.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::with_threads(1);
        let ran = AtomicUsize::new(0);
        pool.run(&|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn workerless_pool_panics_still_poison_the_epoch() {
        let pool = Pool::with_threads(1);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| pool.inject_worker_panic()));
        assert!(r.is_err());
        assert_eq!(
            pool.poisoned_epochs(),
            1,
            "serial fallback counts the same way"
        );
        let ran = AtomicUsize::new(0);
        pool.run(&|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1, "pool stays usable");
    }

    #[test]
    fn try_run_refuses_while_busy() {
        let pool = Arc::new(Pool::with_threads(2));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let busy_seen = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&pool);
        let g2 = Arc::clone(&gate);
        let first = std::thread::spawn(move || {
            let started = AtomicUsize::new(0);
            p2.run(&|| {
                // only one claimant blocks on the gate; the rest return
                if started.fetch_add(1, Ordering::Relaxed) == 0 {
                    let (lock, cv) = &*g2;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }
            });
        });
        // wait until the first job is definitely in flight
        while pool.submit.try_lock().is_ok() {
            std::thread::yield_now();
        }
        assert!(!pool.try_run(&|| {}));
        busy_seen.fetch_add(1, Ordering::Relaxed);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        first.join().unwrap();
        // and once idle again, try_run succeeds
        assert!(pool.try_run(&|| {}));
    }

    #[test]
    fn panics_propagate_without_deadlock() {
        let pool = Pool::with_threads(3);
        let cursor = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|| {
                if cursor.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        assert_eq!(pool.poisoned_epochs(), 1, "the poisoned epoch is counted");
        // the pool survives, heals, and remains usable at full strength
        let ran = AtomicUsize::new(0);
        pool.run(&|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ran.load(Ordering::Relaxed) >= 1);
        assert_eq!(pool.alive_workers(), 2, "dead workers were respawned");
    }

    #[test]
    fn injected_worker_panic_is_healed() {
        let pool = Pool::with_threads(4);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| pool.inject_worker_panic()));
        assert!(r.is_err(), "injection must surface as a panic");
        assert_eq!(pool.poisoned_epochs(), 1);
        // next job heals first: every one of 4 threads participates again
        let participants = AtomicUsize::new(0);
        let gate = AtomicUsize::new(0);
        pool.run(&|| {
            participants.fetch_add(1, Ordering::Relaxed);
            // spin until everyone arrived, so participation is provable
            gate.fetch_add(1, Ordering::Relaxed);
            while gate.load(Ordering::Relaxed) < 4 {
                std::hint::spin_loop();
            }
        });
        assert_eq!(participants.load(Ordering::Relaxed), 4);
        assert_eq!(pool.alive_workers(), 3);
    }

    #[test]
    fn repeated_worker_deaths_never_wedge() {
        let pool = Pool::with_threads(3);
        for i in 0..10 {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| pool.inject_worker_panic()));
            assert!(r.is_err(), "round {i}");
            let ran = AtomicUsize::new(0);
            pool.run(&|| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            assert!(ran.load(Ordering::Relaxed) >= 1, "round {i}");
        }
        assert_eq!(pool.poisoned_epochs(), 10);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
