//! Dense row-major matrices: the activation batches flowing through the NN
//! (`batch × width`), plus a dense weight format for the sparse-vs-dense
//! ablation (DESIGN.md A2).

use crate::scalar::Scalar;

/// A dense `rows × cols` matrix, row-major.
#[derive(Clone, PartialEq, Debug)]
pub struct Dense<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Dense<T> {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Take ownership of row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Dense { rows, cols, data }
    }

    /// Build row by row from an iterator of slices.
    pub fn from_rows<'a>(cols: usize, rows_iter: impl Iterator<Item = &'a [T]>) -> Self
    where
        T: 'a,
    {
        let mut data = Vec::new();
        let mut rows = 0;
        for r in rows_iter {
            assert_eq!(r.len(), cols);
            data.extend_from_slice(r);
            rows += 1;
        }
        Dense { rows, cols, data }
    }

    /// Build from a bit matrix: `bits[r][c]` → 0/1 scalar.
    pub fn from_bits(bits: &[Vec<bool>]) -> Self {
        let rows = bits.len();
        let cols = bits.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows * cols);
        for r in bits {
            assert_eq!(r.len(), cols);
            data.extend(r.iter().map(|&b| if b { T::ONE } else { T::ZERO }));
        }
        Dense { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.data[r * self.cols + c] = v;
    }

    /// Reshape in place, reusing the allocation (contents unspecified).
    /// The workhorse of the buffer-reusing forward kernels.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, T::ZERO);
    }

    /// Build a feature-major activation matrix from per-testbench bit
    /// vectors: `lanes[l]` holds lane `l`'s feature values; the result is
    /// `features × lanes` with lane `l` in column `l`.
    pub fn from_lanes(lanes: &[Vec<bool>]) -> Self {
        let b = lanes.len();
        let f = lanes.first().map_or(0, |l| l.len());
        let mut m = Dense::zeros(f, b);
        for (l, lane) in lanes.iter().enumerate() {
            assert_eq!(lane.len(), f, "lane {l} width");
            for (feat, &bit) in lane.iter().enumerate() {
                if bit {
                    m.set(feat, l, T::ONE);
                }
            }
        }
        m
    }

    /// Inverse of [`Dense::from_lanes`]: per-column bit vectors.
    pub fn to_lanes(&self) -> Vec<Vec<bool>> {
        (0..self.cols)
            .map(|l| (0..self.rows).map(|f| self.get(f, l) == T::ONE).collect())
            .collect()
    }

    /// Interpret entries as bits (exact 0/1 values expected).
    pub fn to_bits(&self) -> Vec<Vec<bool>> {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|&v| v == T::ONE).collect())
            .collect()
    }

    /// Bytes of payload.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m: Dense<f32> = Dense::zeros(2, 3);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
    }

    #[test]
    fn bits_roundtrip() {
        let bits = vec![vec![true, false], vec![false, true]];
        let m: Dense<i32> = Dense::from_bits(&bits);
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(0, 1), 0);
        assert_eq!(m.to_bits(), bits);
    }

    #[test]
    fn from_rows_collects() {
        let r0 = [1.0f32, 2.0];
        let r1 = [3.0f32, 4.0];
        let m = Dense::from_rows(2, [r0.as_slice(), r1.as_slice()].into_iter());
        assert_eq!(m.rows(), 2);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_shape() {
        let _ = Dense::<f32>::from_vec(2, 2, vec![0.0; 3]);
    }
}
