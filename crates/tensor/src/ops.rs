//! Forward-pass kernels.
//!
//! One NN layer computes `Y = act(W · X + b)` where `X` is the
//! **feature-major** activation matrix (`in_features × batch`: one row per
//! neuron, one column per testbench), `W` the `out × in` sparse weight
//! matrix, `b` the bias, and `act` either the threshold `Θ` (hidden layers)
//! or identity (the final exact-linear layer).
//!
//! Feature-major layout is the key to stimulus parallelism on CPUs: every
//! nonzero weight performs one contiguous `y[0..B] += w · x[0..B]` AXPY
//! over the batch, which the compiler auto-vectorizes. This mirrors what
//! cuSPARSE's SpMM does for the paper on GPUs.
//!
//! Two devices are provided:
//! * [`Device::Serial`] — one thread, models the paper's *CPU* curves
//!   (time ∝ number of connections, Figure 6 bottom);
//! * [`Device::Parallel`] — scoped worker threads standing in for the
//!   paper's *GPU* (per-layer work spread over cores; with enough cores the
//!   time per layer flattens, Figure 6 top). See [`crate::par`].

use crate::csr::Csr;
use crate::dense::Dense;
use crate::par::par_chunks_mut;
use crate::scalar::Scalar;

/// Execution target for the kernels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Device {
    /// Single-threaded execution (the paper's CPU reference point).
    Serial,
    /// Multi-threaded execution (the paper's GPU analogue).
    Parallel,
}

/// Elementwise activation applied after the affine transform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Activation {
    /// Identity — used by the final exact-linear layer.
    Linear,
    /// `Θ(x) = 1 if x > 0 else 0` — the paper's threshold neurons (Eq. 2).
    Threshold,
}

/// Compute one output-neuron row (all batch lanes) into `out`.
#[inline]
fn forward_neuron<T: Scalar>(
    w: &Csr<T>,
    bias: T,
    j: usize,
    x: &Dense<T>,
    act: Activation,
    out: &mut [T],
) {
    for o in out.iter_mut() {
        *o = bias;
    }
    for (c, wv) in w.row(j) {
        let xr = x.row(c as usize);
        // contiguous AXPY over the batch — auto-vectorized
        for (o, &xv) in out.iter_mut().zip(xr) {
            *o += wv * xv;
        }
    }
    if act == Activation::Threshold {
        for o in out.iter_mut() {
            *o = if o.is_positive() { T::ONE } else { T::ZERO };
        }
    }
}

/// Sparse forward pass: `Y = act(W · X + b)`.
///
/// `w` is `out × in` CSR; `x` is `in × batch` feature-major; the result is
/// `out × batch`.
pub fn forward_sparse<T: Scalar>(
    w: &Csr<T>,
    bias: &[T],
    x: &Dense<T>,
    act: Activation,
    device: Device,
) -> Dense<T> {
    let mut y = Dense::zeros(0, 0);
    forward_sparse_into(w, bias, x, act, device, &mut y);
    y
}

/// [`forward_sparse`] writing into a caller-provided buffer (reused across
/// cycles by the batched simulator — per-layer allocation would otherwise
/// dominate the forward pass).
pub fn forward_sparse_into<T: Scalar>(
    w: &Csr<T>,
    bias: &[T],
    x: &Dense<T>,
    act: Activation,
    device: Device,
    y: &mut Dense<T>,
) {
    assert_eq!(w.cols(), x.rows(), "weight/input width mismatch");
    assert_eq!(bias.len(), w.rows(), "bias/output width mismatch");
    let batch = x.cols();
    let out_h = w.rows();
    y.resize_to(out_h, batch);
    if batch == 0 || out_h == 0 {
        return;
    }
    // aim for a few thousand scalar ops per task to amortize work-stealing
    let min_rows = (4096 / batch.max(1)).clamp(1, 64);
    match device {
        Device::Serial => {
            for (j, row) in y.data_mut().chunks_mut(batch).enumerate() {
                forward_neuron(w, bias[j], j, x, act, row);
            }
        }
        Device::Parallel => {
            par_chunks_mut(y.data_mut(), batch, min_rows, |j, row| {
                forward_neuron(w, bias[j], j, x, act, row)
            });
        }
    }
}

/// Dense forward pass over a row-major `out × in` weight matrix — the
/// baseline for the sparse-vs-dense ablation (DESIGN.md A2). Same
/// feature-major activation convention as [`forward_sparse`].
pub fn forward_dense<T: Scalar>(
    w: &Dense<T>,
    bias: &[T],
    x: &Dense<T>,
    act: Activation,
    device: Device,
) -> Dense<T> {
    assert_eq!(w.cols(), x.rows());
    assert_eq!(bias.len(), w.rows());
    let batch = x.cols();
    let out_h = w.rows();
    let mut y = Dense::zeros(out_h, batch);
    if batch == 0 || out_h == 0 {
        return y;
    }
    let body = |j: usize, row: &mut [T]| {
        for o in row.iter_mut() {
            *o = bias[j];
        }
        let wj = w.row(j);
        for (c, &wv) in wj.iter().enumerate() {
            if wv == T::ZERO {
                continue;
            }
            let xr = x.row(c);
            for (o, &xv) in row.iter_mut().zip(xr) {
                *o += wv * xv;
            }
        }
        if act == Activation::Threshold {
            for o in row.iter_mut() {
                *o = if o.is_positive() { T::ONE } else { T::ZERO };
            }
        }
    };
    match device {
        Device::Serial => {
            for (j, row) in y.data_mut().chunks_mut(batch).enumerate() {
                body(j, row);
            }
        }
        Device::Parallel => {
            par_chunks_mut(y.data_mut(), batch, 1, |j, row| body(j, row));
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Csr<f32> {
        // 2 outputs, 3 inputs:
        // y0 = x0 + 2*x2, y1 = -x1
        Csr::from_triplets(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)])
    }

    #[test]
    fn sparse_linear_forward() {
        // batch of 2: lane0 = (1,1,1), lane1 = (0,1,0.5)
        let x = Dense::from_vec(3, 2, vec![1.0, 0.0, 1.0, 1.0, 1.0, 0.5]);
        let y = forward_sparse(&w(), &[0.0, 0.0], &x, Activation::Linear, Device::Serial);
        // y0 lanes: 1+2*1=3 ; 0+2*0.5=1 — y1 lanes: -1 ; -1
        assert_eq!(y.data(), &[3.0, 1.0, -1.0, -1.0]);
    }

    #[test]
    fn threshold_binarizes() {
        let x = Dense::from_vec(3, 1, vec![1.0, 1.0, 0.0]);
        let y = forward_sparse(&w(), &[0.0, 0.0], &x, Activation::Threshold, Device::Serial);
        assert_eq!(y.data(), &[1.0, 0.0]);
    }

    #[test]
    fn bias_shifts_preactivation() {
        // AND neuron per the paper: weights 1,1; bias 1-|S| = -1; Θ
        let and: Csr<f32> = Csr::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]);
        // 4 lanes: (0,0),(1,0),(0,1),(1,1)
        let x = Dense::from_vec(2, 4, vec![0., 1., 0., 1., 0., 0., 1., 1.]);
        let y = forward_sparse(&and, &[-1.0], &x, Activation::Threshold, Device::Serial);
        assert_eq!(y.data(), &[0., 0., 0., 1.]);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut seed = 0x12345678u64;
        let mut rng = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut trips = Vec::new();
        for r in 0..37u32 {
            for c in 0..53u32 {
                if rng() % 5 == 0 {
                    trips.push((r, c, (rng() % 7) as f32 - 3.0));
                }
            }
        }
        let w: Csr<f32> = Csr::from_triplets(37, 53, trips);
        let bias: Vec<f32> = (0..37).map(|_| (rng() % 3) as f32 - 1.0).collect();
        let xdata: Vec<f32> = (0..53 * 64).map(|_| (rng() % 2) as f32).collect();
        let x = Dense::from_vec(53, 64, xdata);
        for act in [Activation::Linear, Activation::Threshold] {
            let ys = forward_sparse(&w, &bias, &x, act, Device::Serial);
            let yp = forward_sparse(&w, &bias, &x, act, Device::Parallel);
            assert_eq!(ys, yp, "{act:?}");
        }
    }

    #[test]
    fn dense_matches_sparse() {
        let ws = w();
        let wd = Dense::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, -1.0, 0.0]);
        let x = Dense::from_vec(3, 3, vec![1., 0., 1., 0., 1., 1., 0., 0., 1.]);
        for act in [Activation::Linear, Activation::Threshold] {
            for dev in [Device::Serial, Device::Parallel] {
                let a = forward_sparse(&ws, &[0.5, 0.5], &x, act, dev);
                let d = forward_dense(&wd, &[0.5, 0.5], &x, act, dev);
                assert_eq!(a, d, "{act:?} {dev:?}");
            }
        }
    }

    #[test]
    fn integer_kernel_agrees_with_float() {
        let wf = w();
        let wi: Csr<i32> = wf.cast(|v| v as i32);
        let xf = Dense::from_vec(3, 2, vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
        let xi = Dense::from_vec(3, 2, vec![1, 1, 0, 1, 1, 0]);
        let yf = forward_sparse(&wf, &[0.0; 2], &xf, Activation::Threshold, Device::Serial);
        let yi = forward_sparse(&wi, &[0; 2], &xi, Activation::Threshold, Device::Serial);
        let yf_as_i: Vec<i32> = yf.data().iter().map(|&v| v as i32).collect();
        assert_eq!(yf_as_i, yi.data());
    }

    #[test]
    fn empty_batch_is_fine() {
        let x = Dense::zeros(3, 0);
        let y = forward_sparse(&w(), &[0.0; 2], &x, Activation::Linear, Device::Parallel);
        assert_eq!(y.rows(), 2);
        assert_eq!(y.cols(), 0);
    }
}
