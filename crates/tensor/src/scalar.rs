//! Scalar abstraction over the element types the NN kernels support.
//!
//! The paper ships f32 weights because PyTorch's sparse kernels only support
//! floating point (§III-E), while noting (§V) that the underlying values are
//! integers and binaries and that integer kernels would be faster. Our
//! kernels are generic so both the paper's configuration (`f32`) and its
//! proposed future-work configuration (`i32`) exist and can be compared
//! (ablation A4 in DESIGN.md).

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Element type usable by the sparse/dense kernels.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + Debug
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + 'static
{
    const ZERO: Self;
    const ONE: Self;

    /// Exact conversion from the integer coefficients the compiler produces.
    fn from_i32(v: i32) -> Self;

    /// `Θ(x) > 0` test for the threshold activation.
    fn is_positive(self) -> bool;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_i32(v: i32) -> Self {
        v as f32
    }

    #[inline]
    fn is_positive(self) -> bool {
        self > 0.0
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_i32(v: i32) -> Self {
        v as f64
    }

    #[inline]
    fn is_positive(self) -> bool {
        self > 0.0
    }
}

impl Scalar for i32 {
    const ZERO: Self = 0;
    const ONE: Self = 1;

    #[inline]
    fn from_i32(v: i32) -> Self {
        v
    }

    #[inline]
    fn is_positive(self) -> bool {
        self > 0
    }
}

impl Scalar for i64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;

    #[inline]
    fn from_i32(v: i32) -> Self {
        v as i64
    }

    #[inline]
    fn is_positive(self) -> bool {
        self > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_checks<T: Scalar>() {
        assert_eq!(T::from_i32(0), T::ZERO);
        assert_eq!(T::from_i32(1), T::ONE);
        assert!(T::ONE.is_positive());
        assert!(!T::ZERO.is_positive());
        assert!(!(T::ZERO - T::ONE).is_positive());
        assert_eq!(T::ONE + T::ZERO, T::ONE);
        assert_eq!(T::ONE * T::ONE, T::ONE);
    }

    #[test]
    fn all_scalars_behave() {
        generic_checks::<f32>();
        generic_checks::<f64>();
        generic_checks::<i32>();
        generic_checks::<i64>();
    }

    #[test]
    fn from_i32_is_exact_for_coefficient_range() {
        // compiler coefficients are bounded by 2^L ≤ 2^26; f32 is exact to 2^24,
        // so the compiler caps L for f32 — check the boundary logic here
        assert_eq!(f32::from_i32(1 << 24) as i64, 1i64 << 24);
        assert_eq!(i32::from_i32(i32::MAX), i32::MAX);
    }
}
