//! Scalar abstraction over the element types the NN kernels support.
//!
//! The paper ships f32 weights because PyTorch's sparse kernels only support
//! floating point (§III-E), while noting (§V) that the underlying values are
//! integers and binaries and that integer kernels would be faster. Our
//! kernels are generic so both the paper's configuration (`f32`) and its
//! proposed future-work configuration (`i32`) exist and can be compared
//! (ablation A4 in DESIGN.md).

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Element type usable by the sparse/dense kernels.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + Debug
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + 'static
{
    const ZERO: Self;
    const ONE: Self;

    /// Canonical dtype name used in model files (`"f32"`, `"i32"`, …).
    const NAME: &'static str;

    /// Largest magnitude `M` such that every integer in `[-M, M]` is exactly
    /// representable **and** integer addition staying within `[-M, M]` is
    /// exact. For floats this is the contiguous-integer bound (2^24 for f32,
    /// 2^53 for f64); for integers the type's own max. The validator's
    /// exactness-margin analysis bounds worst-case layer accumulation against
    /// this limit.
    const EXACT_LIMIT: i64;

    /// Exact conversion from the integer coefficients the compiler produces.
    fn from_i32(v: i32) -> Self;

    /// `Θ(x) > 0` test for the threshold activation.
    fn is_positive(self) -> bool;

    /// `false` for NaN/±∞ (always `true` for integer scalars).
    fn is_finite(self) -> bool;

    /// Widening conversion for serialization and magnitude analysis. Exact
    /// for every value the compiler produces (|v| ≤ [`Self::EXACT_LIMIT`],
    /// which is ≤ 2^53 for all supported types except i64, whose compiled
    /// coefficients are i32-ranged anyway).
    fn to_f64(self) -> f64;

    /// Inverse of [`Self::to_f64`]: `None` when `v` does not round-trip
    /// exactly (e.g. `3.5` as i32, or 2^60 as f32). Float NaN is accepted and
    /// preserved so the model validator can reject it by name.
    fn from_f64_exact(v: f64) -> Option<Self>;

    /// Raw bit pattern, zero-extended to 64 bits — input to weight checksums
    /// and the fault-injection harness.
    fn to_bits64(self) -> u64;

    /// Reinterpret (truncated) bits as a value; inverse of [`Self::to_bits64`].
    fn from_bits64(bits: u64) -> Self;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f32";
    const EXACT_LIMIT: i64 = 1 << 24;

    #[inline]
    fn from_i32(v: i32) -> Self {
        v as f32
    }

    #[inline]
    fn is_positive(self) -> bool {
        self > 0.0
    }

    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn from_f64_exact(v: f64) -> Option<Self> {
        if v.is_nan() {
            return Some(f32::NAN);
        }
        let narrowed = v as f32;
        (narrowed as f64 == v).then_some(narrowed)
    }

    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits() as u64
    }

    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f64";
    const EXACT_LIMIT: i64 = 1 << 53;

    #[inline]
    fn from_i32(v: i32) -> Self {
        v as f64
    }

    #[inline]
    fn is_positive(self) -> bool {
        self > 0.0
    }

    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn from_f64_exact(v: f64) -> Option<Self> {
        Some(v)
    }

    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }

    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Scalar for i32 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const NAME: &'static str = "i32";
    const EXACT_LIMIT: i64 = i32::MAX as i64;

    #[inline]
    fn from_i32(v: i32) -> Self {
        v
    }

    #[inline]
    fn is_positive(self) -> bool {
        self > 0
    }

    #[inline]
    fn is_finite(self) -> bool {
        true
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn from_f64_exact(v: f64) -> Option<Self> {
        if v.is_finite() && v.trunc() == v && (i32::MIN as f64..=i32::MAX as f64).contains(&v) {
            Some(v as i32)
        } else {
            None
        }
    }

    #[inline]
    fn to_bits64(self) -> u64 {
        self as u32 as u64
    }

    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits as u32 as i32
    }
}

impl Scalar for i64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const NAME: &'static str = "i64";
    const EXACT_LIMIT: i64 = i64::MAX;

    #[inline]
    fn from_i32(v: i32) -> Self {
        v as i64
    }

    #[inline]
    fn is_positive(self) -> bool {
        self > 0
    }

    #[inline]
    fn is_finite(self) -> bool {
        true
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn from_f64_exact(v: f64) -> Option<Self> {
        // f64 holds integers exactly up to 2^53; beyond that the JSON layer
        // could not have represented the value exactly in the first place.
        if v.is_finite() && v.trunc() == v && v.abs() <= (1i64 << 53) as f64 {
            Some(v as i64)
        } else {
            None
        }
    }

    #[inline]
    fn to_bits64(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_checks<T: Scalar>() {
        assert_eq!(T::from_i32(0), T::ZERO);
        assert_eq!(T::from_i32(1), T::ONE);
        assert!(T::ONE.is_positive());
        assert!(!T::ZERO.is_positive());
        assert!(!(T::ZERO - T::ONE).is_positive());
        assert_eq!(T::ONE + T::ZERO, T::ONE);
        assert_eq!(T::ONE * T::ONE, T::ONE);
    }

    #[test]
    fn all_scalars_behave() {
        generic_checks::<f32>();
        generic_checks::<f64>();
        generic_checks::<i32>();
        generic_checks::<i64>();
    }

    #[test]
    fn exact_roundtrip_and_bits() {
        fn roundtrip<T: Scalar>() {
            for v in [-3, 0, 1, 127, -128] {
                let s = T::from_i32(v);
                assert_eq!(T::from_f64_exact(s.to_f64()), Some(s));
                assert_eq!(T::from_bits64(s.to_bits64()), s);
                assert!(s.is_finite());
            }
        }
        roundtrip::<f32>();
        roundtrip::<f64>();
        roundtrip::<i32>();
        roundtrip::<i64>();
        assert_eq!(f32::from_f64_exact(0.1f64), None, "0.1 is not an f32");
        assert_eq!(i32::from_f64_exact(3.5), None);
        assert_eq!(i32::from_f64_exact(f64::INFINITY), None);
        assert!(f32::from_f64_exact(f64::NAN).unwrap().is_nan());
        assert!(!f32::NAN.is_finite() && !Scalar::is_finite(f32::INFINITY));
        assert_eq!(f32::EXACT_LIMIT, 1 << 24);
        assert_eq!(f64::EXACT_LIMIT, 1 << 53);
    }

    #[test]
    fn from_i32_is_exact_for_coefficient_range() {
        // compiler coefficients are bounded by 2^L ≤ 2^26; f32 is exact to 2^24,
        // so the compiler caps L for f32 — check the boundary logic here
        assert_eq!(f32::from_i32(1 << 24) as i64, 1i64 << 24);
        assert_eq!(i32::from_i32(i32::MAX), i32::MAX);
    }
}
