//! Property tests for the `.stim` testbench format: `format_stim` and
//! `parse_stim` must be exact inverses, and the parser must reject — never
//! panic on — malformed testbench files.

use c2nn_core::testbench::{format_stim, parse_stim, Stimulus};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, .. ProptestConfig::default() })]

    /// format → parse is the identity on every stimulus, including ones
    /// with long repeated runs (which the formatter run-length encodes).
    #[test]
    fn format_parse_roundtrip(
        width in 1usize..9,
        pattern in proptest::collection::vec(any::<u16>(), 0..40),
        runs in proptest::collection::vec(1usize..6, 0..40),
    ) {
        let mut cycles = Vec::new();
        for (i, bits) in pattern.iter().enumerate() {
            let row: Vec<bool> = (0..width).map(|j| bits >> j & 1 == 1).collect();
            // repeat some rows so the RLE path (`bits xN`) is exercised
            let n = runs.get(i).copied().unwrap_or(1);
            for _ in 0..n {
                cycles.push(row.clone());
            }
        }
        let stim = Stimulus { cycles };
        let text = format_stim(&stim);
        let back = parse_stim(&text, width).expect("formatter output must parse");
        prop_assert_eq!(back, stim);
    }

    /// Arbitrary text thrown at the parser: a `Stimulus` or a `StimError`
    /// with a line number, never a panic.
    #[test]
    fn parse_stim_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256), width in 0usize..6) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_stim(&text, width) {
            prop_assert!(e.line >= 1, "error lost its line: {:?}", e);
            prop_assert!(!e.message.is_empty());
        }
    }

    /// Structured soup over the stim vocabulary (bits, repeats, comments).
    #[test]
    fn stim_token_soup_never_panics(idx in proptest::collection::vec(0usize..14, 0..60)) {
        const VOCAB: &[&str] = &[
            "0", "1", "01", "10", "x", "x3", "x0", "x99999999999999999999",
            "#", "# comment", "\n", " ", "2", "é",
        ];
        let mut text = String::new();
        for i in idx {
            text.push_str(VOCAB[i]);
            text.push(' ');
        }
        for width in [1, 2] {
            if let Err(e) = parse_stim(&text, width) {
                prop_assert!(e.line >= 1);
                prop_assert!(!e.message.is_empty());
            }
        }
    }
}

#[test]
fn malformed_corpus_yields_stim_errors() {
    // each entry: (text, width, substring expected in the message)
    let corpus: &[(&str, usize, &str)] = &[
        ("101\n", 2, "expected 2 input bits"),
        ("1x\n", 2, "bad bit character"),
        ("12\n", 2, "bad bit character"),
        ("10 y3\n", 2, "expected xN repeat"),
        ("10 xx\n", 2, "bad repeat count"),
        ("10 x\n", 2, "bad repeat count"),
        ("10 x0\n", 2, "out of range"),
        ("10 x1000001\n", 2, "out of range"),
        ("10 x99999999999999999999\n", 2, "bad repeat count"),
        ("10 x3 junk\n", 2, "trailing tokens"),
        ("ok\n", 2, "bad bit character"),
    ];
    for (text, width, needle) in corpus {
        match parse_stim(text, *width) {
            Err(e) => {
                assert!(e.line >= 1, "no line for {text:?}");
                assert!(
                    e.message.contains(needle),
                    "error {:?} for {text:?} does not mention {needle:?}",
                    e.message
                );
            }
            Ok(s) => panic!("malformed stimulus accepted: {text:?} -> {s:?}"),
        }
    }
}

#[test]
fn error_lines_point_at_the_offending_line() {
    let text = "10\n01\n# fine so far\n10 x0\n";
    let err = parse_stim(text, 2).unwrap_err();
    assert_eq!(err.line, 4);
}

#[test]
fn empty_and_comment_only_files_parse_to_empty() {
    for text in ["", "\n\n", "# nothing\n  # here\n"] {
        let s = parse_stim(text, 3).unwrap();
        assert!(s.cycles.is_empty());
    }
}
