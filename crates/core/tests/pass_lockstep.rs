//! Pass-by-pass lockstep verification: every suite circuit, compiled with
//! every *prefix* of the canonical pass list, must stay bit-exact against
//! the reference gate-level simulator. This is the contract that lets any
//! pass be enabled independently (ISSUE 5's "each prefix" harness).

use c2nn_core::{compile_graph, compile_with_report, CompileOptions, PassId, PassSet, Simulator};
use c2nn_lutmap::{map_netlist, LutGraph, MapConfig};
use c2nn_netlist::{prepare, Netlist};
use c2nn_refsim::CycleSim;
use c2nn_tensor::{Dense, Device};

struct Lcg(u64);

impl Lcg {
    fn bit(&mut self) -> bool {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 40 & 1 == 1
    }
}

/// The suite circuits, with DMA at its small test variant to keep debug-mode
/// runtime bounded (same code path as the 64-channel build).
fn suite() -> Vec<(&'static str, Netlist)> {
    c2nn_circuits::table1_suite()
        .into_iter()
        .map(|b| {
            let nl = if b.name == "DMA" {
                c2nn_circuits::dma(4)
            } else {
                (b.build)()
            };
            (b.name, nl)
        })
        .collect()
}

/// Map once, then compile the same LUT graph under `opts` — the mapper is
/// the expensive stage and is identical across pass lists.
struct Mapped {
    graph: LutGraph,
    gate_count: usize,
    num_primary_inputs: usize,
    num_primary_outputs: usize,
    state_init: Vec<bool>,
}

fn map_once(nl: &Netlist, l: usize) -> Mapped {
    let cut = prepare(nl).unwrap();
    let graph = map_netlist(&cut.comb, MapConfig::with_l(l)).unwrap();
    Mapped {
        graph,
        gate_count: nl.gate_count(),
        num_primary_inputs: cut.num_primary_inputs,
        num_primary_outputs: cut.num_primary_outputs,
        state_init: cut.state_init,
    }
}

fn compile_prefix(m: &Mapped, l: usize, prefix: usize) -> c2nn_core::CompiledNn<f32> {
    let opts = CompileOptions::with_l(l).with_passes(PassSet::prefix(prefix));
    compile_graph::<f32>(
        &m.graph,
        m.gate_count,
        m.num_primary_inputs,
        m.num_primary_outputs,
        m.state_init.clone(),
        opts,
    )
    .unwrap()
}

#[test]
fn every_pass_prefix_stays_bit_exact_on_the_suite() {
    const L: usize = 4;
    const CYCLES: usize = 8;
    const BATCH: usize = 2;
    let num_prefixes = PassId::ALL.len() + 1;
    for (name, nl) in suite() {
        let mapped = map_once(&nl, L);
        let mut nnz_by_prefix = Vec::with_capacity(num_prefixes);
        for prefix in 0..num_prefixes {
            let nn = compile_prefix(&mapped, L, prefix);
            nnz_by_prefix.push(nn.connections());
            let mut nn_sim = Simulator::new(&nn, BATCH, Device::Serial);
            let mut refs: Vec<CycleSim> = (0..BATCH).map(|_| CycleSim::new(&nl).unwrap()).collect();
            let mut rng = Lcg(0x9e37 ^ prefix as u64 ^ name.len() as u64);
            let pi = nn.num_primary_inputs;
            for cycle in 0..CYCLES {
                let lanes: Vec<Vec<bool>> = (0..BATCH)
                    .map(|_| (0..pi).map(|_| rng.bit()).collect())
                    .collect();
                let got = nn_sim.step(&Dense::<f32>::from_lanes(&lanes)).to_lanes();
                for (lane, r) in refs.iter_mut().enumerate() {
                    let want = r.step(&lanes[lane]);
                    assert_eq!(
                        got[lane], want,
                        "{name}: prefix {prefix} diverged at cycle {cycle}, lane {lane}"
                    );
                }
            }
        }
        // fold/cse/dce never grow the artifact (layer-merge may — it trades
        // nonzeros for depth, so prefix 4 is exempt)
        for p in 1..=3 {
            assert!(
                nnz_by_prefix[p] <= nnz_by_prefix[p - 1],
                "{name}: pass {:?} grew nnz ({} > {})",
                PassId::ALL[p - 1],
                nnz_by_prefix[p],
                nnz_by_prefix[p - 1]
            );
        }
    }
}

#[test]
fn monomial_cse_itself_removes_nnz_on_the_suite() {
    // regression: cse used to leave its duplicates in place for dce, so
    // its own before/after stats read ~0 removed on most circuits even
    // when cross-LUT sharing fired. The pass now collects what it shares;
    // its recorded delta must show real removal somewhere in the suite
    // (and never growth anywhere).
    let passes = PassSet::none()
        .with(PassId::ConstantFold)
        .with(PassId::MonomialCse);
    let mut removed_total = 0i64;
    for (name, nl) in suite() {
        let opts = CompileOptions::with_l(4).with_passes(passes);
        let (_, report) = compile_with_report::<f32>(&nl, opts).unwrap();
        let delta = report.stat("monomial-cse").expect("cse ran").nnz_delta();
        assert!(delta >= 0, "{name}: cse grew nnz by {}", -delta);
        removed_total += delta;
    }
    assert!(
        removed_total > 0,
        "cse removed no nonzeros on any suite circuit — dead sharing is back"
    );
}

#[test]
fn merge_ablation_is_a_pass_list_difference() {
    // the old `merge_layers: false` ablation == dropping LayerMerge
    let nl = c2nn_circuits::spi();
    let mapped = map_once(&nl, 4);
    let no_merge = compile_graph::<f32>(
        &mapped.graph,
        mapped.gate_count,
        mapped.num_primary_inputs,
        mapped.num_primary_outputs,
        mapped.state_init.clone(),
        CompileOptions::with_l(4).with_passes(PassSet::all().without(PassId::LayerMerge)),
    )
    .unwrap();
    let merged = compile_prefix(&mapped, 4, PassId::ALL.len());
    assert!(merged.num_layers() < no_merge.num_layers());
    // both are [T, L]-alternating vs [T..T, L]; depth relation D+1 vs 2D
    assert_eq!(no_merge.num_layers() % 2, 0);
    assert_eq!(merged.num_layers(), no_merge.num_layers() / 2 + 1);
}
