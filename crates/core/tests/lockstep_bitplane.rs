//! Differential lockstep harness for the bit-plane backend: on every suite
//! circuit, the packed executor must stay bit-exact against BOTH the
//! pooled-CSR `Simulator` (all lanes) and the gate-level reference
//! simulator (spot-checked lanes), over multi-cycle sessions, for ragged
//! batch widths that don't fill a machine word, and under both pass sets —
//! the unmerged pipeline it prefers (gate/XOR ops) and the fully merged
//! one that forces its bit-sliced popcount fallback.

use c2nn_core::bitplane::{BitplaneNn, BitplaneRunner, BitplaneSimulator};
use c2nn_core::{compile, CompileOptions, PassId, PassSet, Session, SessionRunner, Simulator};
use c2nn_netlist::Netlist;
use c2nn_refsim::CycleSim;
use c2nn_tensor::{Dense, Device};

struct Lcg(u64);

impl Lcg {
    fn bit(&mut self) -> bool {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 40 & 1 == 1
    }

    fn lanes(&mut self, batch: usize, width: usize) -> Vec<Vec<bool>> {
        (0..batch)
            .map(|_| (0..width).map(|_| self.bit()).collect())
            .collect()
    }
}

/// The suite circuits, with DMA at its small test variant to keep
/// debug-mode runtime bounded (same code path as the 64-channel build).
fn suite() -> Vec<(&'static str, Netlist)> {
    c2nn_circuits::table1_suite()
        .into_iter()
        .map(|b| {
            let nl = if b.name == "DMA" {
                c2nn_circuits::dma(4)
            } else {
                (b.build)()
            };
            (b.name, nl)
        })
        .collect()
}

/// The pass set the bit-plane backend prefers: everything but layer-merge
/// (what `compile_bitplane` and the HAL's bitplane backend select).
fn unmerged() -> PassSet {
    PassSet::all().without(PassId::LayerMerge)
}

/// The two compile configurations the bit-plane backend must handle:
/// its native unmerged pipeline, and a fully merged network (exercising
/// the `Weighted` popcount fallback).
fn configs() -> [(&'static str, CompileOptions); 2] {
    [
        (
            "unmerged",
            CompileOptions::with_l(4).with_passes(unmerged()),
        ),
        (
            "merged",
            CompileOptions::with_l(4).with_passes(PassSet::all()),
        ),
    ]
}

/// How many lanes of each batch also get an independent gate-level refsim
/// (refsim is scalar and slow; CSR covers every lane, refsim anchors the
/// pair to the source circuit).
const REF_LANES: usize = 4;

#[test]
fn bitplane_matches_simulator_and_refsim_on_the_suite() {
    const CYCLES: usize = 6;
    // 67 = one full word + a ragged 3-bit tail
    const BATCH: usize = 67;
    for (name, nl) in suite() {
        for (tag, opts) in configs() {
            let nn = compile(&nl, opts).unwrap();
            let plan = BitplaneNn::from_compiled(&nn).unwrap();
            let mut bit_sim = BitplaneSimulator::new(&plan, BATCH, Device::Serial);
            let mut csr_sim = Simulator::new(&nn, BATCH, Device::Serial);
            let mut refs: Vec<CycleSim> = (0..REF_LANES.min(BATCH))
                .map(|_| CycleSim::new(&nl).unwrap())
                .collect();
            let mut rng = Lcg(0xb17 ^ name.len() as u64 ^ (tag.len() as u64) << 8);
            let pi = nn.num_primary_inputs;
            for cycle in 0..CYCLES {
                let lanes = rng.lanes(BATCH, pi);
                let got = bit_sim.step(&lanes).unwrap();
                let want = csr_sim.step(&Dense::<f32>::from_lanes(&lanes)).to_lanes();
                assert_eq!(
                    got, want,
                    "{name} [{tag}]: bitplane vs CSR diverged at cycle {cycle}"
                );
                for (lane, r) in refs.iter_mut().enumerate() {
                    let gold = r.step(&lanes[lane]);
                    assert_eq!(
                        got[lane], gold,
                        "{name} [{tag}]: bitplane vs refsim diverged at cycle {cycle}, lane {lane}"
                    );
                }
            }
            // the recurrent state agrees too, lane for lane
            assert_eq!(
                bit_sim.state_lanes(),
                csr_sim.state_lanes(),
                "{name} [{tag}]: state diverged after {CYCLES} cycles"
            );
            assert_eq!(bit_sim.cycles(), CYCLES as u64);
        }
    }
}

#[test]
fn unmerged_pipeline_legalizes_without_popcount_fallback() {
    // the whole point of dropping layer-merge for this backend: every
    // threshold row is a gate, every linear row a parity — no `Weighted`
    for (name, nl) in suite() {
        let nn = compile(&nl, CompileOptions::with_l(4).with_passes(unmerged())).unwrap();
        let plan = BitplaneNn::from_compiled(&nn).unwrap();
        let census = plan.op_census();
        assert_eq!(
            census.weighted, 0,
            "{name}: unmerged plan fell back to Weighted"
        );
        assert!(census.total() > 0, "{name}: empty plan");
    }
}

#[test]
fn exact_word_and_single_lane_batches_stay_exact() {
    // batch widths at the packing boundaries: 1 (one lone bit in a word)
    // and 64 (exactly full word, empty tail mask path)
    let nl = c2nn_circuits::uart();
    for batch in [1usize, 64] {
        for (tag, opts) in configs() {
            let nn = compile(&nl, opts).unwrap();
            let plan = BitplaneNn::from_compiled(&nn).unwrap();
            let mut bit_sim = BitplaneSimulator::new(&plan, batch, Device::Serial);
            let mut csr_sim = Simulator::new(&nn, batch, Device::Serial);
            let mut rng = Lcg(0x51ce ^ batch as u64);
            for cycle in 0..8 {
                let lanes = rng.lanes(batch, nn.num_primary_inputs);
                let got = bit_sim.step(&lanes).unwrap();
                let want = csr_sim.step(&Dense::<f32>::from_lanes(&lanes)).to_lanes();
                assert_eq!(got, want, "uart [{tag}] batch {batch}: cycle {cycle}");
            }
        }
    }
}

#[test]
fn parallel_dispatch_matches_serial() {
    // pool-sharded execution must be bit-identical to the serial loop,
    // across a batch spanning three words (130 = 2 full + ragged 2)
    let nl = c2nn_circuits::spi();
    let nn = compile(&nl, CompileOptions::with_l(4).with_passes(unmerged())).unwrap();
    let plan = BitplaneNn::from_compiled(&nn).unwrap();
    let mut serial = BitplaneSimulator::new(&plan, 130, Device::Serial);
    let mut parallel = BitplaneSimulator::new(&plan, 130, Device::Parallel);
    let mut rng = Lcg(0xa11e1);
    for cycle in 0..6 {
        let lanes = rng.lanes(130, nn.num_primary_inputs);
        let a = serial.step(&lanes).unwrap();
        let b = parallel.step(&lanes).unwrap();
        assert_eq!(a, b, "parallel dispatch diverged at cycle {cycle}");
    }
    assert_eq!(serial.state_lanes(), parallel.state_lanes());
}

#[test]
fn bitplane_runner_tracks_session_runner_through_batch_changes() {
    // resumable sessions with mid-stream batch-width changes, crossing a
    // word boundary in both directions: 60 lanes → 70 (spills into a
    // second word) → 5 (back under one). The bit-plane runner must follow
    // the CSR SessionRunner lane for lane through every recomposition.
    let nl = c2nn_circuits::uart();
    let nn = compile(&nl, CompileOptions::with_l(4).with_passes(unmerged())).unwrap();
    let plan = BitplaneNn::from_compiled(&nn).unwrap();
    let pi = nn.num_primary_inputs;

    let mut csr_runner = SessionRunner::new(&nn, Device::Serial);
    let mut bit_runner: BitplaneRunner<f32> = BitplaneRunner::new(&plan, Device::Serial);
    let mut csr_sessions: Vec<Session<f32>> = (0..60).map(|_| Session::new(&nn)).collect();
    let mut bit_sessions: Vec<Session<f32>> = (0..60).map(|_| Session::new(&nn)).collect();

    let mut rng = Lcg(0x5e55);
    let drive = |csr_s: &mut Vec<Session<f32>>,
                 bit_s: &mut Vec<Session<f32>>,
                 csr_r: &mut SessionRunner<f32>,
                 bit_r: &mut BitplaneRunner<f32>,
                 rng: &mut Lcg,
                 cycles: usize,
                 phase: &str| {
        for cycle in 0..cycles {
            let lanes = rng.lanes(csr_s.len(), pi);
            let want = csr_r.step(csr_s, &lanes).unwrap();
            let got = bit_r.step(bit_s, &lanes).unwrap();
            assert_eq!(got, want, "{phase}: cycle {cycle}");
        }
    };

    drive(
        &mut csr_sessions,
        &mut bit_sessions,
        &mut csr_runner,
        &mut bit_runner,
        &mut rng,
        4,
        "60 lanes",
    );
    for _ in 0..10 {
        csr_sessions.push(Session::new(&nn));
        bit_sessions.push(Session::new(&nn));
    }
    drive(
        &mut csr_sessions,
        &mut bit_sessions,
        &mut csr_runner,
        &mut bit_runner,
        &mut rng,
        4,
        "70 lanes",
    );
    // keep a scattered handful: lanes 0, 17, 59, 63, 69
    for keep in [(0usize, 0usize), (1, 17), (2, 59), (3, 63), (4, 69)] {
        csr_sessions.swap(keep.0, keep.1);
        bit_sessions.swap(keep.0, keep.1);
    }
    csr_sessions.truncate(5);
    bit_sessions.truncate(5);
    drive(
        &mut csr_sessions,
        &mut bit_sessions,
        &mut csr_runner,
        &mut bit_runner,
        &mut rng,
        4,
        "5 lanes",
    );

    // trajectories are identical down to state and cycle counts (lanes 63
    // and 69 joined after the first 4 cycles, so they carry 8, not 12)
    for (l, (a, b)) in csr_sessions.iter().zip(&bit_sessions).enumerate() {
        assert_eq!(a.state_bits(), b.state_bits(), "lane {l} state");
        assert_eq!(a.cycles(), b.cycles(), "lane {l} cycles");
        assert_eq!(a.cycles(), if l < 3 { 12 } else { 8 });
    }
}

#[test]
fn shape_errors_match_the_csr_runner() {
    let nl = c2nn_circuits::uart();
    let nn = compile(&nl, CompileOptions::with_l(4).with_passes(unmerged())).unwrap();
    let plan = BitplaneNn::from_compiled(&nn).unwrap();
    let pi = nn.num_primary_inputs;

    let mut bit_runner: BitplaneRunner<f32> = BitplaneRunner::new(&plan, Device::Serial);
    let mut sess = [Session::new(&nn)];
    assert!(bit_runner.step(&mut sess, &[]).is_err());
    assert!(bit_runner.step(&mut sess, &[vec![true; pi + 1]]).is_err());

    let mut sim = BitplaneSimulator::new(&plan, 2, Device::Serial);
    assert!(sim.step(&[vec![false; pi]]).is_err());
    assert!(sim.step(&[vec![false; pi + 1], vec![false; pi]]).is_err());
}
