//! The paper's §IV-A verification, in miniature: compiled networks must be
//! bit-identical to the reference gate-level simulator, for every circuit,
//! LUT size, device, dtype, and merge setting.

use c2nn_core::{compile, compile_as, CompileOptions, CompiledNn, PassId, PassSet, Simulator};
use c2nn_netlist::{Netlist, NetlistBuilder, WordOps};
use c2nn_refsim::CycleSim;
use c2nn_tensor::{Dense, Device};

fn adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("add");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let s = b.add_word(&a, &c);
    b.output_word(&s, "s");
    b.finish().unwrap()
}

fn counter(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("ctr");
    let clk = b.clock("clk");
    let en = b.input("en");
    let ld = b.input("ld");
    let dat = b.input_word("d", width);
    let q = b.fresh_word("q", width);
    let inc = b.inc_word(&q);
    let step = b.mux_word(en, &q, &inc);
    let next = b.mux_word(ld, &step, &dat);
    b.connect_ff_word(&next, &q, clk, None, None, 0, 0);
    b.output_word(&q, "q");
    b.finish().unwrap()
}

fn exhaustive_comb_check(nl: &Netlist, nn: &CompiledNn<f32>) {
    let n = nl.inputs.len();
    assert!(n <= 12);
    let mut sim = CycleSim::new(nl).unwrap();
    for x in 0..1u64 << n {
        let bits: Vec<bool> = (0..n).map(|j| x >> j & 1 == 1).collect();
        let want = sim.eval_comb(&bits);
        let got = nn.eval(&bits);
        assert_eq!(got, want, "x={x:b}");
    }
}

#[test]
fn adder_equivalent_across_l() {
    let nl = adder(4);
    for l in [2, 3, 4, 5, 7, 9, 11] {
        let nn = compile(&nl, CompileOptions::with_l(l)).unwrap();
        exhaustive_comb_check(&nl, &nn);
    }
}

#[test]
fn merge_preserves_function_and_halves_depth() {
    let nl = adder(6);
    let opts = CompileOptions::with_l(3);
    let merged = compile(&nl, opts).unwrap();
    let unmerged = compile(
        &nl,
        opts.with_passes(PassSet::all().without(PassId::LayerMerge)),
    )
    .unwrap();
    // function identical
    for x in [0u64, 1, 100, 3333, 4095] {
        let bits: Vec<bool> = (0..12).map(|j| x >> j & 1 == 1).collect();
        assert_eq!(merged.eval(&bits), unmerged.eval(&bits), "x={x}");
    }
    // Fig. 5: merged has D+1 layers, unmerged 2D
    let d = merged.num_layers() - 1;
    assert_eq!(unmerged.num_layers(), 2 * d, "unmerged layer count");
    assert!(d >= 2);
}

#[test]
fn sequential_counter_matches_reference_batched() {
    let nl = counter(6);
    let nn = compile(&nl, CompileOptions::with_l(4)).unwrap();
    assert_eq!(nn.state_bits(), 6);
    let batch = 8;
    let mut nn_sim = Simulator::new(&nn, batch, Device::Parallel);
    let mut refs: Vec<CycleSim> = (0..batch).map(|_| CycleSim::new(&nl).unwrap()).collect();
    let mut seed = 42u64;
    for cycle in 0..50 {
        let mut rows = Vec::with_capacity(batch);
        for _ in 0..batch {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let en = seed >> 20 & 1 == 1;
            let ld = seed >> 21 & 0b111 == 0; // occasional load
            let mut row = vec![en, ld];
            for j in 0..6 {
                row.push(seed >> (30 + j) & 1 == 1);
            }
            rows.push(row);
        }
        let x = Dense::<f32>::from_lanes(&rows);
        let y = nn_sim.step(&x);
        let ybits = y.to_lanes();
        for (lane, r) in refs.iter_mut().enumerate() {
            let want = r.step(&rows[lane]);
            assert_eq!(ybits[lane], want, "cycle {cycle} lane {lane}");
        }
    }
}

#[test]
fn integer_network_matches_float() {
    let nl = adder(4);
    let f = compile(&nl, CompileOptions::with_l(5)).unwrap();
    let i = compile_as::<i32>(&nl, CompileOptions::with_l(5)).unwrap();
    assert_eq!(f.connections(), i.connections());
    for x in 0..256u64 {
        let bits: Vec<bool> = (0..8).map(|j| x >> j & 1 == 1).collect();
        assert_eq!(f.eval(&bits), i.eval(&bits), "x={x}");
    }
}

#[test]
fn devices_agree() {
    let nl = counter(5);
    let nn = compile(&nl, CompileOptions::with_l(6)).unwrap();
    let batch = 16;
    let mut a = Simulator::new(&nn, batch, Device::Serial);
    let mut b = Simulator::new(&nn, batch, Device::Parallel);
    let mut seed = 9u64;
    for _ in 0..30 {
        let rows: Vec<Vec<bool>> = (0..batch)
            .map(|l| {
                seed = seed
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(l as u64);
                (0..7).map(|j| seed >> (13 + j) & 1 == 1).collect()
            })
            .collect();
        let x = Dense::<f32>::from_lanes(&rows);
        assert_eq!(a.step(&x).data(), b.step(&x).data());
    }
}

#[test]
fn verilog_pipeline_end_to_end() {
    let src = "
      module alu(input [1:0] op, input [3:0] a, input [3:0] b, output reg [3:0] y, output z);
        always @(*) begin
          case (op)
            2'd0: y = a + b;
            2'd1: y = a - b;
            2'd2: y = a & b;
            default: y = a | b;
          endcase
        end
        assign z = y == 4'd0;
      endmodule";
    let nl = c2nn_verilog::compile(src, "alu").unwrap();
    for l in [3, 7, 11] {
        let nn = compile(&nl, CompileOptions::with_l(l)).unwrap();
        exhaustive_comb_check(&nl, &nn);
    }
}

#[test]
fn stats_are_sane() {
    let nl = counter(8);
    let nn = compile(&nl, CompileOptions::with_l(4)).unwrap();
    assert!(nn.connections() > 0);
    assert!(nn.memory_bytes() > nn.connections() * 4);
    let s = nn.mean_sparsity();
    assert!(s > 0.5 && s <= 1.0, "sparsity {s}");
    assert!(nn.num_layers() >= 2);
    assert_eq!(nn.num_primary_inputs, 10); // en, ld, d[8]
    assert_eq!(nn.num_primary_outputs, 8);
}

#[test]
fn layer_count_shrinks_with_l() {
    // Fig. 6 top: layers ~ O((log2 L)^-1)
    let nl = adder(8);
    let l3 = compile(&nl, CompileOptions::with_l(3))
        .unwrap()
        .num_layers();
    let l11 = compile(&nl, CompileOptions::with_l(11))
        .unwrap()
        .num_layers();
    assert!(l11 < l3, "layers at L=11 ({l11}) < layers at L=3 ({l3})");
}

#[test]
fn connections_grow_with_l() {
    // Fig. 6 bottom: connections ~ O(2^L) (for circuits big enough to split)
    let nl = adder(8);
    let c3 = compile(&nl, CompileOptions::with_l(3))
        .unwrap()
        .connections();
    let c11 = compile(&nl, CompileOptions::with_l(11))
        .unwrap()
        .connections();
    assert!(
        c11 > c3,
        "connections at L=11 ({c11}) should exceed L=3 ({c3})"
    );
}

#[test]
fn serde_roundtrip() {
    let nl = adder(3);
    let nn = compile(&nl, CompileOptions::with_l(3)).unwrap();
    let json = nn.to_json_string();
    let back = CompiledNn::<f32>::from_json_str(&json).unwrap();
    for x in 0..64u64 {
        let bits: Vec<bool> = (0..6).map(|j| x >> j & 1 == 1).collect();
        assert_eq!(nn.eval(&bits), back.eval(&bits));
    }
}

#[test]
fn passthrough_only_circuit() {
    // depth-0 network: outputs are rewired inputs
    let mut b = NetlistBuilder::new("wires");
    let a = b.input_word("a", 3);
    b.output(a[2], "y0");
    b.output(a[0], "y1");
    let nl = b.finish().unwrap();
    let nn = compile(&nl, CompileOptions::with_l(4)).unwrap();
    assert_eq!(nn.eval(&[true, false, false]), vec![false, true]);
    assert_eq!(nn.eval(&[false, false, true]), vec![true, false]);
}

#[test]
fn constant_output_circuit() {
    let mut b = NetlistBuilder::new("k");
    let a = b.input("a");
    let one = b.one();
    let n = b.and2(a, one); // folds to a
    b.output(n, "y");
    b.output(one, "k");
    let nl = b.finish().unwrap();
    let nn = compile(&nl, CompileOptions::with_l(3)).unwrap();
    assert_eq!(nn.eval(&[false]), vec![false, true]);
    assert_eq!(nn.eval(&[true]), vec![true, true]);
}

#[test]
fn random_sequential_circuits_equivalent() {
    let mut seed = 0xfeedu64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for trial in 0..4 {
        let mut b = NetlistBuilder::new(format!("seq{trial}"));
        let clk = b.clock("clk");
        let ins = b.input_word("x", 4);
        let state = b.fresh_word("s", 5);
        let mut pool: Vec<_> = ins.iter().chain(&state).copied().collect();
        for _ in 0..30 {
            let i = pool[rng() as usize % pool.len()];
            let j = pool[rng() as usize % pool.len()];
            let k = pool[rng() as usize % pool.len()];
            let g = match rng() % 5 {
                0 => b.and2(i, j),
                1 => b.or2(i, j),
                2 => b.xor2(i, j),
                3 => b.mux(i, j, k),
                _ => b.not(i),
            };
            pool.push(g);
        }
        let next: Vec<_> = (0..5).map(|_| pool[rng() as usize % pool.len()]).collect();
        b.connect_ff_word(&next, &state, clk, None, None, 0, rng());
        for k in 0..3 {
            let o = pool[rng() as usize % pool.len()];
            b.output(o, &format!("y{k}"));
        }
        let nl = b.finish().unwrap();
        for l in [3, 6] {
            let nn = compile(&nl, CompileOptions::with_l(l)).unwrap();
            let mut nn_sim = Simulator::new(&nn, 1, Device::Serial);
            let mut r = CycleSim::new(&nl).unwrap();
            for cyc in 0..40 {
                let stim: Vec<bool> = (0..4).map(|_| rng() & 1 == 1).collect();
                let x = Dense::<f32>::from_lanes(std::slice::from_ref(&stim));
                let y = nn_sim.step(&x);
                assert_eq!(
                    y.to_lanes()[0],
                    r.step(&stim),
                    "trial {trial} L={l} cyc {cyc}"
                );
            }
        }
    }
}
