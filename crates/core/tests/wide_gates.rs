//! Tests for the paper's §V known-function extension: wide AND/OR/NAND/NOR
//! gates become single neurons instead of LUT trees, "the equivalent of
//! increasing L", reducing both node count and network depth.

use c2nn_core::{compile, CompileOptions};
use c2nn_netlist::{Netlist, NetlistBuilder, WordOps};
use c2nn_refsim::CycleSim;

fn wide_and_circuit(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new("wand");
    let x = b.input_word("x", n);
    let y = b.and_many(&x);
    b.output(y, "y");
    b.finish().unwrap()
}

#[test]
fn wide_and_collapses_to_two_layers() {
    // the paper's own example: an AND of a 9-bit vector at L=3
    let nl = wide_and_circuit(9);
    let base = compile(&nl, CompileOptions::with_l(3)).unwrap();
    let wide = compile(&nl, CompileOptions::with_l(3).with_wide_gates()).unwrap();
    assert!(
        base.num_layers() > 2,
        "L=3 tree must be deep: {}",
        base.num_layers()
    );
    assert_eq!(
        wide.num_layers(),
        2,
        "known-function AND is one threshold + one linear layer"
    );
    assert!(wide.connections() < base.connections());
    // equivalence on all 512 points
    for v in 0..512u64 {
        let bits: Vec<bool> = (0..9).map(|j| v >> j & 1 == 1).collect();
        assert_eq!(wide.eval(&bits), base.eval(&bits), "v={v:09b}");
        assert_eq!(wide.eval(&bits), vec![v == 511]);
    }
}

#[test]
fn all_wide_kinds_are_exact() {
    for kind in ["and", "or", "nand", "nor"] {
        let mut b = NetlistBuilder::new(kind);
        let x = b.input_word("x", 12);
        let y = match kind {
            "and" => b.and_many(&x),
            "or" => b.or_many(&x),
            "nand" => b.gate(c2nn_netlist::GateKind::Nand, x.clone()),
            _ => b.gate(c2nn_netlist::GateKind::Nor, x.clone()),
        };
        b.output(y, "y");
        let nl = b.finish().unwrap();
        let nn = compile(&nl, CompileOptions::with_l(4).with_wide_gates()).unwrap();
        let mut sim = CycleSim::new(&nl).unwrap();
        for v in [0u64, 1, 0xfff, 0xffe, 0xa5a, 0x800] {
            let bits: Vec<bool> = (0..12).map(|j| v >> j & 1 == 1).collect();
            assert_eq!(nn.eval(&bits), sim.eval_comb(&bits), "{kind} v={v:03x}");
        }
    }
}

#[test]
fn mixed_circuit_with_wide_gates_is_exact() {
    // wide gates embedded in surrounding logic, plus state
    let mut b = NetlistBuilder::new("mix");
    let clk = b.clock("clk");
    let x = b.input_word("x", 10);
    let all = b.and_many(&x);
    let any = b.or_many(&x);
    let q = b.fresh(Some("q"));
    let toggled = b.xor2(q, any);
    let gated = b.mux(all, toggled, x[0]);
    b.push_ff_raw(gated, q, clk, None, None, false, false);
    b.output(q, "q");
    let par = b.reduce_xor(&x);
    b.output(par, "p");
    let nl = b.finish().unwrap();

    for opts in [
        CompileOptions::with_l(3),
        CompileOptions::with_l(3).with_wide_gates(),
    ] {
        let nn = compile(&nl, opts).unwrap();
        let mut nn_sim = c2nn_core::Simulator::new(&nn, 1, c2nn_tensor::Device::Serial);
        let mut r = CycleSim::new(&nl).unwrap();
        let mut seed = 77u64;
        for cyc in 0..40 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bits: Vec<bool> = (0..10).map(|j| seed >> (20 + j) & 1 == 1).collect();
            let x = c2nn_tensor::Dense::<f32>::from_lanes(std::slice::from_ref(&bits));
            let got = nn_sim.step(&x).to_lanes().remove(0);
            assert_eq!(got, r.step(&bits), "wide={} cycle {cyc}", opts.wide_gates);
        }
    }
}

#[test]
fn wide_pass_reduces_depth_on_reduction_trees() {
    // 64-input AND-reduction: at L=3 the tree needs ~4 levels; wide = 1
    let nl = wide_and_circuit(64);
    let base = compile(&nl, CompileOptions::with_l(3)).unwrap();
    let wide = compile(&nl, CompileOptions::with_l(3).with_wide_gates()).unwrap();
    assert!(base.num_layers() >= 4);
    assert_eq!(wide.num_layers(), 2);
    // spot equivalence
    let mut sim = CycleSim::new(&nl).unwrap();
    let mut seed = 5u64;
    for _ in 0..20 {
        seed = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let bits: Vec<bool> = (0..64).map(|j| seed >> (j % 48) & 1 == 1).collect();
        assert_eq!(wide.eval(&bits), sim.eval_comb(&bits));
    }
    let ones = vec![true; 64];
    assert_eq!(wide.eval(&ones), vec![true]);
}

#[test]
fn narrow_gates_unaffected_by_flag() {
    // gates at or below L are mapped normally even with the flag on
    let mut b = NetlistBuilder::new("narrow");
    let x = b.input_word("x", 3);
    let y = b.and_many(&x);
    b.output(y, "y");
    let nl = b.finish().unwrap();
    let a = compile(&nl, CompileOptions::with_l(4)).unwrap();
    let w = compile(&nl, CompileOptions::with_l(4).with_wide_gates()).unwrap();
    assert_eq!(a.num_layers(), w.num_layers());
    assert_eq!(a.connections(), w.connections());
}
