//! Property tests for bit-plane packing: pack/unpack must be exact
//! inverses and lane-scatter must be exact for arbitrary feature widths
//! and batch sizes 1..=300 — including ragged batches whose last word is
//! only partially filled — and tail garbage must never leak into a valid
//! lane.

use c2nn_core::bitplane::BitTensor;
use proptest::prelude::*;

/// Derive lane bit vectors from a flat bool pool so shrinking stays
/// meaningful: lane `l`, feature `f` reads `bits[(l * features + f) % len]`.
fn lanes_from_pool(bits: &[bool], batch: usize, features: usize) -> Vec<Vec<bool>> {
    (0..batch)
        .map(|l| {
            (0..features)
                .map(|f| bits[(l * features + f) % bits.len()])
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, .. ProptestConfig::default() })]

    /// from_lanes → to_lanes is the identity for every width × batch,
    /// every bit pattern.
    #[test]
    fn pack_unpack_roundtrip(
        features in 1usize..48,
        batch in 1usize..=300,
        bits in proptest::collection::vec(any::<bool>(), 1..512),
    ) {
        let lanes = lanes_from_pool(&bits, batch, features);
        let t = BitTensor::from_lanes(&lanes);
        prop_assert_eq!(t.features(), features);
        prop_assert_eq!(t.batch(), batch);
        prop_assert_eq!(t.words_per_feature(), batch.div_ceil(64));
        prop_assert_eq!(t.to_lanes(), lanes);
    }

    /// Scattering single bits to arbitrary (feature, lane) coordinates —
    /// including overwrites — recovers exactly what a scalar shadow model
    /// holds, bit for bit.
    #[test]
    fn lane_scatter_matches_scalar_shadow(
        features in 1usize..24,
        batch in 1usize..=300,
        writes in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 0..200),
    ) {
        let mut t = BitTensor::zeros(features, batch);
        let mut shadow = vec![vec![false; features]; batch];
        for &(f, l, bit) in &writes {
            let f = f as usize % features;
            let l = l as usize % batch;
            t.set_bit(f, l, bit);
            shadow[l][f] = bit;
        }
        for (l, lane) in shadow.iter().enumerate() {
            for (f, &want) in lane.iter().enumerate() {
                prop_assert_eq!(t.get_bit(f, l), want, "feature {} lane {}", f, l);
            }
        }
        prop_assert_eq!(t.to_lanes(), shadow);
    }

    /// Garbage in the ragged tail (bits at and past `batch` in the last
    /// word of each plane) is invisible: after clobbering the raw words
    /// and rewriting only the valid lanes, unpack is still exact.
    #[test]
    fn ragged_tail_garbage_never_leaks(
        features in 1usize..24,
        batch in 1usize..=300,
        garbage in any::<u64>(),
        bits in proptest::collection::vec(any::<bool>(), 1..512),
    ) {
        let lanes = lanes_from_pool(&bits, batch, features);
        let mut t = BitTensor::from_lanes(&lanes);
        // clobber every word, then restore the valid lanes bit by bit
        t.data_mut().fill(garbage);
        for (l, lane) in lanes.iter().enumerate() {
            for (f, &bit) in lane.iter().enumerate() {
                t.set_bit(f, l, bit);
            }
        }
        prop_assert_eq!(t.to_lanes(), lanes);
        // the tail mask itself: exactly the valid lanes of the last word
        let r = batch % 64;
        let want = if r == 0 { !0u64 } else { (1u64 << r) - 1 };
        prop_assert_eq!(t.tail_mask(), want);
    }
}
