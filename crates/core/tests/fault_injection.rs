//! Measured fault-injection campaign against the runtime guard.
//!
//! A compiled network's exactness claim is protected at runtime by the
//! opt-in guard in `Simulator::try_step` (weight checksum + binary-activation
//! checks). This suite does not merely assert the mechanism exists — it
//! *measures* the detection rate over an exhaustive single-bit weight-flip
//! campaign and over random state upsets, and requires ≥ 99 % of
//! output-changing weight faults to be caught.

use c2nn_core::{compile_as, faults, CompileOptions, SimError, Simulator};
use c2nn_netlist::{Netlist, NetlistBuilder, WordOps};
use c2nn_tensor::{Dense, Device};

/// Deterministic RNG for campaign sampling (no external crates).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// 4-bit accumulator: `q += a` each cycle; outputs the register word.
/// Sequential, so the campaign exercises state feedback as well as logic.
fn acc4() -> Netlist {
    let mut b = NetlistBuilder::new("acc4");
    let clk = b.clock("clk");
    let a = b.input_word("a", 4);
    let q = b.fresh_word("q", 4);
    let next = b.add_word(&a, &q);
    b.connect_ff_word(&next, &q, clk, None, None, 0, 0);
    b.output_word(&q, "q");
    b.finish().unwrap()
}

/// Deterministic stimulus: `cycles` batches of `batch` lanes of 4-bit inputs.
fn stimuli(cycles: usize, batch: usize, seed: u64) -> Vec<Dense<f32>> {
    let mut s = seed;
    (0..cycles)
        .map(|_| {
            let lanes: Vec<Vec<bool>> = (0..batch)
                .map(|_| {
                    let r = splitmix64(&mut s);
                    (0..4).map(|i| r >> i & 1 == 1).collect()
                })
                .collect();
            Dense::from_lanes(&lanes)
        })
        .collect()
}

fn run_unguarded(nn: &c2nn_core::CompiledNn<f32>, stim: &[Dense<f32>]) -> Vec<Vec<Vec<bool>>> {
    let mut sim = Simulator::new(nn, stim[0].cols(), Device::Serial);
    stim.iter().map(|s| sim.step(s).to_lanes()).collect()
}

#[test]
fn guard_detects_all_output_changing_weight_flips() {
    let nn = compile_as::<f32>(&acc4(), CompileOptions::with_l(4)).unwrap();
    nn.validate().unwrap();
    let reference = nn.weight_checksum();
    let stim = stimuli(16, 4, 0xc2d1);
    let baseline = run_unguarded(&nn, &stim);

    let sites = faults::enumerate_sites(&nn);
    assert!(
        sites.len() > 100,
        "campaign too small: {} sites",
        sites.len()
    );
    // Exhaustive over all single-bit parameter faults.
    let mut output_changing = 0usize;
    let mut detected_changing = 0usize;
    let mut detected_total = 0usize;
    for &site in &sites {
        let mut bad = nn.clone();
        assert!(faults::inject(&mut bad, site));
        let changes_output = run_unguarded(&bad, &stim) != baseline;
        output_changing += changes_output as usize;

        let mut sim = Simulator::new(&bad, 4, Device::Serial);
        sim.enable_guard_with(reference);
        let caught = stim.iter().any(|s| sim.try_step(s).is_err());
        detected_total += caught as usize;
        if changes_output && caught {
            detected_changing += 1;
        }
    }
    assert!(
        output_changing > 0,
        "campaign never changed an output — stimulus too weak to measure anything"
    );
    let rate = detected_changing as f64 / output_changing as f64;
    println!(
        "weight-flip campaign: {} sites, {} output-changing, {} detected ({} overall) — rate {:.4}",
        sites.len(),
        output_changing,
        detected_changing,
        detected_total,
        rate
    );
    assert!(rate >= 0.99, "detection rate {rate:.4} below 99% floor");
    // The checksum makes detection exhaustive, not just ≥99%: every flip
    // alters the bit stream it hashes.
    assert_eq!(detected_total, sites.len());
}

#[test]
fn guard_detects_state_upsets_that_change_outputs() {
    let nn = compile_as::<f32>(&acc4(), CompileOptions::with_l(4)).unwrap();
    let stim = stimuli(8, 2, 0xfeed);
    let baseline = run_unguarded(&nn, &stim);

    let mut rng = 0x5eed_u64;
    let mut changing = 0usize;
    let mut caught_changing = 0usize;
    for _ in 0..200 {
        let feature = (splitmix64(&mut rng) % nn.state_bits() as u64) as usize;
        let lane = (splitmix64(&mut rng) % 2) as usize;
        let bit = (splitmix64(&mut rng) % 32) as u32;
        let upset_cycle = (splitmix64(&mut rng) % stim.len() as u64) as usize;

        // unguarded replay with the upset, to see whether outputs change
        let mut sim = Simulator::new(&nn, 2, Device::Serial);
        let mut outs = Vec::new();
        for (c, s) in stim.iter().enumerate() {
            if c == upset_cycle {
                assert!(sim.inject_state_bitflip(feature, lane, bit));
            }
            outs.push(sim.step(s).to_lanes());
        }
        let changes = outs != baseline;

        // guarded replay with the same upset
        let mut sim = Simulator::new(&nn, 2, Device::Serial);
        sim.enable_guard();
        let mut caught = false;
        for (c, s) in stim.iter().enumerate() {
            if c == upset_cycle {
                assert!(sim.inject_state_bitflip(feature, lane, bit));
            }
            if sim.try_step(s).is_err() {
                caught = true;
                break;
            }
        }
        changing += changes as usize;
        if changes && caught {
            caught_changing += 1;
        }
    }
    assert!(changing > 0, "no state upset changed an output");
    let rate = caught_changing as f64 / changing as f64;
    println!("state-upset campaign: {changing} output-changing, rate {rate:.4}");
    assert!(
        rate >= 0.99,
        "state upset detection rate {rate:.4} below 99% floor"
    );
}

#[test]
fn guard_reports_typed_errors() {
    let nn = compile_as::<f32>(&acc4(), CompileOptions::with_l(4)).unwrap();
    let reference = nn.weight_checksum();

    // corrupted weights → WeightsCorrupted before any state is committed
    let mut bad = nn.clone();
    faults::inject(
        &mut bad,
        faults::FaultSite::Weight {
            layer: 0,
            nnz: 0,
            bit: 0,
        },
    );
    let mut sim = Simulator::new(&bad, 1, Device::Serial);
    sim.enable_guard_with(reference);
    let x = Dense::from_lanes(&[vec![false; 4]]);
    match sim.try_step(&x) {
        Err(SimError::WeightsCorrupted { expected, got }) => {
            assert_eq!(expected, reference);
            assert_ne!(got, reference);
        }
        other => panic!("expected WeightsCorrupted, got {other:?}"),
    }
    assert_eq!(sim.cycles(), 0, "detected fault must not commit a cycle");

    // non-binary stimulus → NonBinary{stage: "input"}
    let mut sim = Simulator::new(&nn, 1, Device::Serial);
    sim.enable_guard();
    let mut x = Dense::from_lanes(&[vec![false; 4]]);
    x.set(2, 0, 0.5);
    match sim.try_step(&x) {
        Err(SimError::NonBinary {
            stage: "input",
            feature: 2,
            lane: 0,
            ..
        }) => {}
        other => panic!("expected NonBinary input, got {other:?}"),
    }

    // shape errors are typed, not panics
    let mut sim = Simulator::new(&nn, 2, Device::Serial);
    let narrow = Dense::from_lanes(&[vec![false; 3], vec![false; 3]]);
    assert_eq!(
        sim.try_step(&narrow),
        Err(SimError::InputWidth {
            expected: 4,
            got: 3
        })
    );
    let wrong_batch = Dense::from_lanes(&[vec![false; 4]]);
    assert_eq!(
        sim.try_step(&wrong_batch),
        Err(SimError::BatchMismatch {
            expected: 2,
            got: 1
        })
    );
}

#[test]
fn unguarded_and_guarded_agree_on_clean_runs() {
    let nn = compile_as::<f32>(&acc4(), CompileOptions::with_l(4)).unwrap();
    let stim = stimuli(32, 8, 7);
    let baseline = run_unguarded(&nn, &stim);
    let mut sim = Simulator::new(&nn, 8, Device::Serial);
    sim.enable_guard();
    let guarded: Vec<_> = stim
        .iter()
        .map(|s| sim.try_step(s).unwrap().to_lanes())
        .collect();
    assert_eq!(guarded, baseline);
}
