//! Property-based tests for the IR pass pipeline: on arbitrary random LUT
//! graphs, `monomial-cse` (and the passes around it) must never change the
//! network function.

use c2nn_boolfn::Lut;
use c2nn_core::ir::lower::lower;
use c2nn_core::ir::passes::{ConstantFold, DeadNeuronElim, LayerMerge, MonomialCse, Pass};
use c2nn_lutmap::{LutGraph, LutNode};
use proptest::prelude::*;

/// Build a random topologically-ordered LUT graph. Sharing fan-in between
/// nodes is likely (inputs drawn from a small signal pool), which is exactly
/// the situation monomial-cse exploits.
fn random_lut_graph(num_inputs: usize, num_nodes: usize, seed: u64) -> LutGraph {
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut nodes = Vec::with_capacity(num_nodes);
    for i in 0..num_nodes {
        let avail = num_inputs + i;
        let arity = 2 + (rng() % 2) as usize; // 2 or 3 inputs
        let arity = arity.min(avail);
        let mut inputs: Vec<u32> = (0..arity).map(|_| (rng() % avail as u64) as u32).collect();
        // LutGraph allows repeated inputs only through distinct signals;
        // dedup to keep arity == lut.inputs() honest
        inputs.sort_unstable();
        inputs.dedup();
        let lut = Lut::random(inputs.len() as u8, &mut rng);
        nodes.push(LutNode::table(inputs, lut));
    }
    let num_signals = num_inputs + num_nodes;
    let outputs: Vec<u32> = (0..3)
        .map(|_| (rng() % num_signals as u64) as u32)
        .collect();
    LutGraph {
        name: "prop".into(),
        num_inputs,
        nodes,
        outputs,
    }
}

fn outputs_match(g: &LutGraph, ir: &c2nn_core::NnGraph, seed: u64) -> Result<(), String> {
    let mut s = seed.wrapping_mul(0x2545f4914f6cdd1d) | 1;
    for _ in 0..24 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let bits: Vec<bool> = (0..g.num_inputs).map(|j| s >> (j % 60) & 1 == 1).collect();
        let want: Vec<i64> = g.eval(&bits).iter().map(|&b| b as i64).collect();
        let got = ir.eval(&bits);
        if got != want {
            return Err(format!("mismatch on {bits:?}: {got:?} != {want:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// `monomial-cse` alone never changes outputs.
    #[test]
    fn monomial_cse_preserves_outputs(
        seed in 1u64..u64::MAX,
        num_inputs in 2usize..7,
        num_nodes in 1usize..25,
    ) {
        let g = random_lut_graph(num_inputs, num_nodes, seed);
        let mut ir = lower(&g, num_nodes, num_inputs, g.outputs.len(), vec![], 3);
        prop_assert!(outputs_match(&g, &ir, seed).is_ok(), "lowering already wrong");
        MonomialCse.run(&mut ir);
        prop_assert_eq!(ir.check(), Ok(()));
        let res = outputs_match(&g, &ir, seed);
        prop_assert!(res.is_ok(), "cse changed the function: {:?}", res);
    }

    /// The full pipeline (fold → cse → dce → merge) never changes outputs.
    #[test]
    fn full_pipeline_preserves_outputs(
        seed in 1u64..u64::MAX,
        num_inputs in 2usize..6,
        num_nodes in 1usize..18,
    ) {
        let g = random_lut_graph(num_inputs, num_nodes, seed);
        let mut ir = lower(&g, num_nodes, num_inputs, g.outputs.len(), vec![], 3);
        let nnz_before = ir.metrics().nnz;
        ConstantFold.run(&mut ir);
        MonomialCse.run(&mut ir);
        DeadNeuronElim.run(&mut ir);
        prop_assert!(
            ir.metrics().nnz <= nnz_before,
            "optimization passes grew nnz: {} > {}", ir.metrics().nnz, nnz_before
        );
        LayerMerge.run(&mut ir);
        prop_assert_eq!(ir.check(), Ok(()));
        let res = outputs_match(&g, &ir, seed);
        prop_assert!(res.is_ok(), "pipeline changed the function: {:?}", res);
    }
}
