//! Batched simulation of compiled networks (stimulus parallelism).
//!
//! One forward pass evaluates `B` independent testbenches for one clock
//! cycle — the paper's key throughput lever: throughput (gates·cycles/s)
//! grows with `B` until the device saturates.
//!
//! All activation tensors are **feature-major** (`features × batch`, one
//! testbench per column; see `c2nn-tensor`), so the sparse kernels stream
//! contiguous batch vectors.
//!
//! ## Guarded vs. unguarded stepping
//!
//! [`Simulator::step`] is the unguarded hot path: it trusts that the model
//! passed [`CompiledNn::validate`] and that nothing corrupted memory since.
//! [`Simulator::try_step`] adds an **opt-in runtime guard**
//! ([`Simulator::enable_guard`]) exploiting the compiler's exactness
//! invariant: every activation of a valid run is exactly 0 or 1, so any
//! non-binary value is proof of corruption, and the weights are immutable
//! after compilation, so any change to their FNV-1a checksum is too. Each
//! guarded cycle re-verifies the weight checksum and checks inputs, outputs,
//! and next-state for binary-ness, turning silent exactness violations (a
//! flipped weight bit, a cosmic-ray state upset, an out-of-range stimulus)
//! into typed [`SimError`]s.

use crate::compile::CompiledNn;
use c2nn_tensor::{Dense, Device, Scalar};
use std::fmt;

/// A runtime simulation failure — every variant is evidence that either the
/// caller's tensors are malformed or the model/state memory was corrupted.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The network has no layers (rejected by `validate`, guarded here too).
    NoLayers,
    /// The input tensor's feature count does not match the network.
    InputWidth {
        /// width the network expects
        expected: usize,
        /// width the caller provided
        got: usize,
    },
    /// The input tensor's lane count does not match the simulator's batch.
    BatchMismatch {
        /// the simulator's batch size
        expected: usize,
        /// lanes the caller provided
        got: usize,
    },
    /// A resumable session carries a state vector of the wrong width for
    /// this network (it was created for a different model).
    StateWidth {
        /// state bits the network has
        expected: usize,
        /// state bits the session carries
        got: usize,
    },
    /// A guarded check found a value outside {0, 1} — exactness is broken.
    NonBinary {
        /// which tensor the value was found in: `"input"`, `"output"`, or
        /// `"state"`
        stage: &'static str,
        /// feature (row) index
        feature: usize,
        /// testbench (lane) index
        lane: usize,
        /// the offending value
        value: f64,
    },
    /// The per-cycle weight checksum no longer matches the reference taken
    /// when the guard was enabled: model memory was modified.
    WeightsCorrupted {
        /// checksum recorded at guard-enable time
        expected: u64,
        /// checksum of the weights as they are now
        got: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoLayers => write!(f, "network has no layers"),
            SimError::InputWidth { expected, got } => {
                write!(
                    f,
                    "input width mismatch: network expects {expected}, got {got}"
                )
            }
            SimError::BatchMismatch { expected, got } => {
                write!(
                    f,
                    "batch mismatch: simulator runs {expected} lanes, input has {got}"
                )
            }
            SimError::StateWidth { expected, got } => write!(
                f,
                "session state width mismatch: network has {expected} state bits, session \
                 carries {got} (created for a different model?)"
            ),
            SimError::NonBinary {
                stage,
                feature,
                lane,
                value,
            } => write!(
                f,
                "exactness violation: {stage}[feature {feature}, lane {lane}] = {value} \
                 is not 0 or 1"
            ),
            SimError::WeightsCorrupted { expected, got } => write!(
                f,
                "weight memory corrupted: checksum {got:#018x}, expected {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// FNV-1a over a stream of 64-bit words (weights and biases, bit-exact).
fn fnv1a_words(seed: u64, words: impl Iterator<Item = u64>) -> u64 {
    let mut h = seed;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

impl<T: Scalar> CompiledNn<T> {
    /// Bit-exact FNV-1a checksum over every weight and bias, in layer order.
    /// Any single-bit change to model memory changes this value.
    pub fn weight_checksum(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for layer in &self.layers {
            let (_, _, values) = layer.weights.raw();
            h = fnv1a_words(h, values.iter().map(|v| v.to_bits64()));
            h = fnv1a_words(h, layer.bias.iter().map(|v| v.to_bits64()));
        }
        h
    }

    /// Raw combinational forward pass: `x` is `(pi + state) × batch` of
    /// exact 0/1 values; result is `(po + state) × batch`.
    pub fn forward(&self, x: &Dense<T>, device: Device) -> Dense<T> {
        let mut scratch = (Dense::zeros(0, 0), Dense::zeros(0, 0));
        self.forward_with(x, device, &mut scratch).clone()
    }

    /// [`CompiledNn::forward`] with caller-owned ping-pong scratch buffers,
    /// avoiding all per-layer allocation. Returns a reference into the
    /// scratch pair (valid until the next call).
    ///
    /// A zero-layer network acts as the identity (the input is copied
    /// through unchanged) rather than panicking; [`CompiledNn::validate`]
    /// rejects such models before they reach simulation.
    pub fn forward_with<'s>(
        &self,
        x: &Dense<T>,
        device: Device,
        scratch: &'s mut (Dense<T>, Dense<T>),
    ) -> &'s Dense<T> {
        assert_eq!(x.rows(), self.in_width(), "input width mismatch");
        let (a, b) = scratch;
        if self.layers.is_empty() {
            a.resize_to(x.rows(), x.cols());
            a.data_mut().copy_from_slice(x.data());
            return &scratch.0;
        }
        self.layers[0].forward_into(x, device, a);
        let mut flip = false; // result currently in `a`
        for layer in &self.layers[1..] {
            if flip {
                layer.forward_into(b, device, a);
            } else {
                layer.forward_into(a, device, b);
            }
            flip = !flip;
        }
        if flip {
            &scratch.1
        } else {
            &scratch.0
        }
    }

    /// [`CompiledNn::forward_with`] with the panics replaced by typed
    /// errors: width mismatches and zero-layer networks come back as
    /// [`SimError`]s instead of aborting the process.
    pub fn try_forward_with<'s>(
        &self,
        x: &Dense<T>,
        device: Device,
        scratch: &'s mut (Dense<T>, Dense<T>),
    ) -> Result<&'s Dense<T>, SimError> {
        if self.layers.is_empty() {
            return Err(SimError::NoLayers);
        }
        if x.rows() != self.in_width() {
            return Err(SimError::InputWidth {
                expected: self.in_width(),
                got: x.rows(),
            });
        }
        Ok(self.forward_with(x, device, scratch))
    }

    /// Evaluate one combinational input assignment (bools in, bools out).
    /// For sequential circuits the input must include the state bits.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let x = Dense::from_lanes(&[inputs.to_vec()]);
        let y = self.forward(&x, Device::Serial);
        y.to_lanes().into_iter().next().unwrap_or_default()
    }

    /// [`CompiledNn::eval`] with typed errors instead of panics: a
    /// zero-layer network or a wrong-length input is reported, not fatal.
    pub fn try_eval(&self, inputs: &[bool]) -> Result<Vec<bool>, SimError> {
        if self.layers.is_empty() {
            return Err(SimError::NoLayers);
        }
        if inputs.len() != self.in_width() {
            return Err(SimError::InputWidth {
                expected: self.in_width(),
                got: inputs.len(),
            });
        }
        Ok(self.eval(inputs))
    }
}

/// A stateful batched simulator over a compiled network: `B` testbenches in
/// lockstep, state fed back between cycles (the paper's recurrent
/// connection over the flip-flop cut).
pub struct Simulator<'a, T> {
    nn: &'a CompiledNn<T>,
    /// `state_bits × B` current state (feature-major).
    state: Dense<T>,
    device: Device,
    batch: usize,
    cycles: u64,
    /// reusable input assembly and layer ping-pong buffers
    xbuf: Dense<T>,
    scratch: (Dense<T>, Dense<T>),
    /// reference weight checksum while the guard is armed
    guard: Option<u64>,
}

impl<'a, T: Scalar> Simulator<'a, T> {
    /// Create a simulator for `batch` parallel testbenches.
    pub fn new(nn: &'a CompiledNn<T>, batch: usize, device: Device) -> Self {
        let mut sim = Simulator {
            nn,
            state: Dense::zeros(nn.state_bits(), batch),
            device,
            batch,
            cycles: 0,
            xbuf: Dense::zeros(0, 0),
            scratch: (Dense::zeros(0, 0), Dense::zeros(0, 0)),
            guard: None,
        };
        sim.reset();
        sim
    }

    pub fn batch(&self) -> usize {
        self.batch
    }

    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    pub fn device(&self) -> Device {
        self.device
    }

    /// Arm the runtime guard, taking the current weights as the trusted
    /// reference. Subsequent [`Simulator::try_step`] calls re-verify the
    /// checksum and check all activations for binary-ness each cycle.
    pub fn enable_guard(&mut self) {
        self.guard = Some(self.nn.weight_checksum());
    }

    /// Arm the runtime guard against an externally supplied reference
    /// checksum (e.g. recorded at compile time and stored with the model),
    /// so corruption that happened *before* simulator construction is
    /// caught too.
    pub fn enable_guard_with(&mut self, reference_checksum: u64) {
        self.guard = Some(reference_checksum);
    }

    /// Disarm the runtime guard; `try_step` reverts to shape checks only.
    pub fn disable_guard(&mut self) {
        self.guard = None;
    }

    /// Whether the runtime guard is armed.
    pub fn guard_enabled(&self) -> bool {
        self.guard.is_some()
    }

    /// Current state as per-lane bit vectors.
    pub fn state_lanes(&self) -> Vec<Vec<bool>> {
        self.state.to_lanes()
    }

    /// Width of the state vector (flip-flop cut bits).
    pub fn state_width(&self) -> usize {
        self.nn.state_bits()
    }

    /// Current state as per-lane raw scalar vectors (column extraction from
    /// the feature-major state tensor). Exists for the session layer.
    pub(crate) fn state_lanes_raw(&self) -> Vec<Vec<T>> {
        (0..self.batch)
            .map(|l| {
                (0..self.state.rows())
                    .map(|f| self.state.get(f, l))
                    .collect()
            })
            .collect()
    }

    /// Overwrite per-lane state columns from an iterator of state slices
    /// (one per lane, lane order; widths pre-validated by the caller).
    pub(crate) fn load_lane_states<'s>(&mut self, lanes: impl Iterator<Item = &'s [T]>) {
        for (l, lane) in lanes.enumerate() {
            for (f, &v) in lane.iter().enumerate() {
                self.state.set(f, l, v);
            }
        }
    }

    /// Reset all testbenches to the power-on state.
    pub fn reset(&mut self) {
        self.state = Dense::zeros(self.nn.state_bits(), self.batch);
        for (i, &b) in self.nn.state_init.iter().enumerate() {
            if b {
                for l in 0..self.batch {
                    self.state.set(i, l, T::ONE);
                }
            }
        }
        self.cycles = 0;
    }

    /// One clock cycle for the whole batch: `inputs` is
    /// `num_primary_inputs × B` feature-major; returns
    /// `num_primary_outputs × B`.
    ///
    /// This is the unguarded hot path (shape asserts only). Use
    /// [`Simulator::try_step`] for typed errors and the opt-in corruption
    /// guard.
    pub fn step(&mut self, inputs: &Dense<T>) -> Dense<T> {
        let pi = self.nn.num_primary_inputs;
        let po = self.nn.num_primary_outputs;
        let s = self.nn.state_bits();
        assert_eq!(inputs.cols(), self.batch, "batch mismatch");
        assert_eq!(inputs.rows(), pi, "primary-input width mismatch");
        // x = [inputs ; state] — contiguous block copies in feature-major
        self.xbuf.resize_to(pi + s, self.batch);
        self.xbuf.data_mut()[..pi * self.batch].copy_from_slice(inputs.data());
        self.xbuf.data_mut()[pi * self.batch..].copy_from_slice(self.state.data());
        let y = self
            .nn
            .forward_with(&self.xbuf, self.device, &mut self.scratch);
        debug_assert_eq!(y.rows(), po + s);
        // split [outputs ; next state]
        let mut out = Dense::zeros(po, self.batch);
        out.data_mut().copy_from_slice(&y.data()[..po * self.batch]);
        self.state
            .data_mut()
            .copy_from_slice(&y.data()[po * self.batch..]);
        self.cycles += 1;
        out
    }

    /// [`Simulator::step`] with typed errors, plus — when
    /// [`Simulator::enable_guard`] is armed — per-cycle self-checking:
    ///
    /// 1. the weight checksum must still match the reference,
    /// 2. every input value must be exactly 0 or 1,
    /// 3. every output and next-state value must be exactly 0 or 1.
    ///
    /// Any violation aborts the cycle *before* state is committed (for
    /// checks 1–2) or after computing it (check 3), so a detected fault
    /// never silently propagates into subsequent cycles' results being
    /// reported as trustworthy.
    pub fn try_step(&mut self, inputs: &Dense<T>) -> Result<Dense<T>, SimError> {
        let pi = self.nn.num_primary_inputs;
        if self.nn.layers.is_empty() {
            return Err(SimError::NoLayers);
        }
        if inputs.cols() != self.batch {
            return Err(SimError::BatchMismatch {
                expected: self.batch,
                got: inputs.cols(),
            });
        }
        if inputs.rows() != pi {
            return Err(SimError::InputWidth {
                expected: pi,
                got: inputs.rows(),
            });
        }
        if let Some(reference) = self.guard {
            let now = self.nn.weight_checksum();
            if now != reference {
                return Err(SimError::WeightsCorrupted {
                    expected: reference,
                    got: now,
                });
            }
            check_binary(inputs, "input")?;
            // the *current* state is consumed by this cycle, so an upset that
            // happened since the last step must be caught before the forward
            // pass launders it back into binary values
            check_binary(&self.state, "state")?;
        }
        let out = self.step(inputs);
        if self.guard.is_some() {
            check_binary(&out, "output")?;
            check_binary(&self.state, "state")?;
        }
        Ok(out)
    }

    /// Run a whole stimulus tensor: `stimuli[c]` is the batch input of
    /// cycle `c`. Returns one output batch per cycle.
    pub fn run(&mut self, stimuli: &[Dense<T>]) -> Vec<Dense<T>> {
        stimuli.iter().map(|s| self.step(s)).collect()
    }

    /// [`Simulator::run`] through [`Simulator::try_step`]: stops at the
    /// first fault, returning the cycle index alongside the error.
    pub fn try_run(&mut self, stimuli: &[Dense<T>]) -> Result<Vec<Dense<T>>, (usize, SimError)> {
        stimuli
            .iter()
            .enumerate()
            .map(|(c, s)| self.try_step(s).map_err(|e| (c, e)))
            .collect()
    }

    /// Mutable access to the raw state tensor — exists for fault-injection
    /// experiments (see [`crate::faults`]); normal users never need it.
    pub fn state_data_mut(&mut self) -> &mut [T] {
        self.state.data_mut()
    }
}

/// Check every element of a feature-major tensor is exactly 0 or 1.
fn check_binary<T: Scalar>(t: &Dense<T>, stage: &'static str) -> Result<(), SimError> {
    let cols = t.cols().max(1);
    for (i, &v) in t.data().iter().enumerate() {
        if v != T::ZERO && v != T::ONE {
            return Err(SimError::NonBinary {
                stage,
                feature: i / cols,
                lane: i % cols,
                value: v.to_f64(),
            });
        }
    }
    Ok(())
}

/// Build a feature-major batched input tensor from per-testbench bit
/// vectors (`rows[l]` = lane `l`'s inputs).
pub fn batch_from_bits<T: Scalar>(rows: &[Vec<bool>]) -> Dense<T> {
    Dense::from_lanes(rows)
}
