//! Batched simulation of compiled networks (stimulus parallelism).
//!
//! One forward pass evaluates `B` independent testbenches for one clock
//! cycle — the paper's key throughput lever: throughput (gates·cycles/s)
//! grows with `B` until the device saturates.
//!
//! All activation tensors are **feature-major** (`features × batch`, one
//! testbench per column; see `c2nn-tensor`), so the sparse kernels stream
//! contiguous batch vectors.

use crate::compile::CompiledNn;
use c2nn_tensor::{Dense, Device, Scalar};

impl<T: Scalar> CompiledNn<T> {
    /// Raw combinational forward pass: `x` is `(pi + state) × batch` of
    /// exact 0/1 values; result is `(po + state) × batch`.
    pub fn forward(&self, x: &Dense<T>, device: Device) -> Dense<T> {
        let mut scratch = (Dense::zeros(0, 0), Dense::zeros(0, 0));
        self.forward_with(x, device, &mut scratch).clone()
    }

    /// [`CompiledNn::forward`] with caller-owned ping-pong scratch buffers,
    /// avoiding all per-layer allocation. Returns a reference into the
    /// scratch pair (valid until the next call).
    pub fn forward_with<'s>(
        &self,
        x: &Dense<T>,
        device: Device,
        scratch: &'s mut (Dense<T>, Dense<T>),
    ) -> &'s Dense<T> {
        assert_eq!(x.rows(), self.in_width(), "input width mismatch");
        assert!(!self.layers.is_empty(), "compiled network has no layers");
        let (a, b) = scratch;
        self.layers[0].forward_into(x, device, a);
        let mut flip = false; // result currently in `a`
        for layer in &self.layers[1..] {
            if flip {
                layer.forward_into(b, device, a);
            } else {
                layer.forward_into(a, device, b);
            }
            flip = !flip;
        }
        if flip {
            &scratch.1
        } else {
            &scratch.0
        }
    }

    /// Evaluate one combinational input assignment (bools in, bools out).
    /// For sequential circuits the input must include the state bits.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let x = Dense::from_lanes(&[inputs.to_vec()]);
        let y = self.forward(&x, Device::Serial);
        y.to_lanes().into_iter().next().unwrap()
    }
}

/// A stateful batched simulator over a compiled network: `B` testbenches in
/// lockstep, state fed back between cycles (the paper's recurrent
/// connection over the flip-flop cut).
pub struct Simulator<'a, T> {
    nn: &'a CompiledNn<T>,
    /// `state_bits × B` current state (feature-major).
    state: Dense<T>,
    device: Device,
    batch: usize,
    cycles: u64,
    /// reusable input assembly and layer ping-pong buffers
    xbuf: Dense<T>,
    scratch: (Dense<T>, Dense<T>),
}

impl<'a, T: Scalar> Simulator<'a, T> {
    /// Create a simulator for `batch` parallel testbenches.
    pub fn new(nn: &'a CompiledNn<T>, batch: usize, device: Device) -> Self {
        let mut sim = Simulator {
            nn,
            state: Dense::zeros(nn.state_bits(), batch),
            device,
            batch,
            cycles: 0,
            xbuf: Dense::zeros(0, 0),
            scratch: (Dense::zeros(0, 0), Dense::zeros(0, 0)),
        };
        sim.reset();
        sim
    }

    pub fn batch(&self) -> usize {
        self.batch
    }

    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    pub fn device(&self) -> Device {
        self.device
    }

    /// Current state as per-lane bit vectors.
    pub fn state_lanes(&self) -> Vec<Vec<bool>> {
        self.state.to_lanes()
    }

    /// Reset all testbenches to the power-on state.
    pub fn reset(&mut self) {
        self.state = Dense::zeros(self.nn.state_bits(), self.batch);
        for (i, &b) in self.nn.state_init.iter().enumerate() {
            if b {
                for l in 0..self.batch {
                    self.state.set(i, l, T::ONE);
                }
            }
        }
        self.cycles = 0;
    }

    /// One clock cycle for the whole batch: `inputs` is
    /// `num_primary_inputs × B` feature-major; returns
    /// `num_primary_outputs × B`.
    pub fn step(&mut self, inputs: &Dense<T>) -> Dense<T> {
        let pi = self.nn.num_primary_inputs;
        let po = self.nn.num_primary_outputs;
        let s = self.nn.state_bits();
        assert_eq!(inputs.cols(), self.batch, "batch mismatch");
        assert_eq!(inputs.rows(), pi, "primary-input width mismatch");
        // x = [inputs ; state] — contiguous block copies in feature-major
        self.xbuf.resize_to(pi + s, self.batch);
        self.xbuf.data_mut()[..pi * self.batch].copy_from_slice(inputs.data());
        self.xbuf.data_mut()[pi * self.batch..].copy_from_slice(self.state.data());
        let y = self.nn.forward_with(&self.xbuf, self.device, &mut self.scratch);
        debug_assert_eq!(y.rows(), po + s);
        // split [outputs ; next state]
        let mut out = Dense::zeros(po, self.batch);
        out.data_mut()
            .copy_from_slice(&y.data()[..po * self.batch]);
        self.state
            .data_mut()
            .copy_from_slice(&y.data()[po * self.batch..]);
        self.cycles += 1;
        out
    }

    /// Run a whole stimulus tensor: `stimuli[c]` is the batch input of
    /// cycle `c`. Returns one output batch per cycle.
    pub fn run(&mut self, stimuli: &[Dense<T>]) -> Vec<Dense<T>> {
        stimuli.iter().map(|s| self.step(s)).collect()
    }
}

/// Build a feature-major batched input tensor from per-testbench bit
/// vectors (`rows[l]` = lane `l`'s inputs).
pub fn batch_from_bits<T: Scalar>(rows: &[Vec<bool>]) -> Dense<T> {
    Dense::from_lanes(rows)
}
