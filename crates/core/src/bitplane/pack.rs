//! Bit-plane stimulus packing.
//!
//! The pooled-CSR path spends one scalar lane (an `f32`) per stimulus bit.
//! A [`BitTensor`] instead packs 64 stimuli into every machine word: it is
//! the same feature-major layout as `Dense` — feature `f` of lane `l` — but
//! lane `l` lives in bit `l % 64` of word `f * W + l / 64`, where
//! `W = ceil(batch / 64)` words hold one feature's plane.
//!
//! Bits past `batch` in a feature's last word ("the ragged tail") are
//! *unspecified*. Every kernel in [`super::exec`] is lane-wise (AND, OR,
//! XOR, and per-bit ripple-carry popcount counters), so tail garbage can
//! never leak into a valid lane; the unpack paths here simply never read
//! past `batch`.

/// A feature-major binary matrix with 64 stimulus lanes per word.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitTensor {
    features: usize,
    batch: usize,
    /// Words per feature plane: `ceil(batch / 64)`.
    words: usize,
    data: Vec<u64>,
}

impl BitTensor {
    /// An all-zero tensor of `features × batch` bits.
    pub fn zeros(features: usize, batch: usize) -> Self {
        let words = batch.div_ceil(64);
        BitTensor {
            features,
            batch,
            words,
            data: vec![0; features * words],
        }
    }

    /// Number of features (rows).
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of stimulus lanes (columns).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Words per feature plane (`ceil(batch / 64)`).
    pub fn words_per_feature(&self) -> usize {
        self.words
    }

    /// The backing words, feature-major.
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Mutable backing words, feature-major.
    pub fn data_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// The `W` words of feature `f`'s plane.
    pub fn feature_words(&self, f: usize) -> &[u64] {
        &self.data[f * self.words..(f + 1) * self.words]
    }

    /// Mutable plane of feature `f`.
    pub fn feature_words_mut(&mut self, f: usize) -> &mut [u64] {
        &mut self.data[f * self.words..(f + 1) * self.words]
    }

    /// Reshape in place, reusing the allocation. Contents become
    /// unspecified (callers overwrite every plane they read).
    pub fn resize_to(&mut self, features: usize, batch: usize) {
        self.features = features;
        self.batch = batch;
        self.words = batch.div_ceil(64);
        self.data.resize(features * self.words, 0);
    }

    /// Bit of feature `f`, lane `l`.
    pub fn get_bit(&self, f: usize, l: usize) -> bool {
        debug_assert!(f < self.features && l < self.batch);
        self.data[f * self.words + l / 64] >> (l % 64) & 1 == 1
    }

    /// Set or clear the bit of feature `f`, lane `l`.
    pub fn set_bit(&mut self, f: usize, l: usize, bit: bool) {
        debug_assert!(f < self.features && l < self.batch);
        let w = &mut self.data[f * self.words + l / 64];
        let mask = 1u64 << (l % 64);
        if bit {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Mask selecting the valid lanes of the last word of each plane
    /// (`!0` when the batch fills its words exactly).
    pub fn tail_mask(&self) -> u64 {
        match self.batch % 64 {
            0 => !0,
            r => (1u64 << r) - 1,
        }
    }

    /// Adopt pre-packed backing words (e.g. decoded straight off the
    /// binary wire) without copying. Returns `None` when `data.len()`
    /// does not equal `features * ceil(batch / 64)`. Ragged tail bits are
    /// taken as-is; callers that need the canonical zero-tail form run
    /// [`BitTensor::mask_tails`] afterwards.
    pub fn from_words(features: usize, batch: usize, data: Vec<u64>) -> Option<Self> {
        let words = batch.div_ceil(64);
        if features.checked_mul(words)? != data.len() {
            return None;
        }
        Some(BitTensor {
            features,
            batch,
            words,
            data,
        })
    }

    /// Zero the ragged tail bits of every feature plane, making the
    /// contents canonical (equal tensors compare equal word-for-word; the
    /// wire codecs require this form).
    pub fn mask_tails(&mut self) {
        let mask = self.tail_mask();
        if mask == !0 || self.words == 0 {
            return;
        }
        for f in 0..self.features {
            self.data[f * self.words + self.words - 1] &= mask;
        }
    }

    /// Pack per-lane bit vectors (`lanes[l][f]`, the same shape
    /// `Dense::from_lanes` takes): `lanes.len()` is the batch, every lane
    /// carries one bit per feature.
    pub fn from_lanes(lanes: &[Vec<bool>]) -> Self {
        let batch = lanes.len();
        let features = lanes.first().map_or(0, Vec::len);
        let mut t = BitTensor::zeros(features, batch);
        for (l, lane) in lanes.iter().enumerate() {
            debug_assert_eq!(lane.len(), features);
            for (f, &bit) in lane.iter().enumerate() {
                if bit {
                    t.data[f * t.words + l / 64] |= 1 << (l % 64);
                }
            }
        }
        t
    }

    /// Inverse of [`BitTensor::from_lanes`]: per-lane bit vectors. Never
    /// reads the ragged tail.
    pub fn to_lanes(&self) -> Vec<Vec<bool>> {
        (0..self.batch)
            .map(|l| (0..self.features).map(|f| self.get_bit(f, l)).collect())
            .collect()
    }
}
