//! The bit-plane execution backend: stimulus parallelism at one bit per
//! lane instead of one scalar per lane.
//!
//! The pooled-CSR path realizes the paper's batching by making every
//! stimulus a dense `f32` column. This module legalizes the same compiled
//! network one step further: every binary signal becomes a *plane* of 64
//! stimuli per machine word, and every neuron becomes the cheapest word
//! op that computes it — AND/OR/NAND/NOR for threshold rows whose decision
//! boundary separates a gate subset (unit weights are the common case, but
//! the classifier is weight-aware and recovers gates from non-±1 rows
//! too), XOR for 0/1-valued linear rows (a row that is always 0/1 equals
//! its own parity), and an exact bit-sliced popcount comparator for
//! anything else, chosen by modeled word-op cost. One `u64` AND advances
//! 64 testbenches one gate.
//!
//! Pipeline: [`BitplaneNn::from_compiled`] (legalize) → [`BitplaneNn::forward_with`]
//! (execute, sharded on the shared worker pool) → [`BitplaneSimulator`] /
//! [`BitplaneRunner`] (cycle drivers matching the CSR backend's
//! `Simulator` / `SessionRunner`). Compile for it with
//! [`compile_bitplane`](crate::compile_bitplane) (drops the layer-merge
//! pass so the unmerged pipeline legalizes popcount-free), or pick it at
//! the CLI with `--backend bitplane` / `--backend auto` — the `c2nn-hal`
//! backend registry serves it through the same `Backend` trait as the
//! scalar and pooled-CSR engines.
//!
//! Exactness contract: bit-exact with the CSR backend for every network
//! the compiler produces (enforced by the differential lockstep suite in
//! `tests/lockstep_bitplane.rs`). Hand-built models are accepted as long
//! as their weights are integral *and* their intermediate linear rows are
//! 0/1-valued on binary inputs — the same binary-signal domain the scalar
//! guard (`Simulator::enable_guard`) checks for the CSR path.

mod exec;
mod pack;
mod plan;
mod sim;

pub use exec::BitplaneScratch;
pub use pack::BitTensor;
pub use plan::{BitLayer, BitplaneError, BitplaneNn, OpCensus, RowClassCensus, RowOp};
pub use sim::{BitplaneRunner, BitplaneSimulator};
