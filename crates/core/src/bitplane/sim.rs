//! Cycle-accurate drivers for the bit-plane backend, mirroring the CSR
//! path's [`Simulator`](crate::Simulator) (fixed batch) and
//! [`SessionRunner`](crate::SessionRunner) (resumable lanes) so either
//! backend can serve the same callers.

use super::exec::BitplaneScratch;
use super::pack::BitTensor;
use super::plan::BitplaneNn;
use crate::session::Session;
use crate::sim::SimError;
use c2nn_tensor::{Device, Scalar};

/// A fixed-batch sequential simulator over a bit-plane program: `batch`
/// testbenches advance one clock per [`step`](BitplaneSimulator::step),
/// 64 of them per machine word.
pub struct BitplaneSimulator<'a> {
    nn: &'a BitplaneNn,
    state: BitTensor,
    batch: usize,
    cycles: u64,
    device: Device,
    xbuf: BitTensor,
    scratch: BitplaneScratch,
}

impl<'a> BitplaneSimulator<'a> {
    /// A simulator over `nn` with `batch` lanes, all at the power-on state.
    pub fn new(nn: &'a BitplaneNn, batch: usize, device: Device) -> Self {
        let mut state = BitTensor::zeros(nn.state_bits(), batch);
        for (f, &init) in nn.state_init.iter().enumerate() {
            if init {
                state.feature_words_mut(f).fill(!0);
            }
        }
        BitplaneSimulator {
            nn,
            state,
            batch,
            cycles: 0,
            device,
            xbuf: BitTensor::zeros(0, 0),
            scratch: BitplaneScratch::default(),
        }
    }

    /// The program this simulator runs.
    pub fn nn(&self) -> &BitplaneNn {
        self.nn
    }

    /// Lane count.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current flip-flop values per lane.
    pub fn state_lanes(&self) -> Vec<Vec<bool>> {
        self.state.to_lanes()
    }

    /// Advance one clock: `inputs[l]` is lane `l`'s primary-input bits.
    /// Returns the primary outputs per lane.
    pub fn step(&mut self, inputs: &[Vec<bool>]) -> Result<Vec<Vec<bool>>, SimError> {
        let pi = self.nn.num_primary_inputs;
        if self.nn.layers.is_empty() {
            return Err(SimError::NoLayers);
        }
        if inputs.len() != self.batch {
            return Err(SimError::BatchMismatch {
                expected: self.batch,
                got: inputs.len(),
            });
        }
        for lane in inputs {
            if lane.len() != pi {
                return Err(SimError::InputWidth {
                    expected: pi,
                    got: lane.len(),
                });
            }
        }
        let x = BitTensor::from_lanes(inputs);
        let mut packed = BitTensor::zeros(0, 0);
        std::mem::swap(&mut packed, &mut self.xbuf);
        self.pack_inputs(&x, &mut packed);
        let outputs;
        {
            let y = self
                .nn
                .forward_with(&packed, self.device, &mut self.scratch);
            let po = self.nn.num_primary_outputs;
            outputs = (0..self.batch)
                .map(|l| (0..po).map(|f| y.get_bit(f, l)).collect())
                .collect();
            Self::scatter_state(self.nn, y, &mut self.state);
        }
        self.xbuf = packed;
        self.cycles += 1;
        Ok(outputs)
    }

    /// The zero-copy hot path: `inputs` is already packed
    /// (`num_primary_inputs × batch`); outputs land in `out`
    /// (`num_primary_outputs × batch`, resized in place). Same semantics
    /// as [`step`](BitplaneSimulator::step), without the bit-vector
    /// conversion at either end.
    pub fn step_packed_into(
        &mut self,
        inputs: &BitTensor,
        out: &mut BitTensor,
    ) -> Result<(), SimError> {
        let pi = self.nn.num_primary_inputs;
        if self.nn.layers.is_empty() {
            return Err(SimError::NoLayers);
        }
        if inputs.batch() != self.batch {
            return Err(SimError::BatchMismatch {
                expected: self.batch,
                got: inputs.batch(),
            });
        }
        if inputs.features() != pi {
            return Err(SimError::InputWidth {
                expected: pi,
                got: inputs.features(),
            });
        }
        let mut packed = BitTensor::zeros(0, 0);
        std::mem::swap(&mut packed, &mut self.xbuf);
        self.pack_inputs(inputs, &mut packed);
        {
            let y = self
                .nn
                .forward_with(&packed, self.device, &mut self.scratch);
            let po = self.nn.num_primary_outputs;
            let w = y.words_per_feature();
            out.resize_to(po, self.batch);
            out.data_mut().copy_from_slice(&y.data()[..po * w]);
            Self::scatter_state(self.nn, y, &mut self.state);
        }
        self.xbuf = packed;
        self.cycles += 1;
        Ok(())
    }

    /// Assemble `[inputs ; state]` into `packed`.
    fn pack_inputs(&self, inputs: &BitTensor, packed: &mut BitTensor) {
        let pi = self.nn.num_primary_inputs;
        let s = self.nn.state_bits();
        packed.resize_to(pi + s, self.batch);
        let w = packed.words_per_feature();
        debug_assert_eq!(inputs.words_per_feature(), w);
        packed.data_mut()[..pi * w].copy_from_slice(inputs.data());
        packed.data_mut()[pi * w..].copy_from_slice(self.state.data());
    }

    /// Copy the next-state planes (after the outputs) back into `state`.
    fn scatter_state(nn: &BitplaneNn, y: &BitTensor, state: &mut BitTensor) {
        let po = nn.num_primary_outputs;
        let s = nn.state_bits();
        let w = y.words_per_feature();
        debug_assert_eq!(y.features(), po + s);
        state
            .data_mut()
            .copy_from_slice(&y.data()[po * w..(po + s) * w]);
    }
}

/// Steps arbitrary collections of [`Session`]s through a bit-plane
/// program — the packed-backend twin of
/// [`SessionRunner`](crate::SessionRunner), with identical shape checks
/// and per-lane semantics, so the serve scheduler can swap backends
/// without touching session bookkeeping.
pub struct BitplaneRunner<'a, T> {
    nn: &'a BitplaneNn,
    device: Device,
    xbuf: BitTensor,
    scratch: BitplaneScratch,
    _scalar: std::marker::PhantomData<T>,
}

impl<'a, T: Scalar> BitplaneRunner<'a, T> {
    /// A runner over `nn` executing on `device`.
    pub fn new(nn: &'a BitplaneNn, device: Device) -> Self {
        BitplaneRunner {
            nn,
            device,
            xbuf: BitTensor::zeros(0, 0),
            scratch: BitplaneScratch::default(),
            _scalar: std::marker::PhantomData,
        }
    }

    /// The program this runner executes.
    pub fn nn(&self) -> &BitplaneNn {
        self.nn
    }

    /// Advance every session one clock cycle in lockstep; same contract as
    /// [`SessionRunner::step`](crate::SessionRunner::step) — the batch
    /// composition may change freely between calls.
    pub fn step(
        &mut self,
        sessions: &mut [Session<T>],
        inputs: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>, SimError> {
        let pi = self.nn.num_primary_inputs;
        let po = self.nn.num_primary_outputs;
        let s = self.nn.state_bits();
        let b = sessions.len();
        if self.nn.layers.is_empty() {
            return Err(SimError::NoLayers);
        }
        if inputs.len() != b {
            return Err(SimError::BatchMismatch {
                expected: b,
                got: inputs.len(),
            });
        }
        for lane in inputs {
            if lane.len() != pi {
                return Err(SimError::InputWidth {
                    expected: pi,
                    got: lane.len(),
                });
            }
        }
        for sess in sessions.iter() {
            if sess.state_raw().len() != s {
                return Err(SimError::StateWidth {
                    expected: s,
                    got: sess.state_raw().len(),
                });
            }
        }
        if b == 0 {
            return Ok(Vec::new());
        }
        self.xbuf.resize_to(pi + s, b);
        self.xbuf.data_mut().fill(0);
        for (l, lane) in inputs.iter().enumerate() {
            for (f, &bit) in lane.iter().enumerate() {
                if bit {
                    self.xbuf.set_bit(f, l, true);
                }
            }
        }
        for (l, sess) in sessions.iter().enumerate() {
            for (f, &v) in sess.state_raw().iter().enumerate() {
                if v == T::ONE {
                    self.xbuf.set_bit(pi + f, l, true);
                }
            }
        }
        let y = self
            .nn
            .forward_with(&self.xbuf, self.device, &mut self.scratch);
        debug_assert_eq!(y.features(), po + s);
        let outputs = (0..b)
            .map(|l| (0..po).map(|f| y.get_bit(f, l)).collect())
            .collect();
        for (l, sess) in sessions.iter_mut().enumerate() {
            for (f, v) in sess.state_raw_mut().iter_mut().enumerate() {
                *v = if y.get_bit(po + f, l) {
                    T::ONE
                } else {
                    T::ZERO
                };
            }
            sess.bump_cycles();
        }
        Ok(outputs)
    }

    /// The zero-copy twin of [`step`](BitplaneRunner::step): `inputs` is
    /// already packed (`num_primary_inputs × sessions.len()`), the input
    /// planes are copied word-wise instead of bit-by-bit, and the outputs
    /// come back packed (`num_primary_outputs × sessions.len()`, ragged
    /// tails zeroed). Same shape checks and per-lane semantics.
    pub fn step_planes(
        &mut self,
        sessions: &mut [Session<T>],
        inputs: &BitTensor,
    ) -> Result<BitTensor, SimError> {
        let pi = self.nn.num_primary_inputs;
        let po = self.nn.num_primary_outputs;
        let s = self.nn.state_bits();
        let b = sessions.len();
        if self.nn.layers.is_empty() {
            return Err(SimError::NoLayers);
        }
        if inputs.batch() != b {
            return Err(SimError::BatchMismatch {
                expected: b,
                got: inputs.batch(),
            });
        }
        if inputs.features() != pi {
            return Err(SimError::InputWidth {
                expected: pi,
                got: inputs.features(),
            });
        }
        for sess in sessions.iter() {
            if sess.state_raw().len() != s {
                return Err(SimError::StateWidth {
                    expected: s,
                    got: sess.state_raw().len(),
                });
            }
        }
        if b == 0 {
            return Ok(BitTensor::zeros(po, 0));
        }
        self.xbuf.resize_to(pi + s, b);
        let w = self.xbuf.words_per_feature();
        debug_assert_eq!(inputs.words_per_feature(), w);
        self.xbuf.data_mut()[..pi * w].copy_from_slice(inputs.data());
        self.xbuf.data_mut()[pi * w..].fill(0);
        for (l, sess) in sessions.iter().enumerate() {
            for (f, &v) in sess.state_raw().iter().enumerate() {
                if v == T::ONE {
                    self.xbuf.set_bit(pi + f, l, true);
                }
            }
        }
        let y = self
            .nn
            .forward_with(&self.xbuf, self.device, &mut self.scratch);
        debug_assert_eq!(y.features(), po + s);
        let mut outputs = BitTensor::zeros(po, b);
        outputs
            .data_mut()
            .copy_from_slice(&y.data()[..po * y.words_per_feature()]);
        outputs.mask_tails();
        for (l, sess) in sessions.iter_mut().enumerate() {
            for (f, v) in sess.state_raw_mut().iter_mut().enumerate() {
                *v = if y.get_bit(po + f, l) {
                    T::ONE
                } else {
                    T::ZERO
                };
            }
            sess.bump_cycles();
        }
        Ok(outputs)
    }
}
