//! Word-parallel execution of a bit-plane program.
//!
//! One forward pass evaluates each output plane from the input planes with
//! plain word ops: 64 stimulus lanes advance per AND/OR/XOR. The general
//! [`RowOp::Weighted`] fallback runs an exact per-lane popcount in
//! bit-sliced form: the running sum is held as planes of its binary digits
//! (`acc[p]` holds bit `p` of 64 independent counters), each fan-in plane
//! is added with a ripple-carry of word ops, and the final `A > B`
//! comparison is a lexicographic scan from the most significant digit
//! plane. Everything is lane-wise, so ragged batches need no masking —
//! garbage in the tail bits stays in the tail bits.
//!
//! Rows are independent, so layers dispatch on the shared worker pool in
//! whole-plane chunks (`W` words each), mirroring the CSR path's
//! row-sharded `par_chunks_mut`.

use super::pack::BitTensor;
use super::plan::{BitLayer, BitplaneNn, RowOp};
use c2nn_tensor::par::par_chunks_mut;
use c2nn_tensor::Device;

/// Ping-pong buffers for a forward pass, reusable across calls.
#[derive(Clone, Debug, Default)]
pub struct BitplaneScratch {
    a: BitTensor,
    b: BitTensor,
}

impl BitplaneNn {
    /// Run the network on packed stimuli: `x` is `in_width × batch`
    /// (primary inputs followed by state planes). Returns the output
    /// tensor (`out_width × batch`) borrowed from `scratch`.
    ///
    /// Panics if the network has no layers or `x` has the wrong width
    /// (the simulator/runner wrappers surface those as typed errors).
    pub fn forward_with<'s>(
        &self,
        x: &BitTensor,
        device: Device,
        scratch: &'s mut BitplaneScratch,
    ) -> &'s BitTensor {
        assert!(!self.layers.is_empty(), "forward on empty network");
        assert_eq!(x.features(), self.in_width(), "input plane count");
        forward_layer(&self.layers[0], x, device, &mut scratch.a);
        let (mut src, mut dst) = (&mut scratch.a, &mut scratch.b);
        for layer in &self.layers[1..] {
            forward_layer(layer, src, device, dst);
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }
}

/// Evaluate one layer into `y` (resized in place).
pub(crate) fn forward_layer(layer: &BitLayer, x: &BitTensor, device: Device, y: &mut BitTensor) {
    debug_assert_eq!(x.features(), layer.in_width);
    y.resize_to(layer.ops.len(), x.batch());
    let w = x.words_per_feature();
    if w == 0 || layer.ops.is_empty() {
        return;
    }
    // same shape as the CSR dispatch: shard rows, keep a few thousand
    // words of work per task
    let grain = (4096 / w).clamp(1, 256);
    match device {
        Device::Serial => {
            for (r, out) in y.data_mut().chunks_mut(w).enumerate() {
                eval_op(&layer.ops[r], x, out);
            }
        }
        Device::Parallel => {
            par_chunks_mut(y.data_mut(), w, grain, |r, out| {
                eval_op(&layer.ops[r], x, out)
            });
        }
    }
}

/// Evaluate one output plane (`out` is its `W` words).
fn eval_op(op: &RowOp, x: &BitTensor, out: &mut [u64]) {
    match op {
        RowOp::Const(b) => out.fill(if *b { !0 } else { 0 }),
        RowOp::Copy(c) => out.copy_from_slice(x.feature_words(*c as usize)),
        RowOp::Not(c) => {
            for (o, &v) in out.iter_mut().zip(x.feature_words(*c as usize)) {
                *o = !v;
            }
        }
        RowOp::And(srcs) => reduce(out, x, srcs, false, false),
        RowOp::Nand(srcs) => reduce(out, x, srcs, false, true),
        RowOp::Or(srcs) => reduce(out, x, srcs, true, false),
        RowOp::Nor(srcs) => reduce(out, x, srcs, true, true),
        RowOp::Xor { srcs, invert } => {
            out.fill(if *invert { !0 } else { 0 });
            for &c in srcs {
                for (o, &v) in out.iter_mut().zip(x.feature_words(c as usize)) {
                    *o ^= v;
                }
            }
        }
        RowOp::Weighted {
            plus,
            minus,
            pos_bias,
            neg_bias,
        } => {
            eval_weighted(plus, minus, *pos_bias, *neg_bias, x, out);
        }
    }
}

fn reduce(out: &mut [u64], x: &BitTensor, srcs: &[u32], or: bool, negate: bool) {
    out.copy_from_slice(x.feature_words(srcs[0] as usize));
    for &c in &srcs[1..] {
        let f = x.feature_words(c as usize);
        if or {
            for (o, &v) in out.iter_mut().zip(f) {
                *o |= v;
            }
        } else {
            for (o, &v) in out.iter_mut().zip(f) {
                *o &= v;
            }
        }
    }
    if negate {
        for o in out.iter_mut() {
            *o = !*o;
        }
    }
}

/// Exact 64-lane threshold: `A > B` per lane, with the two sides
/// accumulated as bit-sliced counters word position by word position.
fn eval_weighted(
    plus: &[(u32, u64)],
    minus: &[(u32, u64)],
    pos_bias: u64,
    neg_bias: u64,
    x: &BitTensor,
    out: &mut [u64],
) {
    let mut a: Vec<u64> = Vec::with_capacity(32);
    let mut b: Vec<u64> = Vec::with_capacity(32);
    for (k, o) in out.iter_mut().enumerate() {
        a.clear();
        b.clear();
        add_scaled(&mut a, !0, pos_bias);
        for &(c, w) in plus {
            add_scaled(&mut a, x.feature_words(c as usize)[k], w);
        }
        add_scaled(&mut b, !0, neg_bias);
        for &(c, w) in minus {
            add_scaled(&mut b, x.feature_words(c as usize)[k], w);
        }
        *o = gt(&a, &b);
    }
}

/// `acc += w * plane`, lane-wise: add `plane` into digit position `j` for
/// every set bit `j` of `w`.
fn add_scaled(acc: &mut Vec<u64>, plane: u64, mut w: u64) {
    let mut j = 0;
    while w != 0 {
        if w & 1 == 1 {
            add_plane(acc, plane, j);
        }
        w >>= 1;
        j += 1;
    }
}

/// Ripple-carry add of one plane into digit position `p` of a bit-sliced
/// counter (each `acc[p]` holds digit `p` of 64 independent lane counts).
fn add_plane(acc: &mut Vec<u64>, mut carry: u64, mut p: usize) {
    while carry != 0 {
        if p >= acc.len() {
            acc.resize(p + 1, 0);
        }
        let t = acc[p] ^ carry;
        carry &= acc[p];
        acc[p] = t;
        p += 1;
    }
}

/// Lane-wise `a > b` over bit-sliced counters: lexicographic compare from
/// the most significant digit plane down.
fn gt(a: &[u64], b: &[u64]) -> u64 {
    let n = a.len().max(b.len());
    let mut gt = 0u64;
    let mut eq = !0u64;
    for p in (0..n).rev() {
        let av = a.get(p).copied().unwrap_or(0);
        let bv = b.get(p).copied().unwrap_or(0);
        gt |= eq & av & !bv;
        eq &= !(av ^ bv);
    }
    gt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_sliced_counters_count_exactly() {
        // add planes with known popcount patterns and read back the digits
        let mut acc = Vec::new();
        add_plane(&mut acc, 0b1011, 0); // lanes 0,1,3 += 1
        add_plane(&mut acc, 0b0011, 0); // lanes 0,1   += 1
        add_plane(&mut acc, 0b0001, 0); // lane 0      += 1
                                        // lane counts: 3, 2, 0, 1
        let digit = |p: usize, l: usize| acc.get(p).copied().unwrap_or(0) >> l & 1;
        let count = |l: usize| digit(0, l) + 2 * digit(1, l) + 4 * digit(2, l);
        assert_eq!([count(0), count(1), count(2), count(3)], [3, 2, 0, 1]);
    }

    #[test]
    fn scaled_add_and_compare_match_scalar_arithmetic() {
        // lanes: x = bit pattern, weights chosen to exercise carries
        let lanes: u64 = 0b1101;
        for &(w_a, w_b, bias_a, bias_b) in &[
            (5u64, 3u64, 2u64, 0u64),
            (1, 1, 0, 0),
            (7, 9, 0, 4),
            (100, 1, 0, 63),
        ] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            add_scaled(&mut a, !0, bias_a);
            add_scaled(&mut a, lanes, w_a);
            add_scaled(&mut b, !0, bias_b);
            add_scaled(&mut b, lanes, w_b);
            let got = gt(&a, &b);
            for l in 0..4 {
                let x = lanes >> l & 1;
                let expect = (w_a * x + bias_a) > (w_b * x + bias_b);
                assert_eq!(got >> l & 1 == 1, expect, "lane {l} w=({w_a},{w_b})");
            }
        }
    }
}
