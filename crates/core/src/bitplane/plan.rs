//! Legalize-to-bitplane: classify each exact-integer neuron row into the
//! cheapest word-parallel operation that computes it.
//!
//! The compiler's IR invariants (see `ir`) guarantee that, fed binary
//! inputs, every `Threshold` row produces 0/1 and every intermediate
//! `Linear` row reproduces the 0/1 value of its source signal. That makes
//! two rewrites sound:
//!
//! * A unit-weight threshold row is a plain gate: with all weights `+1`,
//!   bias `1-n` is an AND and bias `0` an OR over the fan-in planes (and
//!   the `-1` duals are NOR/NAND).
//! * A linear row whose value is always 0/1 equals its own parity, so it
//!   is the XOR of the fan-in planes with odd weights, inverted when the
//!   bias is odd. Even coefficients drop out entirely.
//!
//! Everything else falls back to [`RowOp::Weighted`], an exact bit-sliced
//! popcount comparator (see `exec`), so *any* legal `CompiledNn` — merged
//! layers, wide gates, hand-built models — runs bit-exactly.

use crate::compile::CompiledNn;
use crate::layer::Activation2;
use c2nn_tensor::Scalar;
use std::fmt;

/// One output plane of a bit-plane layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RowOp {
    /// The row is constant regardless of input.
    Const(bool),
    /// The row copies one input plane.
    Copy(u32),
    /// The row negates one input plane.
    Not(u32),
    /// AND of the fan-in planes (unit weights, bias `1-n`).
    And(Vec<u32>),
    /// NAND of the fan-in planes (weights `-1`, bias `n`).
    Nand(Vec<u32>),
    /// OR of the fan-in planes (unit weights, bias `0`).
    Or(Vec<u32>),
    /// NOR of the fan-in planes (weights `-1`, bias `1`).
    Nor(Vec<u32>),
    /// XOR of the odd-weight fan-in planes of a linear row, optionally
    /// inverted by an odd bias.
    Xor {
        /// Fan-in columns with odd coefficients.
        srcs: Vec<u32>,
        /// Whether the bias is odd.
        invert: bool,
    },
    /// General threshold `Σ wᵢxᵢ + b > 0`, evaluated exactly as
    /// `A > B` with `A = Σ_{w>0} w·x + max(b,0)` and
    /// `B = Σ_{w<0} |w|·x + max(-b,0)` via bit-sliced popcount counters.
    Weighted {
        /// Positive-weight terms `(column, magnitude)`.
        plus: Vec<(u32, u64)>,
        /// Negative-weight terms `(column, magnitude)`.
        minus: Vec<(u32, u64)>,
        /// `max(bias, 0)`.
        pos_bias: u64,
        /// `max(-bias, 0)`.
        neg_bias: u64,
    },
}

/// One layer of the bit-plane program.
#[derive(Clone, Debug)]
pub struct BitLayer {
    /// Planes the layer reads.
    pub in_width: usize,
    /// One op per output plane.
    pub ops: Vec<RowOp>,
}

/// A compiled network legalized to bit-plane form. Built from a
/// [`CompiledNn`] by [`BitplaneNn::from_compiled`]; shares its port order
/// and state layout, so the two backends are drop-in interchangeable.
#[derive(Clone, Debug)]
pub struct BitplaneNn {
    /// Model name (copied from the source network).
    pub name: String,
    /// The layer programs, input to output.
    pub layers: Vec<BitLayer>,
    /// Primary input count.
    pub num_primary_inputs: usize,
    /// Primary output count.
    pub num_primary_outputs: usize,
    /// Power-on flip-flop values.
    pub state_init: Vec<bool>,
    /// Gate count of the source circuit (throughput accounting).
    pub gate_count: usize,
    /// The `L` used for compilation.
    pub lut_size: usize,
}

/// Why a network could not be legalized to bit-plane form.
#[derive(Clone, Debug, PartialEq)]
pub enum BitplaneError {
    /// A weight or bias is not an integer (the compiler never produces
    /// these; they can only come from a hand-edited model file).
    NonIntegralValue {
        /// Layer the value was found in.
        layer: usize,
        /// Row within the layer.
        row: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for BitplaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitplaneError::NonIntegralValue { layer, row, value } => write!(
                f,
                "layer {layer} row {row}: value {value} is not an integer; \
                 the bit-plane backend requires exact integral weights"
            ),
        }
    }
}

impl std::error::Error for BitplaneError {}

/// Per-kind op counts of a bit-plane program (reported by the bench and
/// asserted on in tests: the unmerged pipeline should legalize almost
/// entirely to gate ops, not `Weighted` fallbacks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCensus {
    pub consts: usize,
    pub copies: usize,
    pub nots: usize,
    pub ands: usize,
    pub nands: usize,
    pub ors: usize,
    pub nors: usize,
    pub xors: usize,
    pub weighted: usize,
}

impl OpCensus {
    /// Total op count.
    pub fn total(&self) -> usize {
        self.consts
            + self.copies
            + self.nots
            + self.ands
            + self.nands
            + self.ors
            + self.nors
            + self.xors
            + self.weighted
    }
}

impl BitplaneNn {
    /// Legalize a compiled network to bit-plane form. Exact for every
    /// network that passes `CompiledNn::validate` (integral weights within
    /// the scalar's exact range); fails with a typed error otherwise.
    pub fn from_compiled<T: Scalar>(nn: &CompiledNn<T>) -> Result<Self, BitplaneError> {
        let mut layers = Vec::with_capacity(nn.layers.len());
        for (li, layer) in nn.layers.iter().enumerate() {
            let mut ops = Vec::with_capacity(layer.weights.rows());
            let mut row: Vec<(u32, i64)> = Vec::new();
            for r in 0..layer.weights.rows() {
                row.clear();
                for (c, v) in layer.weights.row(r) {
                    let w = exact_i64(v, li, r)?;
                    if w != 0 {
                        row.push((c, w));
                    }
                }
                let bias = exact_i64(layer.bias[r], li, r)?;
                ops.push(classify(&row, bias, layer.activation));
            }
            layers.push(BitLayer { in_width: layer.weights.cols(), ops });
        }
        Ok(BitplaneNn {
            name: nn.name.clone(),
            layers,
            num_primary_inputs: nn.num_primary_inputs,
            num_primary_outputs: nn.num_primary_outputs,
            state_init: nn.state_init.clone(),
            gate_count: nn.gate_count,
            lut_size: nn.lut_size,
        })
    }

    /// Planes the first layer reads (primary inputs followed by state).
    pub fn in_width(&self) -> usize {
        self.layers.first().map_or(0, |l| l.in_width)
    }

    /// Planes the last layer writes (primary outputs followed by state).
    pub fn out_width(&self) -> usize {
        self.layers.last().map_or(0, |l| l.ops.len())
    }

    /// Flip-flop count.
    pub fn state_bits(&self) -> usize {
        self.state_init.len()
    }

    /// Layer count.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Count ops by kind across all layers.
    pub fn op_census(&self) -> OpCensus {
        let mut c = OpCensus::default();
        for layer in &self.layers {
            for op in &layer.ops {
                match op {
                    RowOp::Const(_) => c.consts += 1,
                    RowOp::Copy(_) => c.copies += 1,
                    RowOp::Not(_) => c.nots += 1,
                    RowOp::And(_) => c.ands += 1,
                    RowOp::Nand(_) => c.nands += 1,
                    RowOp::Or(_) => c.ors += 1,
                    RowOp::Nor(_) => c.nors += 1,
                    RowOp::Xor { .. } => c.xors += 1,
                    RowOp::Weighted { .. } => c.weighted += 1,
                }
            }
        }
        c
    }
}

fn exact_i64<T: Scalar>(v: T, layer: usize, row: usize) -> Result<i64, BitplaneError> {
    let f = v.to_f64();
    // compiled weights satisfy |v| ≤ EXACT_LIMIT ≤ 2^53, so the f64 image
    // is exact; anything fractional or astronomically large is a corrupt
    // or hand-edited model
    if f.fract() != 0.0 || f.abs() >= 9_007_199_254_740_992.0 {
        return Err(BitplaneError::NonIntegralValue { layer, row, value: f });
    }
    Ok(f as i64)
}

/// Pick the cheapest exact op for one canonical row.
fn classify(weights: &[(u32, i64)], bias: i64, act: Activation2) -> RowOp {
    match act {
        Activation2::Linear => {
            // 0/1-valued linear rows equal their own parity
            let srcs: Vec<u32> =
                weights.iter().filter(|&&(_, w)| w & 1 != 0).map(|&(c, _)| c).collect();
            let invert = bias & 1 != 0;
            match (srcs.len(), invert) {
                (0, b) => RowOp::Const(b),
                (1, false) => RowOp::Copy(srcs[0]),
                (1, true) => RowOp::Not(srcs[0]),
                _ => RowOp::Xor { srcs, invert },
            }
        }
        Activation2::Threshold => {
            let min_pre: i64 = weights.iter().map(|&(_, w)| w.min(0)).sum::<i64>() + bias;
            let max_pre: i64 = weights.iter().map(|&(_, w)| w.max(0)).sum::<i64>() + bias;
            if min_pre > 0 {
                return RowOp::Const(true);
            }
            if max_pre <= 0 {
                return RowOp::Const(false);
            }
            // non-constant, so weights is non-empty from here on
            let n = weights.len() as i64;
            let srcs = || weights.iter().map(|&(c, _)| c).collect::<Vec<u32>>();
            if weights.iter().all(|&(_, w)| w == 1) {
                if n == 1 {
                    // bias must be 0 (the constant checks caught the rest)
                    return RowOp::Copy(weights[0].0);
                }
                if bias == 1 - n {
                    return RowOp::And(srcs());
                }
                if bias == 0 {
                    return RowOp::Or(srcs());
                }
            }
            if weights.iter().all(|&(_, w)| w == -1) {
                if n == 1 {
                    // bias must be 1
                    return RowOp::Not(weights[0].0);
                }
                if bias == 1 {
                    return RowOp::Nor(srcs());
                }
                if bias == n {
                    return RowOp::Nand(srcs());
                }
            }
            let plus: Vec<(u32, u64)> =
                weights.iter().filter(|&&(_, w)| w > 0).map(|&(c, w)| (c, w as u64)).collect();
            let minus: Vec<(u32, u64)> = weights
                .iter()
                .filter(|&&(_, w)| w < 0)
                .map(|&(c, w)| (c, w.unsigned_abs()))
                .collect();
            RowOp::Weighted {
                plus,
                minus,
                pos_bias: bias.max(0) as u64,
                neg_bias: (-bias).max(0) as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_rows_classify_to_gates() {
        use Activation2::Threshold as T;
        // and2: x0 + x1 - 1 > 0
        assert_eq!(classify(&[(0, 1), (1, 1)], -1, T), RowOp::And(vec![0, 1]));
        // or3
        assert_eq!(classify(&[(0, 1), (1, 1), (2, 1)], 0, T), RowOp::Or(vec![0, 1, 2]));
        // nor2: -x0 - x1 + 1 > 0
        assert_eq!(classify(&[(0, -1), (1, -1)], 1, T), RowOp::Nor(vec![0, 1]));
        // nand2: -x0 - x1 + 2 > 0
        assert_eq!(classify(&[(0, -1), (1, -1)], 2, T), RowOp::Nand(vec![0, 1]));
        // buffer and inverter
        assert_eq!(classify(&[(3, 1)], 0, T), RowOp::Copy(3));
        assert_eq!(classify(&[(3, -1)], 1, T), RowOp::Not(3));
        // constants by range
        assert_eq!(classify(&[(0, 1)], 1, T), RowOp::Const(true));
        assert_eq!(classify(&[(0, 1)], -1, T), RowOp::Const(false));
        assert_eq!(classify(&[], 5, T), RowOp::Const(true));
        // a majority gate has no gate form
        assert!(matches!(
            classify(&[(0, 1), (1, 1), (2, 1)], -1, T),
            RowOp::Weighted { .. }
        ));
    }

    #[test]
    fn linear_rows_classify_to_parity() {
        use Activation2::Linear as L;
        assert_eq!(
            classify(&[(0, 1), (1, -1), (2, 2)], 0, L),
            RowOp::Xor { srcs: vec![0, 1], invert: false }
        );
        assert_eq!(classify(&[(4, 1)], 0, L), RowOp::Copy(4));
        assert_eq!(classify(&[(4, -1)], 1, L), RowOp::Not(4));
        assert_eq!(classify(&[(4, 2)], 1, L), RowOp::Const(true));
        assert_eq!(classify(&[], 0, L), RowOp::Const(false));
    }
}
