//! Legalize-to-bitplane: classify each exact-integer neuron row into the
//! cheapest word-parallel operation that computes it.
//!
//! The compiler's IR invariants (see `ir`) guarantee that, fed binary
//! inputs, every `Threshold` row produces 0/1 and every intermediate
//! `Linear` row reproduces the 0/1 value of its source signal. That makes
//! two rewrites sound:
//!
//! * A threshold row whose weights share one sign is a plain gate whenever
//!   its decision boundary separates exactly the right input subsets —
//!   *regardless of the weight magnitudes*. With all weights positive, the
//!   row is an OR iff `bias ≤ 0` and every lone input fires
//!   (`wᵢ + bias > 0`), and an AND iff the full set fires
//!   (`Σw + bias > 0`) while no largest proper subset does
//!   (`Σw − wᵢ + bias ≤ 0`). The all-negative duals give NOR/NAND on the
//!   magnitudes. Unit weights are the common special case (bias `1-n` →
//!   AND, `0` → OR, and the `-1` duals), but non-±1 rows from merged
//!   layers or hand-built models qualify too.
//! * A linear row whose value is always 0/1 equals its own parity, so it
//!   is the XOR of the fan-in planes with odd weights, inverted when the
//!   bias is odd. Even coefficients drop out entirely.
//!
//! Everything else falls back to [`RowOp::Weighted`], an exact bit-sliced
//! popcount comparator (see `exec`), so *any* legal `CompiledNn` — merged
//! layers, wide gates, hand-built models — runs bit-exactly. When both a
//! gate form and the counter form are available for a row, the classifier
//! picks by modeled word-op cost ([`RowOp::modeled_word_ops`]), and the
//! per-row-class outcome is tallied in a [`RowClassCensus`] surfaced
//! through the backend's capabilities manifest.

use crate::compile::CompiledNn;
use crate::layer::Activation2;
use c2nn_tensor::Scalar;
use std::fmt;

/// One output plane of a bit-plane layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RowOp {
    /// The row is constant regardless of input.
    Const(bool),
    /// The row copies one input plane.
    Copy(u32),
    /// The row negates one input plane.
    Not(u32),
    /// AND of the fan-in planes (unit weights, bias `1-n`).
    And(Vec<u32>),
    /// NAND of the fan-in planes (weights `-1`, bias `n`).
    Nand(Vec<u32>),
    /// OR of the fan-in planes (unit weights, bias `0`).
    Or(Vec<u32>),
    /// NOR of the fan-in planes (weights `-1`, bias `1`).
    Nor(Vec<u32>),
    /// XOR of the odd-weight fan-in planes of a linear row, optionally
    /// inverted by an odd bias.
    Xor {
        /// Fan-in columns with odd coefficients.
        srcs: Vec<u32>,
        /// Whether the bias is odd.
        invert: bool,
    },
    /// General threshold `Σ wᵢxᵢ + b > 0`, evaluated exactly as
    /// `A > B` with `A = Σ_{w>0} w·x + max(b,0)` and
    /// `B = Σ_{w<0} |w|·x + max(-b,0)` via bit-sliced popcount counters.
    Weighted {
        /// Positive-weight terms `(column, magnitude)`.
        plus: Vec<(u32, u64)>,
        /// Negative-weight terms `(column, magnitude)`.
        minus: Vec<(u32, u64)>,
        /// `max(bias, 0)`.
        pos_bias: u64,
        /// `max(-bias, 0)`.
        neg_bias: u64,
    },
}

impl RowOp {
    /// Modeled cost of evaluating this op for one output *word* (64
    /// lanes), in machine word operations. This is the cost model the
    /// classifier uses to choose between a gate form and the bit-sliced
    /// counter form for weighted rows, and what the backend HAL sums into
    /// its capabilities manifest: gate/XOR ops cost one op per fan-in
    /// plane, the counter fallback costs one ripple-carry plane-add per
    /// set weight bit (each rippling up to the counter width) plus the
    /// final lexicographic compare.
    pub fn modeled_word_ops(&self) -> u64 {
        match self {
            RowOp::Const(_) | RowOp::Copy(_) | RowOp::Not(_) => 1,
            RowOp::And(srcs) | RowOp::Nand(srcs) | RowOp::Or(srcs) | RowOp::Nor(srcs) => {
                srcs.len() as u64 + 1
            }
            RowOp::Xor { srcs, .. } => srcs.len() as u64 + 1,
            RowOp::Weighted {
                plus,
                minus,
                pos_bias,
                neg_bias,
            } => {
                let a_max: u64 = *pos_bias + plus.iter().map(|&(_, w)| w).sum::<u64>();
                let b_max: u64 = *neg_bias + minus.iter().map(|&(_, w)| w).sum::<u64>();
                // counter width in digit planes (≥1 once non-trivial)
                let width = (64 - a_max.max(b_max).max(1).leading_zeros()) as u64;
                let adds: u64 = plus
                    .iter()
                    .chain(minus.iter())
                    .map(|&(_, w)| w.count_ones() as u64)
                    .sum::<u64>()
                    + pos_bias.count_ones() as u64
                    + neg_bias.count_ones() as u64;
                adds * width + 3 * width
            }
        }
    }

    /// Whether this op runs on the bit-sliced counter path (the expensive
    /// class) rather than plain word ops.
    pub fn is_weighted(&self) -> bool {
        matches!(self, RowOp::Weighted { .. })
    }
}

/// One layer of the bit-plane program.
#[derive(Clone, Debug)]
pub struct BitLayer {
    /// Planes the layer reads.
    pub in_width: usize,
    /// One op per output plane.
    pub ops: Vec<RowOp>,
}

/// A compiled network legalized to bit-plane form. Built from a
/// [`CompiledNn`] by [`BitplaneNn::from_compiled`]; shares its port order
/// and state layout, so the two backends are drop-in interchangeable.
#[derive(Clone, Debug)]
pub struct BitplaneNn {
    /// Model name (copied from the source network).
    pub name: String,
    /// The layer programs, input to output.
    pub layers: Vec<BitLayer>,
    /// Primary input count.
    pub num_primary_inputs: usize,
    /// Primary output count.
    pub num_primary_outputs: usize,
    /// Power-on flip-flop values.
    pub state_init: Vec<bool>,
    /// Gate count of the source circuit (throughput accounting).
    pub gate_count: usize,
    /// The `L` used for compilation.
    pub lut_size: usize,
    /// How each source row classified during legalization (tallied once
    /// in [`BitplaneNn::from_compiled`]; the weight information needed to
    /// tell a unit gate from a weighted gate is not retained in the ops).
    pub row_classes: RowClassCensus,
}

/// Why a network could not be legalized to bit-plane form.
#[derive(Clone, Debug, PartialEq)]
pub enum BitplaneError {
    /// A weight or bias is not an integer (the compiler never produces
    /// these; they can only come from a hand-edited model file).
    NonIntegralValue {
        /// Layer the value was found in.
        layer: usize,
        /// Row within the layer.
        row: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for BitplaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitplaneError::NonIntegralValue { layer, row, value } => write!(
                f,
                "layer {layer} row {row}: value {value} is not an integer; \
                 the bit-plane backend requires exact integral weights"
            ),
        }
    }
}

impl std::error::Error for BitplaneError {}

/// Per-kind op counts of a bit-plane program (reported by the bench and
/// asserted on in tests: the unmerged pipeline should legalize almost
/// entirely to gate ops, not `Weighted` fallbacks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCensus {
    pub consts: usize,
    pub copies: usize,
    pub nots: usize,
    pub ands: usize,
    pub nands: usize,
    pub ors: usize,
    pub nors: usize,
    pub xors: usize,
    pub weighted: usize,
}

impl OpCensus {
    /// Total op count.
    pub fn total(&self) -> usize {
        self.consts
            + self.copies
            + self.nots
            + self.ands
            + self.nands
            + self.ors
            + self.nors
            + self.xors
            + self.weighted
    }
}

/// How each source row classified during legalization, by *provenance*
/// rather than resulting op kind: a gate op produced by the weight-aware
/// classifier from a non-±1 row counts separately from one produced from
/// unit weights, so the capabilities manifest can report how much of a
/// model the cheap paths actually cover.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowClassCensus {
    /// Constant, copy, and inverter rows.
    pub trivial: u64,
    /// Gate ops from unit-weight rows (the common case on the unmerged
    /// pipeline).
    pub unit_gate: u64,
    /// Gate ops recovered from non-±1 rows by the weight-aware
    /// classifier — rows that would previously have fallen back to the
    /// counter path.
    pub weighted_gate: u64,
    /// XOR/parity rows (0/1-valued linear rows).
    pub parity: u64,
    /// Bit-sliced-counter fallback rows ([`RowOp::Weighted`]).
    pub counter: u64,
}

impl RowClassCensus {
    /// Total classified rows.
    pub fn total(&self) -> u64 {
        self.trivial + self.unit_gate + self.weighted_gate + self.parity + self.counter
    }

    /// Fraction of rows on the cheap word-op paths (everything but the
    /// counter fallback); 1.0 for an empty program.
    pub fn coverage(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (total - self.counter) as f64 / total as f64
        }
    }

    /// `(class name, rows)` pairs in a fixed order, for manifests and
    /// reports.
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("trivial", self.trivial),
            ("unit-gate", self.unit_gate),
            ("weighted-gate", self.weighted_gate),
            ("parity", self.parity),
            ("counter", self.counter),
        ]
    }

    fn tally(&mut self, op: &RowOp, weights: &[(u32, i64)]) {
        match op {
            RowOp::Const(_) | RowOp::Copy(_) | RowOp::Not(_) => self.trivial += 1,
            RowOp::And(_) | RowOp::Nand(_) | RowOp::Or(_) | RowOp::Nor(_) => {
                if weights.iter().all(|&(_, w)| w.abs() == 1) {
                    self.unit_gate += 1;
                } else {
                    self.weighted_gate += 1;
                }
            }
            RowOp::Xor { .. } => self.parity += 1,
            RowOp::Weighted { .. } => self.counter += 1,
        }
    }
}

impl BitplaneNn {
    /// Legalize a compiled network to bit-plane form. Exact for every
    /// network that passes `CompiledNn::validate` (integral weights within
    /// the scalar's exact range); fails with a typed error otherwise.
    pub fn from_compiled<T: Scalar>(nn: &CompiledNn<T>) -> Result<Self, BitplaneError> {
        let mut layers = Vec::with_capacity(nn.layers.len());
        let mut row_classes = RowClassCensus::default();
        for (li, layer) in nn.layers.iter().enumerate() {
            let mut ops = Vec::with_capacity(layer.weights.rows());
            let mut row: Vec<(u32, i64)> = Vec::new();
            for r in 0..layer.weights.rows() {
                row.clear();
                for (c, v) in layer.weights.row(r) {
                    let w = exact_i64(v, li, r)?;
                    if w != 0 {
                        row.push((c, w));
                    }
                }
                let bias = exact_i64(layer.bias[r], li, r)?;
                let op = classify(&row, bias, layer.activation);
                row_classes.tally(&op, &row);
                ops.push(op);
            }
            layers.push(BitLayer {
                in_width: layer.weights.cols(),
                ops,
            });
        }
        Ok(BitplaneNn {
            row_classes,
            name: nn.name.clone(),
            layers,
            num_primary_inputs: nn.num_primary_inputs,
            num_primary_outputs: nn.num_primary_outputs,
            state_init: nn.state_init.clone(),
            gate_count: nn.gate_count,
            lut_size: nn.lut_size,
        })
    }

    /// Planes the first layer reads (primary inputs followed by state).
    pub fn in_width(&self) -> usize {
        self.layers.first().map_or(0, |l| l.in_width)
    }

    /// Planes the last layer writes (primary outputs followed by state).
    pub fn out_width(&self) -> usize {
        self.layers.last().map_or(0, |l| l.ops.len())
    }

    /// Flip-flop count.
    pub fn state_bits(&self) -> usize {
        self.state_init.len()
    }

    /// Layer count.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Summed modeled word-op cost per output word, split into
    /// `(cheap, weighted)` units: cheap covers the plain word-op paths
    /// (constants, copies, gates, parities), weighted the bit-sliced
    /// counter fallback. The backend HAL feeds these into the calibrated
    /// cost model to predict cycles/s per batch size.
    pub fn modeled_units(&self) -> (f64, f64) {
        let mut cheap = 0u64;
        let mut weighted = 0u64;
        for layer in &self.layers {
            for op in &layer.ops {
                if op.is_weighted() {
                    weighted += op.modeled_word_ops();
                } else {
                    cheap += op.modeled_word_ops();
                }
            }
        }
        (cheap as f64, weighted as f64)
    }

    /// Count ops by kind across all layers.
    pub fn op_census(&self) -> OpCensus {
        let mut c = OpCensus::default();
        for layer in &self.layers {
            for op in &layer.ops {
                match op {
                    RowOp::Const(_) => c.consts += 1,
                    RowOp::Copy(_) => c.copies += 1,
                    RowOp::Not(_) => c.nots += 1,
                    RowOp::And(_) => c.ands += 1,
                    RowOp::Nand(_) => c.nands += 1,
                    RowOp::Or(_) => c.ors += 1,
                    RowOp::Nor(_) => c.nors += 1,
                    RowOp::Xor { .. } => c.xors += 1,
                    RowOp::Weighted { .. } => c.weighted += 1,
                }
            }
        }
        c
    }
}

fn exact_i64<T: Scalar>(v: T, layer: usize, row: usize) -> Result<i64, BitplaneError> {
    let f = v.to_f64();
    // compiled weights satisfy |v| ≤ EXACT_LIMIT ≤ 2^53, so the f64 image
    // is exact; anything fractional or astronomically large is a corrupt
    // or hand-edited model
    if f.fract() != 0.0 || f.abs() >= 9_007_199_254_740_992.0 {
        return Err(BitplaneError::NonIntegralValue {
            layer,
            row,
            value: f,
        });
    }
    Ok(f as i64)
}

/// Pick the cheapest exact op for one canonical row.
fn classify(weights: &[(u32, i64)], bias: i64, act: Activation2) -> RowOp {
    match act {
        Activation2::Linear => {
            // 0/1-valued linear rows equal their own parity
            let srcs: Vec<u32> = weights
                .iter()
                .filter(|&&(_, w)| w & 1 != 0)
                .map(|&(c, _)| c)
                .collect();
            let invert = bias & 1 != 0;
            match (srcs.len(), invert) {
                (0, b) => RowOp::Const(b),
                (1, false) => RowOp::Copy(srcs[0]),
                (1, true) => RowOp::Not(srcs[0]),
                _ => RowOp::Xor { srcs, invert },
            }
        }
        Activation2::Threshold => {
            let min_pre: i64 = weights.iter().map(|&(_, w)| w.min(0)).sum::<i64>() + bias;
            let max_pre: i64 = weights.iter().map(|&(_, w)| w.max(0)).sum::<i64>() + bias;
            if min_pre > 0 {
                return RowOp::Const(true);
            }
            if max_pre <= 0 {
                return RowOp::Const(false);
            }
            // non-constant, so weights is non-empty from here on
            let counter = weighted_op(weights, bias);
            match gate_op(weights, bias) {
                // both forms compute the row exactly; take the modeled-
                // cost winner (the gate always wins today, but the
                // explicit comparison keeps the choice honest if the
                // counter path ever gets cheaper ops)
                Some(gate) if gate.modeled_word_ops() <= counter.modeled_word_ops() => gate,
                _ => counter,
            }
        }
    }
}

/// The exact bit-sliced-counter form of a threshold row (always valid).
fn weighted_op(weights: &[(u32, i64)], bias: i64) -> RowOp {
    let plus: Vec<(u32, u64)> = weights
        .iter()
        .filter(|&&(_, w)| w > 0)
        .map(|&(c, w)| (c, w as u64))
        .collect();
    let minus: Vec<(u32, u64)> = weights
        .iter()
        .filter(|&&(_, w)| w < 0)
        .map(|&(c, w)| (c, w.unsigned_abs()))
        .collect();
    RowOp::Weighted {
        plus,
        minus,
        pos_bias: bias.max(0) as u64,
        neg_bias: (-bias).max(0) as u64,
    }
}

/// Weight-aware gate detection for a non-constant threshold row whose
/// weights share one sign. The decision is by *separating hyperplane*,
/// not by weight pattern, so magnitudes are free:
///
/// * all `w > 0`: OR iff no-inputs stays off (`bias ≤ 0`) and every lone
///   input fires (`wᵢ + bias > 0`) — larger subsets only add positive
///   weight; AND iff the full set fires (`Σw + bias > 0`) and no
///   largest proper subset does (`Σw − wᵢ + bias ≤ 0` for every `i`).
/// * all `w < 0`, magnitudes `mᵢ`: the duals — NOR iff `bias > 0` and
///   `bias − mᵢ ≤ 0` for every `i`; NAND iff `bias − Σm ≤ 0` and
///   `bias − (Σm − mᵢ) > 0` for every `i`.
///
/// Single-source gates normalize to copy/inverter. Mixed-sign rows have
/// no plain-gate form over these ops and return `None`.
fn gate_op(weights: &[(u32, i64)], bias: i64) -> Option<RowOp> {
    let srcs = || weights.iter().map(|&(c, _)| c).collect::<Vec<u32>>();
    if weights.iter().all(|&(_, w)| w > 0) {
        let sum: i64 = weights.iter().map(|&(_, w)| w).sum();
        if bias <= 0 && weights.iter().all(|&(_, w)| w + bias > 0) {
            return Some(match weights {
                [(c, _)] => RowOp::Copy(*c),
                _ => RowOp::Or(srcs()),
            });
        }
        if sum + bias > 0 && weights.iter().all(|&(_, w)| sum - w + bias <= 0) {
            return Some(match weights {
                [(c, _)] => RowOp::Copy(*c),
                _ => RowOp::And(srcs()),
            });
        }
    } else if weights.iter().all(|&(_, w)| w < 0) {
        let sum: i64 = weights.iter().map(|&(_, w)| -w).sum();
        if bias > 0 && weights.iter().all(|&(_, w)| bias + w <= 0) {
            return Some(match weights {
                [(c, _)] => RowOp::Not(*c),
                _ => RowOp::Nor(srcs()),
            });
        }
        if bias - sum <= 0 && weights.iter().all(|&(_, w)| bias - sum - w > 0) {
            return Some(match weights {
                [(c, _)] => RowOp::Not(*c),
                _ => RowOp::Nand(srcs()),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_rows_classify_to_gates() {
        use Activation2::Threshold as T;
        // and2: x0 + x1 - 1 > 0
        assert_eq!(classify(&[(0, 1), (1, 1)], -1, T), RowOp::And(vec![0, 1]));
        // or3
        assert_eq!(
            classify(&[(0, 1), (1, 1), (2, 1)], 0, T),
            RowOp::Or(vec![0, 1, 2])
        );
        // nor2: -x0 - x1 + 1 > 0
        assert_eq!(classify(&[(0, -1), (1, -1)], 1, T), RowOp::Nor(vec![0, 1]));
        // nand2: -x0 - x1 + 2 > 0
        assert_eq!(classify(&[(0, -1), (1, -1)], 2, T), RowOp::Nand(vec![0, 1]));
        // buffer and inverter
        assert_eq!(classify(&[(3, 1)], 0, T), RowOp::Copy(3));
        assert_eq!(classify(&[(3, -1)], 1, T), RowOp::Not(3));
        // constants by range
        assert_eq!(classify(&[(0, 1)], 1, T), RowOp::Const(true));
        assert_eq!(classify(&[(0, 1)], -1, T), RowOp::Const(false));
        assert_eq!(classify(&[], 5, T), RowOp::Const(true));
        // a majority gate has no gate form
        assert!(matches!(
            classify(&[(0, 1), (1, 1), (2, 1)], -1, T),
            RowOp::Weighted { .. }
        ));
    }

    #[test]
    fn weight_aware_rows_classify_to_gates() {
        use Activation2::Threshold as T;
        // or-like with uneven magnitudes: any lone input clears the bias
        assert_eq!(classify(&[(0, 3), (1, 5)], -2, T), RowOp::Or(vec![0, 1]));
        // and-like: only the full set clears the bias (3+5-6 > 0, but
        // dropping either input goes non-positive)
        assert_eq!(classify(&[(0, 3), (1, 5)], -6, T), RowOp::And(vec![0, 1]));
        // single non-unit source normalizes to copy / inverter
        assert_eq!(classify(&[(7, 3)], -2, T), RowOp::Copy(7));
        assert_eq!(classify(&[(7, -3)], 2, T), RowOp::Not(7));
        // negative duals with uneven magnitudes
        assert_eq!(classify(&[(0, -2), (1, -4)], 2, T), RowOp::Nor(vec![0, 1]));
        assert_eq!(classify(&[(0, -2), (1, -4)], 5, T), RowOp::Nand(vec![0, 1]));
        // a weighted row whose boundary separates no gate subset stays on
        // the counter path: 3·x0 + 5·x1 − 4 > 0 fires on {x1} and {x0,x1}
        // but not {x0} — neither OR nor AND
        assert!(matches!(
            classify(&[(0, 3), (1, 5)], -4, T),
            RowOp::Weighted { .. }
        ));
        // mixed signs never have a plain gate form
        assert!(matches!(
            classify(&[(0, 2), (1, -3)], 1, T),
            RowOp::Weighted { .. }
        ));
    }

    #[test]
    fn weight_aware_gates_match_the_counter_semantics() {
        use Activation2::Threshold as T;
        // exhaustive cross-check: for every ≤3-input row over a weight
        // grid, the classified op must agree with direct threshold
        // evaluation on every input assignment
        let grid: &[i64] = &[-5, -3, -1, 1, 2, 4];
        for &w0 in grid {
            for &w1 in grid {
                for &w2 in grid {
                    for bias in -8i64..=8 {
                        let weights = [(0u32, w0), (1u32, w1), (2u32, w2)];
                        let op = classify(&weights, bias, T);
                        for assign in 0u32..8 {
                            let bit = |i: u32| assign >> i & 1 == 1;
                            let want = weights
                                .iter()
                                .map(|&(c, w)| if bit(c) { w } else { 0 })
                                .sum::<i64>()
                                + bias
                                > 0;
                            let got = eval_row(&op, &bit);
                            assert_eq!(
                                got, want,
                                "w=({w0},{w1},{w2}) b={bias} assign={assign:03b} op={op:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Scalar reference evaluation of one RowOp (test-only).
    fn eval_row(op: &RowOp, bit: &dyn Fn(u32) -> bool) -> bool {
        match op {
            RowOp::Const(b) => *b,
            RowOp::Copy(c) => bit(*c),
            RowOp::Not(c) => !bit(*c),
            RowOp::And(s) => s.iter().all(|&c| bit(c)),
            RowOp::Nand(s) => !s.iter().all(|&c| bit(c)),
            RowOp::Or(s) => s.iter().any(|&c| bit(c)),
            RowOp::Nor(s) => !s.iter().any(|&c| bit(c)),
            RowOp::Xor { srcs, invert } => {
                (srcs.iter().filter(|&&c| bit(c)).count() % 2 == 1) != *invert
            }
            RowOp::Weighted {
                plus,
                minus,
                pos_bias,
                neg_bias,
            } => {
                let a: u64 = *pos_bias
                    + plus
                        .iter()
                        .map(|&(c, w)| if bit(c) { w } else { 0 })
                        .sum::<u64>();
                let b: u64 = *neg_bias
                    + minus
                        .iter()
                        .map(|&(c, w)| if bit(c) { w } else { 0 })
                        .sum::<u64>();
                a > b
            }
        }
    }

    #[test]
    fn census_separates_unit_from_weighted_gates() {
        use c2nn_tensor::Csr;
        // one layer: a unit AND, a weighted OR, and a counter row
        let rows: &[(Vec<(u32, f32)>, f32)] = &[
            (vec![(0, 1.0), (1, 1.0)], -1.0), // unit AND
            (vec![(0, 3.0), (1, 5.0)], -2.0), // weighted OR
            (vec![(0, 3.0), (1, 5.0)], -4.0), // counter fallback
        ];
        let mut triples = Vec::new();
        for (r, (ws, _)) in rows.iter().enumerate() {
            for &(c, w) in ws {
                triples.push((r as u32, c, w));
            }
        }
        let threshold_layer = crate::layer::NnLayer {
            weights: Csr::from_triplets(rows.len(), 2, triples),
            bias: rows.iter().map(|(_, b)| *b).collect(),
            activation: Activation2::Threshold,
        };
        let nn = CompiledNn {
            name: "census".into(),
            layers: vec![threshold_layer],
            num_primary_inputs: 2,
            num_primary_outputs: 3,
            state_init: vec![],
            gate_count: 3,
            lut_size: 2,
        };
        let plan = BitplaneNn::from_compiled(&nn).unwrap();
        let census = plan.row_classes;
        assert_eq!(census.unit_gate, 1);
        assert_eq!(census.weighted_gate, 1);
        assert_eq!(census.counter, 1);
        assert_eq!(census.total(), 3);
        assert!((census.coverage() - 2.0 / 3.0).abs() < 1e-12);
        let (cheap, weighted) = plan.modeled_units();
        assert!(cheap > 0.0 && weighted > 0.0);
    }

    #[test]
    fn linear_rows_classify_to_parity() {
        use Activation2::Linear as L;
        assert_eq!(
            classify(&[(0, 1), (1, -1), (2, 2)], 0, L),
            RowOp::Xor {
                srcs: vec![0, 1],
                invert: false
            }
        );
        assert_eq!(classify(&[(4, 1)], 0, L), RowOp::Copy(4));
        assert_eq!(classify(&[(4, -1)], 1, L), RowOp::Not(4));
        assert_eq!(classify(&[(4, 2)], 1, L), RowOp::Const(true));
        assert_eq!(classify(&[], 0, L), RowOp::Const(false));
    }
}
