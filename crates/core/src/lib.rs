//! # c2nn-core
//!
//! The paper's primary contribution: a compiler that converts any digital
//! circuit into a **computationally equivalent** sparse neural network, and
//! a batched simulator that exploits both *structural* parallelism (all
//! neurons of a layer at once) and *stimulus* parallelism (many testbenches
//! per forward pass).
//!
//! ## Pipeline (paper Fig. 1)
//!
//! 1. clock unification + flip-flop cut (`c2nn-netlist::seq`, §III-C);
//! 2. LUT splitting with parameter `L` (`c2nn-lutmap`, §III-B1 / Fig. 3);
//! 3. truth table → multilinear polynomial, Algorithm 1 (`c2nn-boolfn`);
//! 4. polynomial → two-layer threshold block, lowered into the mid-level
//!    [`NnGraph`](ir::NnGraph) IR (Fig. 2, Eq. 3);
//! 5. optimization passes over the IR — cross-LUT monomial CSE, dead-neuron
//!    elimination, constant folding, and the Fig. 5 depth-halving merge —
//!    each instrumented into a [`CompileReport`];
//! 6. `legalize` → sparse CSR layers executed by `c2nn-tensor` (§III-E/F).
//!
//! The result is *exact*: for every input sequence the network produces
//! bit-identical outputs to the circuit (verified against `c2nn-refsim` in
//! the integration suite — the paper's §IV-A check).
//!
//! ```
//! use c2nn_netlist::{NetlistBuilder, WordOps};
//! use c2nn_core::{compile, CompileOptions};
//!
//! // build a 4-bit adder and compile it at L = 4
//! let mut b = NetlistBuilder::new("add4");
//! let a = b.input_word("a", 4);
//! let c = b.input_word("b", 4);
//! let s = b.add_word(&a, &c);
//! b.output_word(&s, "s");
//! let nl = b.finish().unwrap();
//!
//! let nn = compile(&nl, CompileOptions::with_l(4)).unwrap();
//! // 3 + 9 = 12
//! let mut input = vec![false; 8];
//! input[0] = true; input[1] = true;           // a = 3
//! input[4] = true; input[7] = true;           // b = 9
//! let out = nn.eval(&input);
//! let sum: u32 = out.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
//! assert_eq!(sum, 12);
//! ```

pub mod bitplane;
pub mod compile;
pub mod faults;
pub mod ir;
pub mod layer;
pub mod model;
pub mod session;
pub mod sim;
pub mod testbench;
pub mod validate;

pub use bitplane::{
    BitTensor, BitplaneError, BitplaneNn, BitplaneRunner, BitplaneSimulator, RowClassCensus,
};
pub use compile::{
    compile, compile_as, compile_bitplane, compile_graph, compile_graph_with_report,
    compile_with_report, CompileError, CompileOptions, CompiledNn,
};
pub use faults::FaultSite;
pub use ir::passes::{PassId, PassSet};
pub use ir::report::{CompileReport, IrMetrics, PassStat};
pub use ir::NnGraph;
pub use layer::{Activation2, NnLayer};
pub use model::ModelError;
pub use session::{Session, SessionRunner};
pub use sim::{batch_from_bits, SimError, Simulator};
pub use testbench::{format_stim, parse_stim, run_batch, BenchResult, StimError, Stimulus};
pub use validate::{ValidateError, ValidationReport};
