//! Model (de)serialization with validation at the trust boundary.
//!
//! A compiled network is persisted as a small self-describing JSON document
//! (`"format": "c2nn-model"`, version 1) carrying the header, per-layer CSR
//! weights, and biases. Deserialization is *guarded*: every structural error
//! is a typed [`ModelError`] (never a panic), CSR buffers are rebuilt through
//! [`Csr::try_from_raw_parts`], numeric values must be exactly representable
//! in the target scalar, and the decoded model must pass
//! [`CompiledNn::validate`] before it is handed to the caller. A corrupt or
//! hand-edited `model.json` therefore cannot reach the simulator.

use crate::compile::CompiledNn;
use crate::layer::{Activation2, NnLayer};
use crate::validate::ValidateError;
use c2nn_json::{DecodeError, FromStrError, Json, ToJson};
use c2nn_tensor::{Csr, CsrError, Scalar};
use std::fmt;

/// Current schema version written by [`CompiledNn::to_json_string`].
pub const MODEL_FORMAT: &str = "c2nn-model";
/// Current schema version number.
pub const MODEL_VERSION: u32 = 1;

/// Why a model document was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// The text is not JSON or does not have the expected shape (the payload
    /// carries line/column or field-path information).
    Json(FromStrError),
    /// The `format` tag is not [`MODEL_FORMAT`].
    BadFormat {
        /// what the document claimed to be
        found: String,
    },
    /// The `version` field is not one this reader understands.
    BadVersion {
        /// the version found
        found: u32,
    },
    /// The document was serialized for a different scalar type.
    DtypeMismatch {
        /// dtype this reader was asked to produce
        expected: &'static str,
        /// dtype recorded in the document
        found: String,
    },
    /// A serialized number cannot be represented exactly in the target
    /// scalar (e.g. 2^40 into an `i32` model, or 0.1 into any model).
    NonRepresentable {
        /// layer the value belongs to
        layer: usize,
        /// description of the location, e.g. `values[3]`
        what: String,
        /// the offending number
        value: f64,
    },
    /// The CSR buffers do not form a well-formed matrix.
    Csr {
        /// offending layer
        layer: usize,
        /// the structural defect
        error: CsrError,
    },
    /// The decoded model failed semantic validation.
    Validate(ValidateError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Json(e) => write!(f, "invalid model document: {e}"),
            ModelError::BadFormat { found } => {
                write!(f, "not a c2nn model (format tag `{found}`)")
            }
            ModelError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported model version {found} (this build reads {MODEL_VERSION})"
                )
            }
            ModelError::DtypeMismatch { expected, found } => {
                write!(
                    f,
                    "model was saved with dtype `{found}`, expected `{expected}`"
                )
            }
            ModelError::NonRepresentable { layer, what, value } => write!(
                f,
                "layer {layer}: {what} = {value} is not exactly representable in the target dtype"
            ),
            ModelError::Csr { layer, error } => {
                write!(f, "layer {layer}: malformed weight matrix: {error}")
            }
            ModelError::Validate(e) => write!(f, "model failed validation: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<FromStrError> for ModelError {
    fn from(e: FromStrError) -> Self {
        ModelError::Json(e)
    }
}

impl From<ValidateError> for ModelError {
    fn from(e: ValidateError) -> Self {
        ModelError::Validate(e)
    }
}

fn decode_err(e: DecodeError) -> ModelError {
    ModelError::Json(FromStrError::Decode(e))
}

impl<T: Scalar> CompiledNn<T> {
    /// Serialize to a compact JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Serialize to an indented JSON document (for humans and diffs).
    pub fn to_json_string_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }

    fn to_json(&self) -> Json {
        let layers = self
            .layers
            .iter()
            .map(|layer| {
                let (row_ptr, col_idx, values) = layer.weights.raw();
                Json::Obj(vec![
                    (
                        "activation".into(),
                        Json::Str(
                            match layer.activation {
                                Activation2::Threshold => "threshold",
                                Activation2::Linear => "linear",
                            }
                            .into(),
                        ),
                    ),
                    ("rows".into(), (layer.weights.rows() as u64).to_json()),
                    ("cols".into(), (layer.weights.cols() as u64).to_json()),
                    ("row_ptr".into(), row_ptr.to_vec().to_json()),
                    ("col_idx".into(), col_idx.to_vec().to_json()),
                    (
                        "values".into(),
                        Json::Arr(values.iter().map(|v| Json::Num(v.to_f64())).collect()),
                    ),
                    (
                        "bias".into(),
                        Json::Arr(layer.bias.iter().map(|v| Json::Num(v.to_f64())).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("format".into(), Json::Str(MODEL_FORMAT.into())),
            ("version".into(), MODEL_VERSION.to_json()),
            ("dtype".into(), Json::Str(T::NAME.into())),
            ("name".into(), Json::Str(self.name.clone())),
            ("lut_size".into(), self.lut_size.to_json()),
            (
                "num_primary_inputs".into(),
                self.num_primary_inputs.to_json(),
            ),
            (
                "num_primary_outputs".into(),
                self.num_primary_outputs.to_json(),
            ),
            ("state_init".into(), self.state_init.to_json()),
            ("gate_count".into(), self.gate_count.to_json()),
            ("layers".into(), Json::Arr(layers)),
        ])
    }

    /// Parse, decode, and **validate** a model document. Any defect —
    /// syntax, shape, dtype, CSR structure, numeric representability, or a
    /// semantic invariant — comes back as a typed [`ModelError`].
    pub fn from_json_str(src: &str) -> Result<Self, ModelError> {
        let doc = c2nn_json::parse(src).map_err(|e| ModelError::Json(FromStrError::Syntax(e)))?;
        let format: String = c2nn_json::field(&doc, "format").map_err(decode_err)?;
        if format != MODEL_FORMAT {
            return Err(ModelError::BadFormat { found: format });
        }
        let version: u32 = c2nn_json::field(&doc, "version").map_err(decode_err)?;
        if version != MODEL_VERSION {
            return Err(ModelError::BadVersion { found: version });
        }
        let dtype: String = c2nn_json::field(&doc, "dtype").map_err(decode_err)?;
        if dtype != T::NAME {
            return Err(ModelError::DtypeMismatch {
                expected: T::NAME,
                found: dtype,
            });
        }

        let layers_json = doc
            .get("layers")
            .and_then(Json::as_arr)
            .ok_or_else(|| decode_err(DecodeError::new("missing or non-array field `layers`")))?;
        let mut layers = Vec::with_capacity(layers_json.len());
        for (i, lj) in layers_json.iter().enumerate() {
            layers.push(decode_layer::<T>(i, lj)?);
        }

        let nn = CompiledNn {
            name: c2nn_json::field(&doc, "name").map_err(decode_err)?,
            layers,
            num_primary_inputs: c2nn_json::field(&doc, "num_primary_inputs").map_err(decode_err)?,
            num_primary_outputs: c2nn_json::field(&doc, "num_primary_outputs")
                .map_err(decode_err)?,
            state_init: c2nn_json::field(&doc, "state_init").map_err(decode_err)?,
            gate_count: c2nn_json::field(&doc, "gate_count").map_err(decode_err)?,
            lut_size: c2nn_json::field(&doc, "lut_size").map_err(decode_err)?,
        };
        nn.validate()?;
        Ok(nn)
    }
}

fn decode_layer<T: Scalar>(i: usize, lj: &Json) -> Result<NnLayer<T>, ModelError> {
    let activation: String = c2nn_json::field(lj, "activation")
        .map_err(|e| decode_err(e.in_index(i).in_field("layers")))?;
    let activation = match activation.as_str() {
        "threshold" => Activation2::Threshold,
        "linear" => Activation2::Linear,
        other => {
            return Err(decode_err(
                DecodeError::new(format!("unknown activation `{other}`"))
                    .in_field("activation")
                    .in_index(i)
                    .in_field("layers"),
            ))
        }
    };
    let rows: usize =
        c2nn_json::field(lj, "rows").map_err(|e| decode_err(e.in_index(i).in_field("layers")))?;
    let cols: usize =
        c2nn_json::field(lj, "cols").map_err(|e| decode_err(e.in_index(i).in_field("layers")))?;
    let row_ptr: Vec<u32> = c2nn_json::field(lj, "row_ptr")
        .map_err(|e| decode_err(e.in_index(i).in_field("layers")))?;
    let col_idx: Vec<u32> = c2nn_json::field(lj, "col_idx")
        .map_err(|e| decode_err(e.in_index(i).in_field("layers")))?;
    let values = decode_scalars::<T>(i, lj, "values")?;
    let bias = decode_scalars::<T>(i, lj, "bias")?;
    let weights = Csr::try_from_raw_parts(rows, cols, row_ptr, col_idx, values)
        .map_err(|error| ModelError::Csr { layer: i, error })?;
    Ok(NnLayer {
        weights,
        bias,
        activation,
    })
}

/// Decode an array of numbers into `T`, insisting on exact representability.
/// `null` entries (how non-finite floats serialize) decode to NaN for float
/// scalars — the validator then rejects them by name — and are errors for
/// integer scalars.
fn decode_scalars<T: Scalar>(layer: usize, lj: &Json, name: &str) -> Result<Vec<T>, ModelError> {
    let arr = lj.get(name).and_then(Json::as_arr).ok_or_else(|| {
        decode_err(
            DecodeError::new(format!("missing or non-array field `{name}`"))
                .in_index(layer)
                .in_field("layers"),
        )
    })?;
    let mut out = Vec::with_capacity(arr.len());
    for (k, item) in arr.iter().enumerate() {
        let f = match item {
            Json::Null => f64::NAN,
            Json::Num(n) => *n,
            _ => {
                return Err(decode_err(
                    DecodeError::new("expected number")
                        .in_index(k)
                        .in_field(name)
                        .in_index(layer)
                        .in_field("layers"),
                ))
            }
        };
        let v = T::from_f64_exact(f).ok_or(ModelError::NonRepresentable {
            layer,
            what: format!("{name}[{k}]"),
            value: f,
        })?;
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CompiledNn<f32> {
        CompiledNn {
            name: "tiny".into(),
            layers: vec![
                NnLayer {
                    weights: Csr::from_triplets(
                        2,
                        3,
                        vec![(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0), (1, 2, -2.0)],
                    ),
                    bias: vec![-1.0, 1.0],
                    activation: Activation2::Threshold,
                },
                NnLayer {
                    weights: Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]),
                    bias: vec![0.0, 0.0],
                    activation: Activation2::Linear,
                },
            ],
            num_primary_inputs: 2,
            num_primary_outputs: 1,
            state_init: vec![true],
            gate_count: 2,
            lut_size: 2,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let nn = tiny();
        let text = nn.to_json_string_pretty();
        let back = CompiledNn::<f32>::from_json_str(&text).unwrap();
        assert_eq!(back.name, nn.name);
        assert_eq!(back.num_primary_inputs, 2);
        assert_eq!(back.num_primary_outputs, 1);
        assert_eq!(back.state_init, vec![true]);
        assert_eq!(back.gate_count, 2);
        assert_eq!(back.lut_size, 2);
        assert_eq!(back.layers.len(), 2);
        for (a, b) in back.layers.iter().zip(nn.layers.iter()) {
            assert_eq!(a.activation, b.activation);
            assert_eq!(a.bias, b.bias);
            assert_eq!(a.weights.raw(), b.weights.raw());
        }
    }

    #[test]
    fn garbage_is_a_syntax_error_not_a_panic() {
        let err = CompiledNn::<f32>::from_json_str("{{{not json").unwrap_err();
        assert!(
            matches!(err, ModelError::Json(FromStrError::Syntax(_))),
            "{err:?}"
        );
    }

    #[test]
    fn wrong_format_tag_rejected() {
        let err =
            CompiledNn::<f32>::from_json_str(r#"{"format":"pickle","version":1}"#).unwrap_err();
        assert_eq!(
            err,
            ModelError::BadFormat {
                found: "pickle".into()
            }
        );
    }

    #[test]
    fn future_version_rejected() {
        let text = tiny()
            .to_json_string()
            .replace("\"version\":1", "\"version\":9");
        let err = CompiledNn::<f32>::from_json_str(&text).unwrap_err();
        assert_eq!(err, ModelError::BadVersion { found: 9 });
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let text = tiny().to_json_string();
        let err = CompiledNn::<i32>::from_json_str(&text).unwrap_err();
        assert_eq!(
            err,
            ModelError::DtypeMismatch {
                expected: "i32",
                found: "f32".into()
            }
        );
    }

    #[test]
    fn truncated_csr_rejected() {
        // drop one col_idx entry: nnz bookkeeping no longer adds up
        let text =
            tiny()
                .to_json_string()
                .replacen("\"col_idx\":[0,1,1,2]", "\"col_idx\":[0,1,1]", 1);
        let err = CompiledNn::<f32>::from_json_str(&text).unwrap_err();
        assert!(matches!(err, ModelError::Csr { layer: 0, .. }), "{err:?}");
    }

    #[test]
    fn permuted_col_idx_rejected() {
        let text =
            tiny()
                .to_json_string()
                .replacen("\"col_idx\":[0,1,1,2]", "\"col_idx\":[1,0,2,1]", 1);
        let err = CompiledNn::<f32>::from_json_str(&text).unwrap_err();
        assert!(matches!(err, ModelError::Csr { layer: 0, .. }), "{err:?}");
    }

    #[test]
    fn non_finite_weight_rejected_by_validator() {
        // Non-finite floats serialize as null, decode to NaN, and the
        // validator rejects them by name.
        let mut nn = tiny();
        nn.layers[0].weights.values_mut()[0] = f32::NAN;
        let text = nn.to_json_string();
        assert!(text.contains("null"));
        let err = CompiledNn::<f32>::from_json_str(&text).unwrap_err();
        assert!(
            matches!(
                err,
                ModelError::Validate(ValidateError::NonFinite { layer: 0, .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn mismatched_widths_rejected_by_validator() {
        let text = tiny()
            .to_json_string()
            .replace("\"num_primary_inputs\":2", "\"num_primary_inputs\":7");
        let err = CompiledNn::<f32>::from_json_str(&text).unwrap_err();
        assert!(
            matches!(
                err,
                ModelError::Validate(ValidateError::WidthMismatch { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn fractional_weight_not_representable_in_i32() {
        let json = r#"{"format":"c2nn-model","version":1,"dtype":"i32","name":"x",
            "lut_size":2,"num_primary_inputs":1,"num_primary_outputs":1,
            "state_init":[],"gate_count":1,
            "layers":[{"activation":"threshold","rows":1,"cols":1,
                       "row_ptr":[0,1],"col_idx":[0],"values":[0.5],"bias":[0]}]}"#;
        let err = CompiledNn::<i32>::from_json_str(json).unwrap_err();
        assert!(
            matches!(err, ModelError::NonRepresentable { layer: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn i32_roundtrip() {
        let json = r#"{"format":"c2nn-model","version":1,"dtype":"i32","name":"x",
            "lut_size":2,"num_primary_inputs":1,"num_primary_outputs":1,
            "state_init":[],"gate_count":1,
            "layers":[{"activation":"threshold","rows":1,"cols":1,
                       "row_ptr":[0,1],"col_idx":[0],"values":[1],"bias":[0]}]}"#;
        let nn = CompiledNn::<i32>::from_json_str(json).unwrap();
        let back = CompiledNn::<i32>::from_json_str(&nn.to_json_string()).unwrap();
        assert_eq!(back.layers[0].weights.raw(), nn.layers[0].weights.raw());
    }
}
