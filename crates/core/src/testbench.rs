//! Testbench stimulus files — the verification workflow the paper's
//! introduction targets ("the different verification benchmarks for ICs
//! have to be processed one after the other... no commercial simulator
//! exploits stimulus parallelism").
//!
//! A `.stim` file is a plain-text testbench: one line per cycle, each line
//! a string of `0`/`1` for the primary inputs (MSB first, matching the
//! waveform reading order), with optional `xN` repeat suffixes, `#`
//! comments, and blank lines. [`run_batch`] executes **many testbenches in
//! one batched simulation**, which is exactly the paper's pitch: one
//! forward pass per cycle advances every testbench at once.
//!
//! ```text
//! # counter testbench: reset, then count 5, then hold
//! 10
//! 01 x5
//! 00 x2
//! ```

use crate::compile::CompiledNn;
use crate::sim::Simulator;
use c2nn_tensor::{Dense, Device, Scalar};

/// A parsed stimulus sequence: per-cycle input bit vectors (LSB-first,
/// i.e. `inputs[j]` is primary input `j`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stimulus {
    pub cycles: Vec<Vec<bool>>,
}

/// Errors from [`parse_stim`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StimError {
    pub message: String,
    pub line: usize,
}

impl std::fmt::Display for StimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stimulus error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for StimError {}

/// Parse `.stim` text for a circuit with `num_inputs` primary inputs.
pub fn parse_stim(text: &str, num_inputs: usize) -> Result<Stimulus, StimError> {
    let mut cycles = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(bits_str) = parts.next() else {
            continue;
        };
        let repeat = match parts.next() {
            None => 1usize,
            Some(r) => {
                let r = r.strip_prefix('x').ok_or(StimError {
                    message: format!("expected xN repeat, got '{r}'"),
                    line: lineno + 1,
                })?;
                let n: usize = r.parse().map_err(|_| StimError {
                    message: format!("bad repeat count '{r}'"),
                    line: lineno + 1,
                })?;
                // bound the expansion: a hostile `x99999999999` repeat must
                // not allocate the testbench into oblivion
                if n == 0 || n > 1_000_000 {
                    return Err(StimError {
                        message: format!("repeat count {n} out of range (1..=1000000)"),
                        line: lineno + 1,
                    });
                }
                n
            }
        };
        if parts.next().is_some() {
            return Err(StimError {
                message: "trailing tokens".into(),
                line: lineno + 1,
            });
        }
        if bits_str.len() != num_inputs {
            return Err(StimError {
                message: format!("expected {num_inputs} input bits, got {}", bits_str.len()),
                line: lineno + 1,
            });
        }
        // MSB-first in the file → inputs[0] is the last character
        let mut bits = Vec::with_capacity(num_inputs);
        for c in bits_str.chars().rev() {
            bits.push(match c {
                '0' => false,
                '1' => true,
                other => {
                    return Err(StimError {
                        message: format!("bad bit character '{other}'"),
                        line: lineno + 1,
                    })
                }
            });
        }
        for _ in 0..repeat {
            cycles.push(bits.clone());
        }
    }
    Ok(Stimulus { cycles })
}

/// Render a stimulus back to `.stim` text (run-length encoded).
pub fn format_stim(stim: &Stimulus) -> String {
    let mut s = String::new();
    let mut i = 0;
    while i < stim.cycles.len() {
        let cur = &stim.cycles[i];
        let mut run = 1;
        while i + run < stim.cycles.len() && stim.cycles[i + run] == *cur {
            run += 1;
        }
        let bits: String = cur
            .iter()
            .rev()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        if run > 1 {
            s.push_str(&format!("{bits} x{run}\n"));
        } else {
            s.push_str(&bits);
            s.push('\n');
        }
        i += run;
    }
    s
}

/// The per-cycle outputs of one testbench (LSB-first bit vectors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchResult {
    pub cycles: Vec<Vec<bool>>,
}

/// Run many testbenches through one batched simulation: one simulator lane
/// per testbench, one forward pass per cycle across all of them. Shorter
/// testbenches idle (inputs held at zero) until the longest one finishes;
/// their recorded outputs stop at their own length.
pub fn run_batch<T: Scalar>(
    nn: &CompiledNn<T>,
    benches: &[Stimulus],
    device: Device,
) -> Vec<BenchResult> {
    let pi = nn.num_primary_inputs;
    let lanes = benches.len();
    let max_cycles = benches.iter().map(|b| b.cycles.len()).max().unwrap_or(0);
    let mut sim = Simulator::new(nn, lanes, device);
    let mut results: Vec<BenchResult> = benches
        .iter()
        .map(|_| BenchResult { cycles: Vec::new() })
        .collect();
    for c in 0..max_cycles {
        let rows: Vec<Vec<bool>> = benches
            .iter()
            .map(|b| b.cycles.get(c).cloned().unwrap_or_else(|| vec![false; pi]))
            .collect();
        let out = sim.step(&Dense::from_lanes(&rows)).to_lanes();
        for (lane, bench) in benches.iter().enumerate() {
            if c < bench.cycles.len() {
                results[lane].cycles.push(out[lane].clone());
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use c2nn_netlist::{NetlistBuilder, WordOps};

    #[test]
    fn parse_repeats_and_comments() {
        let s = parse_stim("# header comment\n10\n01 x3\n\n00 # inline\n", 2).unwrap();
        assert_eq!(s.cycles.len(), 5);
        // "10" MSB-first → input0 = 0, input1 = 1
        assert_eq!(s.cycles[0], vec![false, true]);
        assert_eq!(s.cycles[1], vec![true, false]);
        assert_eq!(s.cycles[4], vec![false, false]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_stim("101", 2).is_err()); // wrong width
        assert!(parse_stim("1x", 2).is_err()); // bad char
        assert!(parse_stim("10 y3", 2).is_err()); // bad repeat
        assert!(parse_stim("10 x3 junk", 2).is_err());
    }

    #[test]
    fn format_roundtrips_with_rle() {
        let s = parse_stim("10\n01 x4\n11\n", 2).unwrap();
        let text = format_stim(&s);
        assert_eq!(text, "10\n01 x4\n11\n");
        assert_eq!(parse_stim(&text, 2).unwrap(), s);
    }

    #[test]
    fn batched_testbenches_match_individual_runs() {
        // counter with enable: three testbenches of different lengths
        let mut b = NetlistBuilder::new("ctr");
        let clk = b.clock("clk");
        let en = b.input("en");
        let q = b.fresh_word("q", 4);
        let inc = b.inc_word(&q);
        let next = b.mux_word(en, &q, &inc);
        b.connect_ff_word(&next, &q, clk, None, None, 0, 0);
        b.output_word(&q, "q");
        let nl = b.finish().unwrap();
        let nn = compile(&nl, CompileOptions::with_l(4)).unwrap();

        let tb1 = parse_stim("1 x7\n", 1).unwrap();
        let tb2 = parse_stim("1 x2\n0 x2\n1 x2\n", 1).unwrap();
        let tb3 = parse_stim("0 x3\n", 1).unwrap();
        let batch = run_batch(
            &nn,
            &[tb1.clone(), tb2.clone(), tb3.clone()],
            Device::Serial,
        );
        // each result has its own length
        assert_eq!(batch[0].cycles.len(), 7);
        assert_eq!(batch[1].cycles.len(), 6);
        assert_eq!(batch[2].cycles.len(), 3);
        // batched == run alone
        for (i, tb) in [tb1, tb2, tb3].iter().enumerate() {
            let solo = run_batch(&nn, std::slice::from_ref(tb), Device::Serial);
            assert_eq!(batch[i], solo[0], "testbench {i}");
        }
        // and the counting is right: tb1 counts 0..6
        let vals: Vec<u32> = batch[0]
            .cycles
            .iter()
            .map(|c| c.iter().enumerate().map(|(k, &b)| (b as u32) << k).sum())
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
