//! The circuit → neural-network compiler (the paper's contributions 1–3),
//! organized as a pass pipeline over the mid-level IR.
//!
//! Pipeline: sequential netlist → clock unification + flip-flop cut
//! (`c2nn-netlist::seq`) → LUT mapping (`c2nn-lutmap`) → **lower** to the
//! un-merged [`NnGraph`](crate::ir::NnGraph) (Algorithm 1 polynomials, Fig. 2
//! two-layer blocks) → optimization passes (`constant-fold`, `monomial-cse`,
//! `dead-neuron-elim`, the Fig. 5 `layer-merge`) → **legalize** into a
//! [`CompiledNn`] of sparse integer layers. Every stage records wall time
//! and size metrics into a [`CompileReport`].

use crate::ir::passes::{legalize, PassId, PassManager, PassSet};
use crate::ir::report::{CompileReport, PassStat};
use crate::ir::{lower::lower, NnGraph};
use crate::layer::NnLayer;
use c2nn_lutmap::{map_netlist, LutGraph, MapConfig, MapError};
use c2nn_netlist::{prepare, Netlist, SeqError};
use c2nn_tensor::Scalar;

/// Compiler options.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Maximum LUT inputs — the paper's `L` hyperparameter.
    pub lut_size: usize,
    /// Cut candidates kept per net in the mapper.
    pub cuts_per_net: usize,
    /// Paper §V known-function shortcut: AND/OR/NAND/NOR gates wider than
    /// `L` become single neurons instead of LUT trees.
    pub wide_gates: bool,
    /// Which optimization passes run between lowering and legalization
    /// (always in canonical order). The merge ablation is
    /// `PassSet::all().without(PassId::LayerMerge)` — also the pass set
    /// the bit-plane backend prefers (see [`compile_bitplane`]).
    pub passes: PassSet,
}

impl CompileOptions {
    pub fn with_l(l: usize) -> Self {
        CompileOptions {
            lut_size: l,
            cuts_per_net: 8,
            wide_gates: false,
            passes: PassSet::all(),
        }
    }

    /// Enable the §V known-function shortcut.
    pub fn with_wide_gates(mut self) -> Self {
        self.wide_gates = true;
        self
    }

    /// Select the optimization passes to run.
    pub fn with_passes(mut self, passes: PassSet) -> Self {
        self.passes = passes;
        self
    }

    /// Check option ranges before doing any work: the mapper requires
    /// `2 ≤ lut_size ≤ 16` and at least one cut candidate per net.
    pub fn validate(&self) -> Result<(), CompileError> {
        if !(2..=16).contains(&self.lut_size) {
            return Err(CompileError::InvalidOptions {
                field: "lut_size",
                value: self.lut_size,
                expected: "2..=16",
            });
        }
        if self.cuts_per_net < 1 {
            return Err(CompileError::InvalidOptions {
                field: "cuts_per_net",
                value: self.cuts_per_net,
                expected: "≥ 1",
            });
        }
        Ok(())
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self::with_l(7)
    }
}

/// Compiler errors.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// A [`CompileOptions`] field is out of range.
    InvalidOptions {
        field: &'static str,
        value: usize,
        expected: &'static str,
    },
    /// Clock unification / flip-flop cut failed (source preserved).
    Seq(SeqError),
    /// LUT mapping failed (source preserved).
    Map(MapError),
    /// A merged coefficient exceeded what the target scalar represents
    /// exactly (f32 is exact only to ±2^24).
    CoefficientOverflow { value: i64, limit: i64 },
    /// Legalizing to the bit-plane backend failed (source preserved).
    Bitplane(crate::bitplane::BitplaneError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::InvalidOptions {
                field,
                value,
                expected,
            } => {
                write!(
                    f,
                    "invalid CompileOptions: {field} = {value} (expected {expected})"
                )
            }
            CompileError::Seq(e) => write!(f, "sequential preparation failed: {e}"),
            CompileError::Map(e) => write!(f, "LUT mapping failed: {e}"),
            CompileError::CoefficientOverflow { value, limit } => write!(
                f,
                "merged weight {value} exceeds the exact range ±{limit} of the target dtype"
            ),
            CompileError::Bitplane(e) => write!(f, "bit-plane legalization failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Seq(e) => Some(e),
            CompileError::Map(e) => Some(e),
            CompileError::Bitplane(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SeqError> for CompileError {
    fn from(e: SeqError) -> Self {
        CompileError::Seq(e)
    }
}

impl From<MapError> for CompileError {
    fn from(e: MapError) -> Self {
        CompileError::Map(e)
    }
}

/// A compiled neural network, computationally equivalent to the source
/// circuit. Layer `i` feeds layer `i+1`; the input vector is
/// `[primary inputs ‖ state]` and the output vector `[primary outputs ‖
/// next state]` (after the paper's flip-flop cut).
#[derive(Clone, Debug)]
pub struct CompiledNn<T> {
    pub name: String,
    pub layers: Vec<NnLayer<T>>,
    pub num_primary_inputs: usize,
    pub num_primary_outputs: usize,
    /// Power-on flip-flop values (empty for combinational circuits).
    pub state_init: Vec<bool>,
    /// Gate count of the source circuit (throughput accounting).
    pub gate_count: usize,
    /// The `L` used for compilation.
    pub lut_size: usize,
}

impl<T: Scalar> CompiledNn<T> {
    /// Number of state bits.
    pub fn state_bits(&self) -> usize {
        self.state_init.len()
    }

    /// Total input width of the first layer (primary + state).
    pub fn in_width(&self) -> usize {
        self.layers
            .first()
            .map(|l| l.in_width())
            .unwrap_or(self.num_primary_inputs + self.state_bits())
    }

    /// Total output width of the last layer (primary + state).
    pub fn out_width(&self) -> usize {
        self.layers
            .last()
            .map(|l| l.out_width())
            .unwrap_or(self.num_primary_outputs + self.state_bits())
    }

    /// Total nonzero connections (the paper's "Neurons' connections").
    pub fn connections(&self) -> usize {
        self.layers.iter().map(|l| l.weights.nnz()).sum()
    }

    /// Serialized-model byte estimate (the paper's "Memory (MB)").
    pub fn memory_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.memory_bytes()).sum()
    }

    /// Mean sparsity across layers (the paper's "Mean Sparsity").
    pub fn mean_sparsity(&self) -> f64 {
        if self.layers.is_empty() {
            return 1.0;
        }
        self.layers
            .iter()
            .map(|l| l.weights.sparsity())
            .sum::<f64>()
            / self.layers.len() as f64
    }

    /// Number of layers (the paper's "Layers" column).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Compile a netlist into a network with `f32` weights — the configuration
/// the paper ships (PyTorch sparse kernels are float-only, §III-E).
pub fn compile(nl: &Netlist, opts: CompileOptions) -> Result<CompiledNn<f32>, CompileError> {
    compile_as::<f32>(nl, opts)
}

/// Compile a netlist straight to the bit-plane backend: drops the
/// layer-merge pass (merging trades depth for dense integer rows — a win
/// for CSR arithmetic, but it forces the bit-plane executor into its
/// popcount fallback, whereas the unmerged threshold/linear alternation
/// legalizes to single word ops per neuron) and legalizes the result to a
/// [`BitplaneNn`](crate::bitplane::BitplaneNn). The scalar network is
/// returned alongside for differential checks and serving metadata.
/// (A merged network still runs correctly on the bit-plane backend; it is
/// just slower.)
pub fn compile_bitplane(
    nl: &Netlist,
    opts: CompileOptions,
) -> Result<(CompiledNn<f32>, crate::bitplane::BitplaneNn), CompileError> {
    let nn = compile(
        nl,
        opts.with_passes(opts.passes.without(PassId::LayerMerge)),
    )?;
    let plan = crate::bitplane::BitplaneNn::from_compiled(&nn).map_err(CompileError::Bitplane)?;
    Ok((nn, plan))
}

/// Compile with an explicit scalar type (`i32`/`i64` give the paper's
/// proposed integer kernels, §V).
pub fn compile_as<T: Scalar>(
    nl: &Netlist,
    opts: CompileOptions,
) -> Result<CompiledNn<T>, CompileError> {
    compile_with_report(nl, opts).map(|(nn, _)| nn)
}

/// Compile, also returning the per-pass [`CompileReport`] (the `--stats`
/// path and the bench harness's compile-stats experiment).
pub fn compile_with_report<T: Scalar>(
    nl: &Netlist,
    opts: CompileOptions,
) -> Result<(CompiledNn<T>, CompileReport), CompileError> {
    opts.validate()?;
    let t0 = std::time::Instant::now();
    let cut = prepare(nl)?;
    let graph = map_netlist(
        &cut.comb,
        MapConfig {
            max_inputs: opts.lut_size,
            cuts_per_net: opts.cuts_per_net,
            wide_gates: opts.wide_gates,
        },
    )?;
    let (nn, mut report) = compile_graph_with_report(
        &graph,
        nl.gate_count(),
        cut.num_primary_inputs,
        cut.num_primary_outputs,
        cut.state_init.clone(),
        opts,
    )?;
    report.total_s = t0.elapsed().as_secs_f64();
    Ok((nn, report))
}

/// Compile a LUT graph directly (the netlist-independent core).
pub fn compile_graph<T: Scalar>(
    graph: &LutGraph,
    gate_count: usize,
    num_primary_inputs: usize,
    num_primary_outputs: usize,
    state_init: Vec<bool>,
    opts: CompileOptions,
) -> Result<CompiledNn<T>, CompileError> {
    compile_graph_with_report(
        graph,
        gate_count,
        num_primary_inputs,
        num_primary_outputs,
        state_init,
        opts,
    )
    .map(|(nn, _)| nn)
}

/// [`compile_graph`] with the per-pass [`CompileReport`]: lower → pass
/// pipeline → legalize, instrumenting every stage.
pub fn compile_graph_with_report<T: Scalar>(
    graph: &LutGraph,
    gate_count: usize,
    num_primary_inputs: usize,
    num_primary_outputs: usize,
    state_init: Vec<bool>,
    opts: CompileOptions,
) -> Result<(CompiledNn<T>, CompileReport), CompileError> {
    opts.validate()?;
    let mut report = CompileReport {
        circuit: graph.name.clone(),
        lut_size: opts.lut_size,
        ..CompileReport::default()
    };

    let t0 = std::time::Instant::now();
    let mut g: NnGraph = lower(
        graph,
        gate_count,
        num_primary_inputs,
        num_primary_outputs,
        state_init,
        opts.lut_size,
    );
    let lowered = g.metrics();
    report.passes.push(PassStat {
        pass: "lower".to_string(),
        wall_s: t0.elapsed().as_secs_f64(),
        before: lowered,
        after: lowered,
    });

    PassManager::from_set(opts.passes).run(&mut g, &mut report);

    let t1 = std::time::Instant::now();
    let nn = legalize::<T>(&g)?;
    let after = g.metrics();
    report.passes.push(PassStat {
        pass: "legalize".to_string(),
        wall_s: t1.elapsed().as_secs_f64(),
        before: after,
        after,
    });
    report.total_s = report.passes.iter().map(|p| p.wall_s).sum();
    Ok((nn, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::passes::PassId;
    use c2nn_netlist::WordOps;

    #[test]
    fn options_validate_ranges() {
        assert!(CompileOptions::with_l(4).validate().is_ok());
        let mut bad = CompileOptions::with_l(4);
        bad.lut_size = 1;
        assert!(matches!(
            bad.validate(),
            Err(CompileError::InvalidOptions {
                field: "lut_size",
                ..
            })
        ));
        bad.lut_size = 17;
        assert!(bad.validate().is_err());
        let mut bad2 = CompileOptions::with_l(4);
        bad2.cuts_per_net = 0;
        assert!(matches!(
            bad2.validate(),
            Err(CompileError::InvalidOptions {
                field: "cuts_per_net",
                ..
            })
        ));
        // compile rejects bad options up front
        let nl = c2nn_netlist::NetlistBuilder::new("t").finish().unwrap();
        let mut opts = CompileOptions::with_l(4);
        opts.cuts_per_net = 0;
        assert!(compile(&nl, opts).is_err());
    }

    #[test]
    fn seq_and_map_errors_preserve_their_source() {
        use std::error::Error;
        // two clock domains → SeqError::MultipleClocks, matchable by callers
        let mut b = c2nn_netlist::NetlistBuilder::new("two_clk");
        let c1 = b.clock("clk_a");
        let c2 = b.clock("clk_b");
        let d = b.input("d");
        let q1 = b.dff(d, c1, false);
        let q2 = b.dff(q1, c2, false);
        b.output(q2, "q");
        let nl = b.finish().unwrap();
        let err = compile(&nl, CompileOptions::with_l(4)).unwrap_err();
        match &err {
            CompileError::Seq(SeqError::MultipleClocks(clocks)) => {
                assert_eq!(clocks.len(), 2);
            }
            other => panic!("expected Seq(MultipleClocks), got {other:?}"),
        }
        assert!(err.source().is_some(), "source chain must be preserved");
        assert!(err.to_string().contains("sequential preparation failed"));
    }

    #[test]
    fn report_records_every_stage() {
        let mut b = c2nn_netlist::NetlistBuilder::new("add4");
        let a = b.input_word("a", 4);
        let c = b.input_word("b", 4);
        let s = b.add_word(&a, &c);
        b.output_word(&s, "s");
        let nl = b.finish().unwrap();
        let (nn, report) = compile_with_report::<f32>(&nl, CompileOptions::with_l(4)).unwrap();
        let stages: Vec<&str> = report.passes.iter().map(|p| p.pass.as_str()).collect();
        assert_eq!(
            stages,
            vec![
                "lower",
                "constant-fold",
                "monomial-cse",
                "dead-neuron-elim",
                "layer-merge",
                "legalize"
            ]
        );
        // the legalized artifact matches the final IR metrics
        let fin = report.final_metrics().unwrap();
        assert_eq!(fin.layers, nn.num_layers());
        assert_eq!(fin.nnz, nn.connections());
        assert!(report.total_s >= 0.0);
    }

    #[test]
    fn pass_subset_skips_unselected_passes() {
        let mut b = c2nn_netlist::NetlistBuilder::new("add2");
        let a = b.input_word("a", 2);
        let c = b.input_word("b", 2);
        let s = b.add_word(&a, &c);
        b.output_word(&s, "s");
        let nl = b.finish().unwrap();
        let opts = CompileOptions::with_l(3).with_passes(PassSet::none().with(PassId::LayerMerge));
        let (_, report) = compile_with_report::<f32>(&nl, opts).unwrap();
        let stages: Vec<&str> = report.passes.iter().map(|p| p.pass.as_str()).collect();
        assert_eq!(stages, vec!["lower", "layer-merge", "legalize"]);
    }
}
