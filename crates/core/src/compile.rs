//! The circuit → neural-network compiler (the paper's contributions 1–3).
//!
//! Pipeline: sequential netlist → clock unification + flip-flop cut
//! (`c2nn-netlist::seq`) → LUT mapping (`c2nn-lutmap`) → one multilinear
//! polynomial per LUT (**Algorithm 1**, `c2nn-boolfn`) → two NN layers per
//! computation-graph level (Fig. 2) → layer merging that halves the depth
//! (Fig. 5) → [`CompiledNn`] of sparse integer layers.

use crate::layer::{Activation2, NnLayer};
use c2nn_boolfn::lut_to_poly;
use c2nn_lutmap::{map_netlist, LutGraph, LutNode, MapConfig, MapError, NodeFunc};
use c2nn_netlist::{prepare, Netlist, SeqError};
use c2nn_tensor::{Csr, Scalar};
use std::collections::HashMap;

/// Compiler options.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Maximum LUT inputs — the paper's `L` hyperparameter.
    pub lut_size: usize,
    /// Apply the Fig. 5 depth-halving merge (on by default; off only for
    /// the ablation).
    pub merge_layers: bool,
    /// Cut candidates kept per net in the mapper.
    pub cuts_per_net: usize,
    /// Paper §V known-function shortcut: AND/OR/NAND/NOR gates wider than
    /// `L` become single neurons instead of LUT trees.
    pub wide_gates: bool,
}

impl CompileOptions {
    pub fn with_l(l: usize) -> Self {
        CompileOptions {
            lut_size: l,
            merge_layers: true,
            cuts_per_net: 8,
            wide_gates: false,
        }
    }

    /// Enable the §V known-function shortcut.
    pub fn with_wide_gates(mut self) -> Self {
        self.wide_gates = true;
        self
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self::with_l(7)
    }
}

/// Compiler errors.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    Seq(String),
    Map(String),
    /// A merged coefficient exceeded what the target scalar represents
    /// exactly (f32 is exact only to ±2^24).
    CoefficientOverflow { value: i64, limit: i64 },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Seq(m) | CompileError::Map(m) => write!(f, "{m}"),
            CompileError::CoefficientOverflow { value, limit } => write!(
                f,
                "merged weight {value} exceeds the exact range ±{limit} of the target dtype"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<SeqError> for CompileError {
    fn from(e: SeqError) -> Self {
        CompileError::Seq(e.to_string())
    }
}

impl From<MapError> for CompileError {
    fn from(e: MapError) -> Self {
        CompileError::Map(e.to_string())
    }
}

/// A compiled neural network, computationally equivalent to the source
/// circuit. Layer `i` feeds layer `i+1`; the input vector is
/// `[primary inputs ‖ state]` and the output vector `[primary outputs ‖
/// next state]` (after the paper's flip-flop cut).
#[derive(Clone, Debug)]
pub struct CompiledNn<T> {
    pub name: String,
    pub layers: Vec<NnLayer<T>>,
    pub num_primary_inputs: usize,
    pub num_primary_outputs: usize,
    /// Power-on flip-flop values (empty for combinational circuits).
    pub state_init: Vec<bool>,
    /// Gate count of the source circuit (throughput accounting).
    pub gate_count: usize,
    /// The `L` used for compilation.
    pub lut_size: usize,
}

impl<T: Scalar> CompiledNn<T> {
    /// Number of state bits.
    pub fn state_bits(&self) -> usize {
        self.state_init.len()
    }

    /// Total input width of the first layer (primary + state).
    pub fn in_width(&self) -> usize {
        self.layers
            .first()
            .map(|l| l.in_width())
            .unwrap_or(self.num_primary_inputs + self.state_bits())
    }

    /// Total output width of the last layer (primary + state).
    pub fn out_width(&self) -> usize {
        self.layers
            .last()
            .map(|l| l.out_width())
            .unwrap_or(self.num_primary_outputs + self.state_bits())
    }

    /// Total nonzero connections (the paper's "Neurons' connections").
    pub fn connections(&self) -> usize {
        self.layers.iter().map(|l| l.weights.nnz()).sum()
    }

    /// Serialized-model byte estimate (the paper's "Memory (MB)").
    pub fn memory_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.memory_bytes()).sum()
    }

    /// Mean sparsity across layers (the paper's "Mean Sparsity").
    pub fn mean_sparsity(&self) -> f64 {
        if self.layers.is_empty() {
            return 1.0;
        }
        self.layers.iter().map(|l| l.weights.sparsity()).sum::<f64>() / self.layers.len() as f64
    }

    /// Number of layers (the paper's "Layers" column).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Compile a netlist into a network with `f32` weights — the configuration
/// the paper ships (PyTorch sparse kernels are float-only, §III-E).
pub fn compile(nl: &Netlist, opts: CompileOptions) -> Result<CompiledNn<f32>, CompileError> {
    compile_as::<f32>(nl, opts)
}

/// Compile with an explicit scalar type (`i32`/`i64` give the paper's
/// proposed integer kernels, §V).
pub fn compile_as<T: Scalar>(
    nl: &Netlist,
    opts: CompileOptions,
) -> Result<CompiledNn<T>, CompileError> {
    let cut = prepare(nl)?;
    let graph = map_netlist(&cut.comb, MapConfig {
        max_inputs: opts.lut_size,
        cuts_per_net: opts.cuts_per_net,
        wide_gates: opts.wide_gates,
    })?;
    compile_graph(
        &graph,
        nl.gate_count(),
        cut.num_primary_inputs,
        cut.num_primary_outputs,
        cut.state_init.clone(),
        opts,
    )
}

/// Integer layer under construction (exact i64 until the final cast).
struct RawLayer {
    rows: usize,
    cols: usize,
    trips: Vec<(u32, u32, i64)>,
    bias: Vec<i64>,
}

impl RawLayer {
    fn new(rows: usize, cols: usize) -> Self {
        RawLayer {
            rows,
            cols,
            trips: Vec::new(),
            bias: vec![0; rows],
        }
    }

    fn to_csr(&self) -> Csr<i64> {
        Csr::from_triplets(
            self.rows,
            self.cols,
            self.trips
                .iter()
                .map(|&(r, c, v)| (r, c, v))
                .collect(),
        )
    }
}

/// Compile a LUT graph directly (the netlist-independent core).
pub fn compile_graph<T: Scalar>(
    graph: &LutGraph,
    gate_count: usize,
    num_primary_inputs: usize,
    num_primary_outputs: usize,
    state_init: Vec<bool>,
    opts: CompileOptions,
) -> Result<CompiledNn<T>, CompileError> {
    let levels = graph.levels();
    let depth = graph.depth() as usize;
    // last level at which each signal is read; outputs stay alive forever
    let alive_until = compute_liveness(graph, &levels, depth);

    // --- build the unmerged block sequence: per level t (1..=depth),
    //     Hidden_t = Θ(W1_t · S_{t-1} + b1_t); S_t = W2_t · Hidden_t + c_t ---
    let mut blocks: Vec<(RawLayer, RawLayer)> = Vec::new();
    // columns of the current signal layer: signal id -> column
    let mut sig_col: HashMap<u32, u32> = HashMap::new();
    for (i, _) in (0..graph.num_inputs).enumerate() {
        sig_col.insert(i as u32, i as u32);
    }
    let mut cur_width = graph.num_inputs;

    // neuron blocks per node, computed once: Algorithm 1 for tables,
    // closed-form single neurons for wide known-function nodes (§V)
    let blocks_pre: Vec<NodeBlock> = graph.nodes.iter().map(node_block).collect();

    for t in 1..=depth {
        // signals of the next signal layer
        let next_sigs: Vec<u32> = if t == depth {
            graph.outputs.clone()
        } else {
            (0..graph.num_signals() as u32)
                .filter(|&s| {
                    let lv = levels[s as usize] as usize;
                    lv == t || (lv < t && alive_until[s as usize] > t)
                })
                .collect()
        };
        // hidden neurons: terms of level-t nodes + pass-throughs
        // pass-through set: signals in next layer with level < t (dedup)
        let mut pass: Vec<u32> = next_sigs
            .iter()
            .copied()
            .filter(|&s| (levels[s as usize] as usize) < t)
            .collect();
        pass.sort_unstable();
        pass.dedup();

        let mut hidden_count = 0usize;
        // (node idx at level t) -> (first hidden idx of its terms)
        let mut node_terms: HashMap<u32, (usize, usize)> = HashMap::new(); // sig -> (start, len)
        let mut w1 = RawLayer::new(0, cur_width); // rows fixed later
        for (ni, node) in graph.nodes.iter().enumerate() {
            let sig = (graph.num_inputs + ni) as u32;
            if levels[sig as usize] as usize != t {
                continue;
            }
            // skip nodes that are not alive (defensive; mapper never emits them)
            if alive_until[sig as usize] < t && !graph.outputs.contains(&sig) && t != depth {
                continue;
            }
            let blk = &blocks_pre[ni];
            let start = hidden_count;
            for (weights, bias) in &blk.hidden {
                let row = hidden_count as u32;
                for &(j, w) in weights {
                    let src = node.inputs[j];
                    let col = sig_col[&src];
                    w1.trips.push((row, col, w));
                }
                w1.bias.push(*bias);
                hidden_count += 1;
            }
            node_terms.insert(sig, (start, blk.hidden.len()));
        }
        let mut pass_idx: HashMap<u32, u32> = HashMap::new();
        for &s in &pass {
            let row = hidden_count as u32;
            w1.trips.push((row, sig_col[&s], 1));
            w1.bias.push(0); // Θ(x) = x for binary x
            pass_idx.insert(s, row);
            hidden_count += 1;
        }
        w1.rows = hidden_count;

        // linear output stage of the block
        let mut w2 = RawLayer::new(next_sigs.len(), hidden_count);
        for (row_i, &s) in next_sigs.iter().enumerate() {
            let row = row_i as u32;
            if (levels[s as usize] as usize) < t {
                w2.trips.push((row, pass_idx[&s], 1));
            } else {
                let ni = s as usize - graph.num_inputs;
                let blk = &blocks_pre[ni];
                let (start, _) = node_terms[&s];
                for &(h, coeff) in &blk.out {
                    w2.trips.push((row, (start + h) as u32, coeff));
                }
                w2.bias[row_i] += blk.out_bias;
            }
        }
        // fix bias length: RawLayer::new preallocated rows biases, w1 pushed
        // per-row — normalize w1.bias which started with zero rows
        blocks.push((w1, w2));
        // new signal columns
        sig_col.clear();
        for (i, &s) in next_sigs.iter().enumerate() {
            sig_col.insert(s, i as u32);
        }
        cur_width = next_sigs.len();
    }

    // depth == 0: outputs are inputs/constants only — single selection layer
    if depth == 0 {
        let mut w = RawLayer::new(graph.outputs.len(), graph.num_inputs);
        for (row_i, &s) in graph.outputs.iter().enumerate() {
            if (s as usize) < graph.num_inputs {
                w.trips.push((row_i as u32, s, 1));
            } else {
                // constant node (0-input LUT) at level 0 cannot exist —
                // 0-input LUTs are level 1; handled by the loop above
                unreachable!("level-0 node output");
            }
        }
        blocks.push((w, RawLayer::new(0, 0)));
        let layers = vec![raw_to_layer::<T>(&blocks[0].0, Activation2::Linear)?];
        return Ok(CompiledNn {
            name: graph.name.clone(),
            layers,
            num_primary_inputs,
            num_primary_outputs,
            state_init,
            gate_count,
            lut_size: opts.lut_size,
        });
    }

    // --- assemble layers, merging the exact-linear stage into the next
    //     block's affine stage (Fig. 5) ---
    let mut layers: Vec<NnLayer<T>> = Vec::new();
    if opts.merge_layers {
        // first layer: W1_1 as-is
        let mut pending_linear: Option<(Csr<i64>, Vec<i64>)> = None;
        for (bi, (w1, w2)) in blocks.iter().enumerate() {
            let w1_csr = w1.to_csr();
            let (weights, bias) = match pending_linear.take() {
                None => (w1_csr, w1.bias.clone()),
                Some((lin_w, lin_b)) => {
                    // W' = W1 · lin_w ; b' = W1 · lin_b + b1
                    let merged = w1_csr.matmul(&lin_w);
                    let shift = w1_csr.matvec(&lin_b);
                    let bias: Vec<i64> = w1
                        .bias
                        .iter()
                        .zip(&shift)
                        .map(|(&b, &s)| b + s)
                        .collect();
                    (merged, bias)
                }
            };
            layers.push(raw_csr_to_layer::<T>(
                &weights,
                &bias,
                Activation2::Threshold,
            )?);
            let w2_csr = w2.to_csr();
            if bi + 1 == blocks.len() {
                // last linear stage stays explicit (nothing follows it)
                layers.push(raw_csr_to_layer::<T>(
                    &w2_csr,
                    &w2.bias,
                    Activation2::Linear,
                )?);
            } else {
                pending_linear = Some((w2_csr, w2.bias.clone()));
            }
        }
    } else {
        for (w1, w2) in &blocks {
            layers.push(raw_to_layer::<T>(w1, Activation2::Threshold)?);
            layers.push(raw_to_layer::<T>(w2, Activation2::Linear)?);
        }
    }

    Ok(CompiledNn {
        name: graph.name.clone(),
        layers,
        num_primary_inputs,
        num_primary_outputs,
        state_init,
        gate_count,
        lut_size: opts.lut_size,
    })
}

/// The neurons implementing one node (paper Fig. 2, generalized to signed
/// monomials so wide known-function nodes fit the same machinery):
/// `hidden[k]` is a threshold neuron `Θ(Σ w·x + bias)` over node-local
/// input indices, and the node's value is the exact linear combination
/// `Σ out[k].1 · hidden[out[k].0] + out_bias`.
struct NodeBlock {
    hidden: Vec<(Vec<(usize, i64)>, i64)>,
    out: Vec<(usize, i64)>,
    out_bias: i64,
}

fn node_block(node: &LutNode) -> NodeBlock {
    match &node.func {
        NodeFunc::Table(lut) => {
            let poly = lut_to_poly(lut);
            let mut hidden = Vec::new();
            let mut out = Vec::new();
            let mut out_bias = 0i64;
            for term in poly.terms() {
                if term.mask == 0 {
                    out_bias += term.coeff as i64;
                    continue;
                }
                let mut weights = Vec::with_capacity(term.mask.count_ones() as usize);
                let mut m = term.mask;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    weights.push((j, 1i64));
                }
                let size = weights.len() as i64;
                out.push((hidden.len(), term.coeff as i64));
                hidden.push((weights, 1 - size)); // Θ(Σ x_s − |S| + 1)
            }
            NodeBlock {
                hidden,
                out,
                out_bias,
            }
        }
        NodeFunc::WideAnd { invert } => {
            // h = Θ(Σ x − n + 1) = AND;  AND = h, NAND = 1 − h
            let n = node.inputs.len() as i64;
            let weights: Vec<(usize, i64)> = (0..node.inputs.len()).map(|j| (j, 1)).collect();
            NodeBlock {
                hidden: vec![(weights, 1 - n)],
                out: vec![(0, if *invert { -1 } else { 1 })],
                out_bias: *invert as i64,
            }
        }
        NodeFunc::WideOr { invert } => {
            // h = Θ(−Σ x + 1) = 1 iff all inputs 0;  OR = 1 − h, NOR = h
            let weights: Vec<(usize, i64)> = (0..node.inputs.len()).map(|j| (j, -1)).collect();
            NodeBlock {
                hidden: vec![(weights, 1)],
                out: vec![(0, if *invert { 1 } else { -1 })],
                out_bias: if *invert { 0 } else { 1 },
            }
        }
    }
}

fn compute_liveness(graph: &LutGraph, levels: &[u32], depth: usize) -> Vec<usize> {
    let mut alive = vec![0usize; graph.num_signals()];
    for (ni, node) in graph.nodes.iter().enumerate() {
        let node_level = levels[graph.num_inputs + ni] as usize;
        for &s in &node.inputs {
            alive[s as usize] = alive[s as usize].max(node_level);
        }
    }
    for &o in &graph.outputs {
        alive[o as usize] = depth + 1; // outputs live to the end
    }
    alive
}

fn raw_to_layer<T: Scalar>(raw: &RawLayer, act: Activation2) -> Result<NnLayer<T>, CompileError> {
    raw_csr_to_layer(&raw.to_csr(), &raw.bias, act)
}

fn raw_csr_to_layer<T: Scalar>(
    w: &Csr<i64>,
    bias: &[i64],
    act: Activation2,
) -> Result<NnLayer<T>, CompileError> {
    // Every coefficient must sit inside the scalar's exact-integer range
    // (f32 → ±2^24) AND inside i32, because values convert via `from_i32`.
    let limit = T::EXACT_LIMIT.min(i32::MAX as i64);
    let (_, _, vals) = w.raw();
    for &v in vals {
        if v.abs() > limit {
            return Err(CompileError::CoefficientOverflow { value: v, limit });
        }
    }
    for &b in bias {
        if b.abs() > limit {
            return Err(CompileError::CoefficientOverflow { value: b, limit });
        }
    }
    Ok(NnLayer {
        weights: w.cast::<T>(|v| {
            debug_assert!(v.abs() <= i32::MAX as i64);
            v as i32
        }),
        bias: bias.iter().map(|&b| T::from_i32(b as i32)).collect(),
        activation: act,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_boolfn::Lut;
    use c2nn_lutmap::LutNode;

    fn eval_block(blk: &NodeBlock, inputs: &[bool]) -> i64 {
        let hidden: Vec<i64> = blk
            .hidden
            .iter()
            .map(|(weights, bias)| {
                let pre: i64 = weights
                    .iter()
                    .map(|&(j, w)| w * inputs[j] as i64)
                    .sum::<i64>()
                    + bias;
                (pre > 0) as i64
            })
            .collect();
        blk.out.iter().map(|&(h, c)| c * hidden[h]).sum::<i64>() + blk.out_bias
    }

    #[test]
    fn node_block_reproduces_tables() {
        for lut in [Lut::and(3), Lut::or(3), Lut::xor(4), Lut::majority(5), Lut::mux()] {
            let n = lut.inputs() as usize;
            let node = LutNode::table((0..n as u32).collect(), lut.clone());
            let blk = node_block(&node);
            for x in 0..1u64 << n {
                let bits: Vec<bool> = (0..n).map(|j| x >> j & 1 == 1).collect();
                assert_eq!(eval_block(&blk, &bits), lut.get(x) as i64, "{lut:?} x={x:b}");
            }
        }
    }

    #[test]
    fn node_block_wide_functions_are_single_neurons() {
        use c2nn_lutmap::NodeFunc;
        type Case = (NodeFunc, fn(u32) -> bool);
        let cases: Vec<Case> = vec![
            (NodeFunc::WideAnd { invert: false }, |x| x == 0x3ff),
            (NodeFunc::WideAnd { invert: true }, |x| x != 0x3ff),
            (NodeFunc::WideOr { invert: false }, |x| x != 0),
            (NodeFunc::WideOr { invert: true }, |x| x == 0),
        ];
        for (func, f) in cases {
            let node = LutNode {
                inputs: (0..10).collect(),
                func: func.clone(),
            };
            let blk = node_block(&node);
            assert_eq!(blk.hidden.len(), 1, "{func:?} must be one neuron");
            for x in [0u32, 1, 0x3ff, 0x3fe, 0x155] {
                let bits: Vec<bool> = (0..10).map(|j| x >> j & 1 == 1).collect();
                assert_eq!(eval_block(&blk, &bits), f(x) as i64, "{func:?} x={x:03x}");
            }
        }
    }

    #[test]
    fn coefficient_overflow_is_reported() {
        let w: Csr<i64> = Csr::from_triplets(1, 1, vec![(0, 0, 1i64 << 30)]);
        let res = raw_csr_to_layer::<f32>(&w, &[0], Activation2::Linear);
        assert!(matches!(res, Err(CompileError::CoefficientOverflow { .. })));
        // but i64-safe values pass for i32 targets
        let w2: Csr<i64> = Csr::from_triplets(1, 1, vec![(0, 0, 1i64 << 30)]);
        assert!(raw_csr_to_layer::<i32>(&w2, &[0], Activation2::Linear).is_ok());
    }
}
