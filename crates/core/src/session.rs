//! Resumable per-lane simulation sessions.
//!
//! A [`Simulator`](crate::Simulator) owns one fixed batch: `B` testbenches
//! created together, stepped together, destroyed together. That is the
//! right shape for offline verification runs, but a *serving* workload is
//! the opposite: independent clients arrive at arbitrary times, each owns
//! one testbench, and the scheduler wants to pack whichever of them are
//! currently runnable into a single forward pass (the paper's stimulus
//! parallelism, re-cast as request coalescing).
//!
//! A [`Session`] is the per-lane unit that makes this possible: just the
//! recurrent state of one testbench (the flip-flop cut values) plus its
//! cycle count, detached from any particular batch. A [`SessionRunner`]
//! assembles any set of sessions into one feature-major batch, runs one
//! cycle, and scatters next-state back — so the *composition* of the batch
//! can change freely between cycles while every lane's own trajectory stays
//! bit-exact. [`Simulator::export_sessions`] and
//! [`Simulator::import_sessions`] bridge the two worlds.

use crate::compile::CompiledNn;
use crate::sim::{SimError, Simulator};
use c2nn_tensor::{Dense, Device, Scalar};

/// The resumable state of one simulation lane: one testbench's flip-flop
/// values and its cycle count. Cheap to create, move, and park between
/// batched steps.
#[derive(Clone, Debug, PartialEq)]
pub struct Session<T> {
    state: Vec<T>,
    cycles: u64,
}

impl<T: Scalar> Session<T> {
    /// A fresh session at the power-on state of `nn`.
    pub fn new(nn: &CompiledNn<T>) -> Self {
        Session {
            state: nn
                .state_init
                .iter()
                .map(|&b| if b { T::ONE } else { T::ZERO })
                .collect(),
            cycles: 0,
        }
    }

    /// Cycles this lane has simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current state as bits.
    pub fn state_bits(&self) -> Vec<bool> {
        self.state.iter().map(|&v| v == T::ONE).collect()
    }

    /// Rewind this lane to the power-on state of `nn`.
    pub fn reset(&mut self, nn: &CompiledNn<T>) {
        *self = Session::new(nn);
    }

    /// Raw state values, for backends that pack lanes themselves (the
    /// bit-plane runner reads these as bits and writes them back as 0/1).
    pub(crate) fn state_raw(&self) -> &[T] {
        &self.state
    }

    pub(crate) fn state_raw_mut(&mut self) -> &mut [T] {
        &mut self.state
    }

    pub(crate) fn bump_cycles(&mut self) {
        self.cycles += 1;
    }
}

/// Steps arbitrary collections of [`Session`]s through one compiled
/// network, one batched forward pass per call, reusing its assembly and
/// ping-pong buffers across calls (no per-cycle allocation beyond the
/// returned output bits).
pub struct SessionRunner<'a, T> {
    nn: &'a CompiledNn<T>,
    device: Device,
    xbuf: Dense<T>,
    scratch: (Dense<T>, Dense<T>),
}

impl<'a, T: Scalar> SessionRunner<'a, T> {
    /// A runner over `nn` executing on `device`.
    pub fn new(nn: &'a CompiledNn<T>, device: Device) -> Self {
        SessionRunner {
            nn,
            device,
            xbuf: Dense::zeros(0, 0),
            scratch: (Dense::zeros(0, 0), Dense::zeros(0, 0)),
        }
    }

    /// The network this runner executes.
    pub fn nn(&self) -> &CompiledNn<T> {
        self.nn
    }

    /// Advance every session one clock cycle in lockstep: `sessions[l]`
    /// consumes `inputs[l]` (primary-input bits, LSB-first) and its state is
    /// updated in place. Returns the primary outputs per lane.
    ///
    /// The batch is whatever slice the caller assembled — lanes may come
    /// and go between calls; each session's trajectory is identical to
    /// running it alone (lanes are independent columns of the forward
    /// pass).
    pub fn step(
        &mut self,
        sessions: &mut [Session<T>],
        inputs: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>, SimError> {
        let pi = self.nn.num_primary_inputs;
        let po = self.nn.num_primary_outputs;
        let s = self.nn.state_bits();
        let b = sessions.len();
        if self.nn.layers.is_empty() {
            return Err(SimError::NoLayers);
        }
        if inputs.len() != b {
            return Err(SimError::BatchMismatch {
                expected: b,
                got: inputs.len(),
            });
        }
        for lane in inputs {
            if lane.len() != pi {
                return Err(SimError::InputWidth {
                    expected: pi,
                    got: lane.len(),
                });
            }
        }
        for sess in sessions.iter() {
            if sess.state.len() != s {
                return Err(SimError::StateWidth {
                    expected: s,
                    got: sess.state.len(),
                });
            }
        }
        if b == 0 {
            return Ok(Vec::new());
        }
        // x = [inputs ; state], feature-major: feature f of lane l at
        // data[f * b + l]
        self.xbuf.resize_to(pi + s, b);
        let data = self.xbuf.data_mut();
        for v in data.iter_mut() {
            *v = T::ZERO;
        }
        for (l, lane) in inputs.iter().enumerate() {
            for (f, &bit) in lane.iter().enumerate() {
                if bit {
                    data[f * b + l] = T::ONE;
                }
            }
        }
        for (l, sess) in sessions.iter().enumerate() {
            for (f, &v) in sess.state.iter().enumerate() {
                data[(pi + f) * b + l] = v;
            }
        }
        let y = self
            .nn
            .forward_with(&self.xbuf, self.device, &mut self.scratch);
        debug_assert_eq!(y.rows(), po + s);
        let ydata = y.data();
        let outputs = (0..b)
            .map(|l| (0..po).map(|f| ydata[f * b + l] == T::ONE).collect())
            .collect();
        for (l, sess) in sessions.iter_mut().enumerate() {
            for f in 0..s {
                sess.state[f] = ydata[(po + f) * b + l];
            }
            sess.cycles += 1;
        }
        Ok(outputs)
    }
}

impl<'a, T: Scalar> Simulator<'a, T> {
    /// Snapshot every lane of this simulator as an independent [`Session`]
    /// (lane order preserved). All sessions carry the simulator's cycle
    /// count.
    pub fn export_sessions(&self) -> Vec<Session<T>> {
        let cycles = self.cycles();
        self.state_lanes_raw()
            .into_iter()
            .map(|state| Session { state, cycles })
            .collect()
    }

    /// Load per-lane states from sessions (one per lane, in lane order).
    /// The simulator's own cycle counter is left untouched — sessions keep
    /// their individual counts.
    pub fn import_sessions(&mut self, sessions: &[Session<T>]) -> Result<(), SimError> {
        if sessions.len() != self.batch() {
            return Err(SimError::BatchMismatch {
                expected: self.batch(),
                got: sessions.len(),
            });
        }
        let s = self.state_width();
        for sess in sessions {
            if sess.state.len() != s {
                return Err(SimError::StateWidth {
                    expected: s,
                    got: sess.state.len(),
                });
            }
        }
        self.load_lane_states(sessions.iter().map(|sess| sess.state.as_slice()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use c2nn_netlist::{NetlistBuilder, WordOps};

    fn counter_nn() -> CompiledNn<f32> {
        let mut b = NetlistBuilder::new("ctr");
        let clk = b.clock("clk");
        let en = b.input("en");
        let q = b.fresh_word("q", 4);
        let inc = b.inc_word(&q);
        let next = b.mux_word(en, &q, &inc);
        b.connect_ff_word(&next, &q, clk, None, None, 0, 0);
        b.output_word(&q, "q");
        compile(&b.finish().unwrap(), CompileOptions::with_l(4)).unwrap()
    }

    fn as_u32(bits: &[bool]) -> u32 {
        bits.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum()
    }

    #[test]
    fn sessions_match_simulator_lanes() {
        let nn = counter_nn();
        let mut sim = Simulator::new(&nn, 3, Device::Serial);
        let mut sessions: Vec<Session<f32>> = (0..3).map(|_| Session::new(&nn)).collect();
        let mut runner = SessionRunner::new(&nn, Device::Serial);
        // lane 0 always counts, lane 1 counts on even cycles, lane 2 never
        for c in 0..10u32 {
            let lanes = vec![vec![true], vec![c % 2 == 0], vec![false]];
            let sim_out = sim.step(&Dense::from_lanes(&lanes)).to_lanes();
            let sess_out = runner.step(&mut sessions, &lanes).unwrap();
            assert_eq!(sim_out, sess_out, "cycle {c}");
        }
        assert_eq!(sessions[0].cycles(), 10);
        // and the states agree too
        assert_eq!(
            sim.state_lanes(),
            sessions.iter().map(|s| s.state_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batch_composition_can_change_between_cycles() {
        let nn = counter_nn();
        // a lone session counts 5 cycles...
        let mut runner = SessionRunner::new(&nn, Device::Serial);
        let mut a = Session::new(&nn);
        for _ in 0..5 {
            runner
                .step(std::slice::from_mut(&mut a), &[vec![true]])
                .unwrap();
        }
        // ...then a newcomer joins and both advance in one batch
        let mut b = Session::new(&nn);
        let mut pair = [a, b.clone()];
        for _ in 0..3 {
            runner.step(&mut pair, &[vec![true], vec![true]]).unwrap();
        }
        [a, b] = pair;
        assert_eq!(as_u32(&a.state_bits()), 8, "resumed lane: 5 + 3 cycles");
        assert_eq!(as_u32(&b.state_bits()), 3, "late joiner: 3 cycles");
        assert_eq!(a.cycles(), 8);
        assert_eq!(b.cycles(), 3);
    }

    #[test]
    fn export_import_roundtrip() {
        let nn = counter_nn();
        let mut sim = Simulator::new(&nn, 2, Device::Serial);
        let ones = Dense::from_lanes(&[vec![true], vec![true]]);
        for _ in 0..6 {
            sim.step(&ones);
        }
        let sessions = sim.export_sessions();
        assert_eq!(sessions.len(), 2);
        assert_eq!(as_u32(&sessions[0].state_bits()), 6);
        assert_eq!(sessions[0].cycles(), 6);

        // continue one exported lane standalone; reimport into a fresh sim
        let mut runner = SessionRunner::new(&nn, Device::Serial);
        let mut lane = sessions[0].clone();
        runner
            .step(std::slice::from_mut(&mut lane), &[vec![true]])
            .unwrap();
        assert_eq!(as_u32(&lane.state_bits()), 7);

        let mut sim2 = Simulator::new(&nn, 2, Device::Serial);
        sim2.import_sessions(&sessions).unwrap();
        // the counter registers its output, so the first step reads back the
        // imported state and advances it
        let out = sim2.step(&ones).to_lanes();
        assert_eq!(as_u32(&out[0]), 6, "imported state is visible");
        assert_eq!(as_u32(&sim2.state_lanes()[0]), 7, "and continues counting");
    }

    #[test]
    fn shape_errors_are_typed() {
        let nn = counter_nn();
        let mut runner = SessionRunner::new(&nn, Device::Serial);
        let mut sess = [Session::new(&nn)];
        assert_eq!(
            runner.step(&mut sess, &[]),
            Err(SimError::BatchMismatch {
                expected: 1,
                got: 0
            })
        );
        assert_eq!(
            runner.step(&mut sess, &[vec![true, false]]),
            Err(SimError::InputWidth {
                expected: 1,
                got: 2
            })
        );
        let mut bad = [Session {
            state: vec![0.0; 2],
            cycles: 0,
        }];
        assert!(matches!(
            runner.step(&mut bad, &[vec![true]]),
            Err(SimError::StateWidth {
                expected: 4,
                got: 2
            })
        ));
        let mut sim = Simulator::new(&nn, 2, Device::Serial);
        assert!(sim.import_sessions(&[Session::new(&nn)]).is_err());
    }
}
