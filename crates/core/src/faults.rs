//! Fault injection for exercising the runtime guard.
//!
//! The guard's claim ("any corruption of weights or state is detected") is
//! only credible if it is measured. This module provides the corruption
//! primitives — single-bit flips in weight/bias memory and in live simulator
//! state — that the fault-injection integration test uses to compute an
//! actual detection rate. Flips operate on the scalar's bit pattern
//! ([`Scalar::to_bits64`]/[`Scalar::from_bits64`]), so one injected fault is
//! exactly one flipped hardware bit.

use crate::compile::CompiledNn;
use crate::sim::Simulator;
use c2nn_tensor::Scalar;

/// Addressable single-bit fault sites in a model's parameter memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Bit `bit` of the `nnz`-th stored weight of layer `layer`.
    Weight {
        /// layer index
        layer: usize,
        /// index into the layer's CSR value array
        nnz: usize,
        /// bit position within the scalar (0 = LSB)
        bit: u32,
    },
    /// Bit `bit` of bias `idx` of layer `layer`.
    Bias {
        /// layer index
        layer: usize,
        /// index into the layer's bias vector
        idx: usize,
        /// bit position within the scalar (0 = LSB)
        bit: u32,
    },
}

/// Number of meaningful bits per scalar of this model (32 for f32/i32,
/// 64 for f64/i64), inferred from the bit pattern width actually used.
pub fn scalar_bits<T: Scalar>() -> u32 {
    (std::mem::size_of::<T>() * 8) as u32
}

/// Every parameter-memory fault site of `nn`, in deterministic order.
pub fn enumerate_sites<T: Scalar>(nn: &CompiledNn<T>) -> Vec<FaultSite> {
    let bits = scalar_bits::<T>();
    let mut sites = Vec::new();
    for (layer, l) in nn.layers.iter().enumerate() {
        let (_, _, values) = l.weights.raw();
        for nnz in 0..values.len() {
            for bit in 0..bits {
                sites.push(FaultSite::Weight { layer, nnz, bit });
            }
        }
        for idx in 0..l.bias.len() {
            for bit in 0..bits {
                sites.push(FaultSite::Bias { layer, idx, bit });
            }
        }
    }
    sites
}

/// Flip one bit of parameter memory in place. Returns `true` if the stored
/// bit pattern changed (always, unless the site is out of range, in which
/// case `false` is returned and nothing is touched).
pub fn inject<T: Scalar>(nn: &mut CompiledNn<T>, site: FaultSite) -> bool {
    let bits = scalar_bits::<T>();
    match site {
        FaultSite::Weight { layer, nnz, bit } => {
            if bit >= bits {
                return false;
            }
            let Some(l) = nn.layers.get_mut(layer) else {
                return false;
            };
            let values = l.weights.values_mut();
            let Some(v) = values.get_mut(nnz) else {
                return false;
            };
            *v = T::from_bits64(v.to_bits64() ^ (1u64 << bit));
            true
        }
        FaultSite::Bias { layer, idx, bit } => {
            if bit >= bits {
                return false;
            }
            let Some(l) = nn.layers.get_mut(layer) else {
                return false;
            };
            let Some(v) = l.bias.get_mut(idx) else {
                return false;
            };
            *v = T::from_bits64(v.to_bits64() ^ (1u64 << bit));
            true
        }
    }
}

impl<T: Scalar> Simulator<'_, T> {
    /// Flip one bit of one live state scalar (`feature`, `lane`) — a model
    /// of a transient upset in flip-flop state memory between cycles.
    /// Returns `false` (untouched) if the coordinates are out of range.
    pub fn inject_state_bitflip(&mut self, feature: usize, lane: usize, bit: u32) -> bool {
        if bit >= scalar_bits::<T>() {
            return false;
        }
        let batch = self.batch();
        let idx = feature * batch + lane;
        let data = self.state_data_mut();
        let Some(v) = data.get_mut(idx) else {
            return false;
        };
        *v = T::from_bits64(v.to_bits64() ^ (1u64 << bit));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation2, NnLayer};
    use c2nn_tensor::Csr;

    fn tiny() -> CompiledNn<f32> {
        CompiledNn {
            name: "tiny".into(),
            layers: vec![NnLayer {
                weights: Csr::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]),
                bias: vec![-1.0],
                activation: Activation2::Threshold,
            }],
            num_primary_inputs: 2,
            num_primary_outputs: 1,
            state_init: vec![],
            gate_count: 1,
            lut_size: 2,
        }
    }

    #[test]
    fn site_enumeration_covers_all_bits() {
        let nn = tiny();
        // 2 weights + 1 bias, 32 bits each
        assert_eq!(enumerate_sites(&nn).len(), 3 * 32);
    }

    #[test]
    fn inject_flips_exactly_one_bit_and_checksum_changes() {
        let mut nn = tiny();
        let before = nn.weight_checksum();
        assert!(inject(
            &mut nn,
            FaultSite::Weight {
                layer: 0,
                nnz: 0,
                bit: 31
            }
        ));
        assert_eq!(nn.layers[0].weights.raw().2[0], -1.0); // sign flip of 1.0
        assert_ne!(nn.weight_checksum(), before);
        // flipping again restores the original value and checksum
        assert!(inject(
            &mut nn,
            FaultSite::Weight {
                layer: 0,
                nnz: 0,
                bit: 31
            }
        ));
        assert_eq!(nn.weight_checksum(), before);
    }

    #[test]
    fn out_of_range_sites_are_rejected() {
        let mut nn = tiny();
        assert!(!inject(
            &mut nn,
            FaultSite::Weight {
                layer: 9,
                nnz: 0,
                bit: 0
            }
        ));
        assert!(!inject(
            &mut nn,
            FaultSite::Weight {
                layer: 0,
                nnz: 99,
                bit: 0
            }
        ));
        assert!(!inject(
            &mut nn,
            FaultSite::Weight {
                layer: 0,
                nnz: 0,
                bit: 64
            }
        ));
        assert!(!inject(
            &mut nn,
            FaultSite::Bias {
                layer: 0,
                idx: 5,
                bit: 0
            }
        ));
    }
}
