//! One layer of a compiled network.

use c2nn_tensor::{forward_sparse, forward_sparse_into, Activation, Csr, Dense, Device, Scalar};

/// An affine layer `y = act(W x + b)` with a sparse integer-valued weight
/// matrix. Hidden layers use the threshold activation (paper Eq. 2); the
/// final layer is exactly linear (paper §III-B3: "the output neuron does not
/// require any bias or threshold" — constants fold into `bias`).
#[derive(Clone, Debug, PartialEq)]
pub struct NnLayer<T> {
    pub weights: Csr<T>,
    pub bias: Vec<T>,
    pub activation: Activation2,
}

/// Serializable activation selector (mirrors [`Activation`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation2 {
    Linear,
    Threshold,
}

impl From<Activation2> for Activation {
    fn from(a: Activation2) -> Activation {
        match a {
            Activation2::Linear => Activation::Linear,
            Activation2::Threshold => Activation::Threshold,
        }
    }
}

impl<T: Scalar> NnLayer<T> {
    /// Width of the input this layer expects.
    pub fn in_width(&self) -> usize {
        self.weights.cols()
    }

    /// Width of the output this layer produces.
    pub fn out_width(&self) -> usize {
        self.weights.rows()
    }

    /// Apply the layer to a batch.
    pub fn forward(&self, x: &Dense<T>, device: Device) -> Dense<T> {
        forward_sparse(&self.weights, &self.bias, x, self.activation.into(), device)
    }

    /// Apply the layer into a reusable output buffer.
    pub fn forward_into(&self, x: &Dense<T>, device: Device, y: &mut Dense<T>) {
        forward_sparse_into(
            &self.weights,
            &self.bias,
            x,
            self.activation.into(),
            device,
            y,
        )
    }

    /// Stored bytes (weights + bias), the paper's memory metric.
    pub fn memory_bytes(&self) -> usize {
        self.weights.memory_bytes() + self.bias.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_neuron_layer() {
        // h = Θ(x0 + x1 − 1): the paper's 2-input AND neuron
        let layer = NnLayer::<f32> {
            weights: Csr::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]),
            bias: vec![-1.0],
            activation: Activation2::Threshold,
        };
        assert_eq!(layer.in_width(), 2);
        assert_eq!(layer.out_width(), 1);
        for (a, b, want) in [(0., 0., 0.), (1., 0., 0.), (0., 1., 0.), (1., 1., 1.)] {
            // feature-major: 2 features × 1 lane
            let x = Dense::from_vec(2, 1, vec![a, b]);
            let y = layer.forward(&x, Device::Serial);
            assert_eq!(y.data(), &[want]);
        }
    }

    #[test]
    fn memory_accounting() {
        let layer = NnLayer::<f32> {
            weights: Csr::from_triplets(2, 2, vec![(0, 0, 1.0)]),
            bias: vec![0.0, 0.0],
            activation: Activation2::Linear,
        };
        assert!(layer.memory_bytes() >= 4 + 8);
    }
}
