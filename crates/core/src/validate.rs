//! Structural and numerical validation of compiled networks.
//!
//! The paper's equivalence claim (§IV-A: bit-identical outputs for every
//! stimulus) is only as strong as the invariants the simulator can assume.
//! [`CompiledNn::validate`] makes those invariants explicit and checks every
//! one of them, so a model — whether freshly compiled or deserialized from an
//! untrusted `model.json` — is proven well-formed *before* it reaches the
//! kernels:
//!
//! 1. **Shape chaining** — at least one layer; each layer's input width
//!    equals the previous layer's output width; the first/last layers match
//!    the declared primary-input/output + state widths.
//! 2. **CSR well-formedness** — row pointers monotone and consistent, column
//!    indices sorted, unique, and in bounds (delegated to [`Csr::check`]).
//! 3. **Weight integrity** — every weight and bias is finite and integral.
//!    Compiled networks carry integer coefficients by construction; a 0.5 or
//!    NaN weight can only come from corruption and would break exactness
//!    silently.
//! 4. **Exactness margin** — a per-layer worst-case bound on accumulation
//!    magnitude, propagated through the network assuming binary activations,
//!    compared against the scalar's exact-integer range
//!    ([`Scalar::EXACT_LIMIT`]: 2^24 for f32, 2^53 for f64, type max for
//!    integers). A model whose worst-case preactivation could leave that
//!    range may round (floats) or wrap (integers) and is rejected — this is
//!    the static analysis behind the paper's §III-E observation that f32
//!    weights are safe only while coefficients stay within the mantissa.

use crate::compile::CompiledNn;
use crate::layer::Activation2;
use c2nn_tensor::{CsrError, Scalar};
use std::fmt;

/// Why a model failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidateError {
    /// A network must have at least one layer.
    NoLayers,
    /// Layer `layer` expects a different input width than the previous layer
    /// (or the declared model header, for the first/last layer) provides.
    WidthMismatch {
        /// index of the offending layer (`layers.len()` means the declared
        /// output width did not match the last layer)
        layer: usize,
        /// width provided upstream
        expected: usize,
        /// width the layer actually has
        got: usize,
    },
    /// The bias vector length must equal the layer's output width.
    BiasLength {
        /// offending layer
        layer: usize,
        /// the layer's output width
        rows: usize,
        /// the bias length found
        bias: usize,
    },
    /// A weight matrix is structurally broken.
    Csr {
        /// offending layer
        layer: usize,
        /// the structural defect
        error: CsrError,
    },
    /// A weight or bias is NaN or infinite.
    NonFinite {
        /// offending layer
        layer: usize,
        /// description of the location, e.g. `weight nnz #17`
        what: String,
    },
    /// A weight or bias is not an integer — compiled coefficients always are.
    NonInteger {
        /// offending layer
        layer: usize,
        /// description of the location
        what: String,
        /// the offending value
        value: f64,
    },
    /// Worst-case accumulation magnitude can exceed the scalar's
    /// exact-integer range, so simulation could silently drift.
    ExactnessMargin {
        /// offending layer
        layer: usize,
        /// worst-case preactivation magnitude bound
        worst_case: f64,
        /// the scalar's exact range (±limit)
        limit: i64,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NoLayers => write!(f, "model has no layers"),
            ValidateError::WidthMismatch {
                layer,
                expected,
                got,
            } => write!(
                f,
                "layer {layer}: input width {got} does not chain (upstream provides {expected})"
            ),
            ValidateError::BiasLength { layer, rows, bias } => {
                write!(
                    f,
                    "layer {layer}: bias has {bias} entries for {rows} output rows"
                )
            }
            ValidateError::Csr { layer, error } => {
                write!(f, "layer {layer}: malformed weight matrix: {error}")
            }
            ValidateError::NonFinite { layer, what } => {
                write!(f, "layer {layer}: non-finite {what}")
            }
            ValidateError::NonInteger { layer, what, value } => {
                write!(f, "layer {layer}: non-integer {what} = {value}")
            }
            ValidateError::ExactnessMargin {
                layer,
                worst_case,
                limit,
            } => write!(
                f,
                "layer {layer}: worst-case accumulation {worst_case} exceeds the exact \
                 integer range ±{limit} of the scalar type"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Per-layer result of the exactness-margin analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerMargin {
    /// Worst-case preactivation magnitude over all neurons of this layer,
    /// assuming every upstream activation takes its worst admissible value.
    pub worst_case: f64,
    /// `limit / worst_case` — how much headroom remains (≥ 1 is safe).
    pub headroom: f64,
}

/// Successful validation summary.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationReport {
    /// One entry per layer, in order.
    pub margins: Vec<LayerMargin>,
    /// The scalar exact limit the margins were checked against.
    pub limit: i64,
}

impl ValidationReport {
    /// The tightest headroom across all layers.
    pub fn min_headroom(&self) -> f64 {
        self.margins
            .iter()
            .map(|m| m.headroom)
            .fold(f64::INFINITY, f64::min)
    }
}

impl<T: Scalar> CompiledNn<T> {
    /// Check every structural and numerical invariant of this model (see the
    /// module docs). Returns the per-layer exactness-margin report on
    /// success, the first violation found otherwise. All deserialization
    /// paths call this, so a model that reaches the simulator is well-formed.
    pub fn validate(&self) -> Result<ValidationReport, ValidateError> {
        if self.layers.is_empty() {
            return Err(ValidateError::NoLayers);
        }
        // 1. shape chaining: header → L0 → L1 → … → header
        let mut width = self.num_primary_inputs + self.state_bits();
        for (i, layer) in self.layers.iter().enumerate() {
            if layer.in_width() != width {
                return Err(ValidateError::WidthMismatch {
                    layer: i,
                    expected: width,
                    got: layer.in_width(),
                });
            }
            if layer.bias.len() != layer.out_width() {
                return Err(ValidateError::BiasLength {
                    layer: i,
                    rows: layer.out_width(),
                    bias: layer.bias.len(),
                });
            }
            width = layer.out_width();
        }
        let declared_out = self.num_primary_outputs + self.state_bits();
        if width != declared_out {
            return Err(ValidateError::WidthMismatch {
                layer: self.layers.len(),
                expected: declared_out,
                got: width,
            });
        }

        // 2–3. CSR structure and weight integrity
        for (i, layer) in self.layers.iter().enumerate() {
            layer
                .weights
                .check()
                .map_err(|error| ValidateError::Csr { layer: i, error })?;
            let (_, _, values) = layer.weights.raw();
            for (k, &v) in values.iter().enumerate() {
                check_value(i, v, || format!("weight nnz #{k}"))?;
            }
            for (k, &b) in layer.bias.iter().enumerate() {
                check_value(i, b, || format!("bias #{k}"))?;
            }
        }

        // 4. exactness margin, propagated forward
        let limit = T::EXACT_LIMIT;
        let mut margins = Vec::with_capacity(self.layers.len());
        // per-feature magnitude bound of the current activations; primary
        // inputs and state are binary
        let mut in_bound = vec![1.0f64; self.num_primary_inputs + self.state_bits()];
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out_bound = Vec::with_capacity(layer.out_width());
            let mut worst = 0.0f64;
            for r in 0..layer.out_width() {
                let mut acc = layer.bias[r].to_f64().abs();
                for (c, v) in layer.weights.row(r) {
                    acc += v.to_f64().abs() * in_bound[c as usize];
                }
                worst = worst.max(acc);
                out_bound.push(match layer.activation {
                    Activation2::Threshold => 1.0,
                    Activation2::Linear => acc,
                });
            }
            if worst > limit as f64 {
                return Err(ValidateError::ExactnessMargin {
                    layer: i,
                    worst_case: worst,
                    limit,
                });
            }
            margins.push(LayerMargin {
                worst_case: worst,
                headroom: if worst == 0.0 {
                    f64::INFINITY
                } else {
                    limit as f64 / worst
                },
            });
            in_bound = out_bound;
        }
        Ok(ValidationReport { margins, limit })
    }
}

fn check_value<T: Scalar>(
    layer: usize,
    v: T,
    what: impl Fn() -> String,
) -> Result<(), ValidateError> {
    if !v.is_finite() {
        return Err(ValidateError::NonFinite {
            layer,
            what: what(),
        });
    }
    let f = v.to_f64();
    if f.trunc() != f {
        return Err(ValidateError::NonInteger {
            layer,
            what: what(),
            value: f,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::NnLayer;
    use c2nn_tensor::Csr;

    fn tiny() -> CompiledNn<f32> {
        // 2 inputs -> Θ layer (AND, OR) -> linear selection of both
        CompiledNn {
            name: "tiny".into(),
            layers: vec![
                NnLayer {
                    weights: Csr::from_triplets(
                        2,
                        2,
                        vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)],
                    ),
                    bias: vec![-1.0, 0.0],
                    activation: Activation2::Threshold,
                },
                NnLayer {
                    weights: Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]),
                    bias: vec![0.0, 0.0],
                    activation: Activation2::Linear,
                },
            ],
            num_primary_inputs: 2,
            num_primary_outputs: 2,
            state_init: vec![],
            gate_count: 2,
            lut_size: 2,
        }
    }

    #[test]
    fn valid_model_reports_margins() {
        let report = tiny().validate().unwrap();
        assert_eq!(report.margins.len(), 2);
        // worst preactivation of layer 0 is |−1| + 1 + 1 = 3
        assert_eq!(report.margins[0].worst_case, 3.0);
        assert!(report.min_headroom() > 1.0);
        assert_eq!(report.limit, 1 << 24);
    }

    #[test]
    fn zero_layers_rejected() {
        let mut nn = tiny();
        nn.layers.clear();
        assert_eq!(nn.validate().unwrap_err(), ValidateError::NoLayers);
    }

    #[test]
    fn width_chain_break_rejected() {
        let mut nn = tiny();
        nn.num_primary_inputs = 3;
        assert!(matches!(
            nn.validate().unwrap_err(),
            ValidateError::WidthMismatch {
                layer: 0,
                expected: 3,
                got: 2
            }
        ));
        let mut nn = tiny();
        nn.num_primary_outputs = 1;
        assert!(matches!(
            nn.validate().unwrap_err(),
            ValidateError::WidthMismatch {
                layer: 2,
                expected: 1,
                got: 2
            }
        ));
    }

    #[test]
    fn bias_length_rejected() {
        let mut nn = tiny();
        nn.layers[1].bias.pop();
        assert!(matches!(
            nn.validate().unwrap_err(),
            ValidateError::BiasLength {
                layer: 1,
                rows: 2,
                bias: 1
            }
        ));
    }

    #[test]
    fn non_finite_weight_rejected() {
        let mut nn = tiny();
        nn.layers[0].weights.values_mut()[0] = f32::NAN;
        assert!(matches!(
            nn.validate().unwrap_err(),
            ValidateError::NonFinite { layer: 0, .. }
        ));
        let mut nn = tiny();
        nn.layers[1].bias[0] = f32::INFINITY;
        assert!(matches!(
            nn.validate().unwrap_err(),
            ValidateError::NonFinite { layer: 1, .. }
        ));
    }

    #[test]
    fn non_integer_weight_rejected() {
        let mut nn = tiny();
        nn.layers[0].weights.values_mut()[0] = 0.5;
        assert!(matches!(
            nn.validate().unwrap_err(),
            ValidateError::NonInteger { layer: 0, .. }
        ));
    }

    #[test]
    fn exactness_margin_rejects_overflow_risk() {
        // An f32 model whose single linear layer accumulates beyond 2^24.
        let mut nn = tiny();
        nn.layers[1].weights.values_mut()[0] = (1u32 << 24) as f32;
        // 2^24 * 1 + 0 > limit? equal is fine; push over with the bias
        nn.layers[1].bias[0] = (1u32 << 24) as f32;
        let err = nn.validate().unwrap_err();
        assert!(
            matches!(err, ValidateError::ExactnessMargin { layer: 1, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn margin_propagates_through_linear_layers() {
        // Linear layer bounds feed the next layer: y = 8·(x0+x1), z = Θ(4096·y…)
        // worst case 2·8 = 16 into a 4096 weight → 65536, fine for f32; but
        // for a hypothetical chain the bound must multiply, not reset to 1.
        let nn = CompiledNn::<f32> {
            name: "chain".into(),
            layers: vec![
                NnLayer {
                    weights: Csr::from_triplets(1, 2, vec![(0, 0, 8.0), (0, 1, 8.0)]),
                    bias: vec![0.0],
                    activation: Activation2::Linear,
                },
                NnLayer {
                    weights: Csr::from_triplets(1, 1, vec![(0, 0, 4096.0)]),
                    bias: vec![0.0],
                    activation: Activation2::Linear,
                },
            ],
            num_primary_inputs: 2,
            num_primary_outputs: 1,
            state_init: vec![],
            gate_count: 1,
            lut_size: 2,
        };
        let report = nn.validate().unwrap();
        assert_eq!(report.margins[0].worst_case, 16.0);
        assert_eq!(report.margins[1].worst_case, 16.0 * 4096.0);
    }
}
