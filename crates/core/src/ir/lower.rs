//! Lowering: [`LutGraph`] → un-merged [`NnGraph`].
//!
//! Per computation-graph level `t` (paper Fig. 2) the lowering emits one
//! *threshold* layer — a monomial neuron `Θ(Σ_{s∈S} x_s − |S| + 1)` per cube
//! of each level-`t` LUT's polynomial (Algorithm 1), a closed-form single
//! neuron per wide known-function node (§V), and a pass-through neuron per
//! still-live earlier signal — followed by one exact-*linear* layer
//! recombining those neurons into signal values. No cross-LUT sharing or
//! merging happens here; that is the pass pipeline's job.

use super::{IrLayer, IrRow, NnGraph, RowProv};
use crate::layer::Activation2;
use c2nn_boolfn::lut_to_poly;
use c2nn_lutmap::{LutGraph, LutNode, NodeFunc};
use std::collections::HashMap;

/// One hidden threshold neuron: `(weights over node-local input indices,
/// bias, cube mask)` — the mask is `None` for the single neuron of a wide
/// known-function node.
pub(crate) type HiddenNeuron = (Vec<(usize, i64)>, i64, Option<u32>);

/// The neurons implementing one node, over node-local input indices:
/// `hidden[k]` is a threshold neuron and the node's value is the exact
/// linear combination `Σ out[k].1 · hidden[out[k].0] + out_bias`.
pub(crate) struct NodeBlock {
    pub hidden: Vec<HiddenNeuron>,
    pub out: Vec<(usize, i64)>,
    pub out_bias: i64,
}

pub(crate) fn node_block(node: &LutNode) -> NodeBlock {
    match &node.func {
        NodeFunc::Table(lut) => {
            let poly = lut_to_poly(lut);
            let (constant, cubes) = poly.split_constant();
            let mut hidden = Vec::with_capacity(cubes.len());
            let mut out = Vec::with_capacity(cubes.len());
            for term in cubes {
                let weights: Vec<(usize, i64)> = term.vars().map(|j| (j, 1i64)).collect();
                let size = weights.len() as i64;
                out.push((hidden.len(), term.coeff as i64));
                hidden.push((weights, 1 - size, Some(term.mask))); // Θ(Σ x_s − |S| + 1)
            }
            NodeBlock {
                hidden,
                out,
                out_bias: constant as i64,
            }
        }
        NodeFunc::WideAnd { invert } => {
            // h = Θ(Σ x − n + 1) = AND;  AND = h, NAND = 1 − h
            let n = node.inputs.len() as i64;
            let weights: Vec<(usize, i64)> = (0..node.inputs.len()).map(|j| (j, 1)).collect();
            NodeBlock {
                hidden: vec![(weights, 1 - n, None)],
                out: vec![(0, if *invert { -1 } else { 1 })],
                out_bias: *invert as i64,
            }
        }
        NodeFunc::WideOr { invert } => {
            // h = Θ(−Σ x + 1) = 1 iff all inputs 0;  OR = 1 − h, NOR = h
            let weights: Vec<(usize, i64)> = (0..node.inputs.len()).map(|j| (j, -1)).collect();
            NodeBlock {
                hidden: vec![(weights, 1, None)],
                out: vec![(0, if *invert { 1 } else { -1 })],
                out_bias: if *invert { 0 } else { 1 },
            }
        }
    }
}

/// Last level at which each signal is read; outputs stay alive forever.
fn compute_liveness(graph: &LutGraph, levels: &[u32], depth: usize) -> Vec<usize> {
    let mut alive = vec![0usize; graph.num_signals()];
    for (ni, node) in graph.nodes.iter().enumerate() {
        let node_level = levels[graph.num_inputs + ni] as usize;
        for &s in &node.inputs {
            alive[s as usize] = alive[s as usize].max(node_level);
        }
    }
    for &o in &graph.outputs {
        alive[o as usize] = depth + 1;
    }
    alive
}

/// Lower a LUT graph into the un-merged mid-level IR.
pub fn lower(
    graph: &LutGraph,
    gate_count: usize,
    num_primary_inputs: usize,
    num_primary_outputs: usize,
    state_init: Vec<bool>,
    lut_size: usize,
) -> NnGraph {
    let levels = graph.levels();
    let depth = graph.depth() as usize;
    let alive_until = compute_liveness(graph, &levels, depth);

    let mut g = NnGraph {
        name: graph.name.clone(),
        num_primary_inputs,
        num_primary_outputs,
        state_init,
        gate_count,
        lut_size,
        in_width: graph.num_inputs,
        layers: Vec::with_capacity(2 * depth.max(1)),
    };

    // depth == 0: outputs are inputs only — a single selection layer
    if depth == 0 {
        let rows = graph
            .outputs
            .iter()
            .map(|&s| {
                debug_assert!((s as usize) < graph.num_inputs, "level-0 node output");
                IrRow {
                    weights: vec![(s, 1)],
                    bias: 0,
                    prov: RowProv::Signal { signal: s },
                }
            })
            .collect();
        g.layers.push(IrLayer {
            act: Activation2::Linear,
            in_width: graph.num_inputs,
            rows,
        });
        debug_assert_eq!(g.check(), Ok(()));
        return g;
    }

    // neuron blocks per node, computed once (Algorithm 1 / §V closed forms)
    let blocks_pre: Vec<NodeBlock> = graph.nodes.iter().map(node_block).collect();

    // columns of the current signal layer: signal id -> column
    let mut sig_col: HashMap<u32, u32> = HashMap::new();
    for i in 0..graph.num_inputs {
        sig_col.insert(i as u32, i as u32);
    }
    let mut cur_width = graph.num_inputs;

    for t in 1..=depth {
        // signals of the next signal layer
        let next_sigs: Vec<u32> = if t == depth {
            graph.outputs.clone()
        } else {
            // dead signals (no later reader, not an output) are dropped here,
            // so the hidden layer below can skip their neurons too
            (0..graph.num_signals() as u32)
                .filter(|&s| (levels[s as usize] as usize) <= t && alive_until[s as usize] > t)
                .collect()
        };
        // pass-through set: signals in next layer with level < t (dedup)
        let mut pass: Vec<u32> = next_sigs
            .iter()
            .copied()
            .filter(|&s| (levels[s as usize] as usize) < t)
            .collect();
        pass.sort_unstable();
        pass.dedup();

        // hidden (threshold) layer: terms of level-t nodes + pass-throughs
        let mut hidden = IrLayer {
            act: Activation2::Threshold,
            in_width: cur_width,
            rows: Vec::new(),
        };
        // node signal id -> (first hidden row of its terms, count)
        let mut node_terms: HashMap<u32, (usize, usize)> = HashMap::new();
        for (ni, node) in graph.nodes.iter().enumerate() {
            let sig = (graph.num_inputs + ni) as u32;
            if levels[sig as usize] as usize != t {
                continue;
            }
            // skip dead nodes (no later reader, not an output): hand-built
            // graphs can contain them; the mapper never emits them
            if alive_until[sig as usize] <= t && !graph.outputs.contains(&sig) {
                continue;
            }
            let blk = &blocks_pre[ni];
            let start = hidden.rows.len();
            for (weights, bias, mask) in &blk.hidden {
                let mut row = IrRow {
                    weights: weights
                        .iter()
                        .map(|&(j, w)| (sig_col[&node.inputs[j]], w))
                        .collect(),
                    bias: *bias,
                    prov: match mask {
                        Some(m) => RowProv::Monomial {
                            node: sig,
                            mask: *m,
                        },
                        None => RowProv::Wide { node: sig },
                    },
                };
                row.canonicalize();
                hidden.rows.push(row);
            }
            node_terms.insert(sig, (start, blk.hidden.len()));
        }
        let mut pass_row: HashMap<u32, u32> = HashMap::new();
        for &s in &pass {
            pass_row.insert(s, hidden.rows.len() as u32);
            hidden.rows.push(IrRow {
                weights: vec![(sig_col[&s], 1)],
                bias: 0, // Θ(x) = x for binary x
                prov: RowProv::Pass { signal: s },
            });
        }
        let hidden_count = hidden.rows.len();

        // exact-linear signal layer
        let mut linear = IrLayer {
            act: Activation2::Linear,
            in_width: hidden_count,
            rows: Vec::with_capacity(next_sigs.len()),
        };
        for &s in &next_sigs {
            let mut row = IrRow {
                weights: Vec::new(),
                bias: 0,
                prov: RowProv::Signal { signal: s },
            };
            if (levels[s as usize] as usize) < t {
                row.weights.push((pass_row[&s], 1));
            } else {
                let ni = s as usize - graph.num_inputs;
                let blk = &blocks_pre[ni];
                let (start, _) = node_terms[&s];
                for &(h, coeff) in &blk.out {
                    row.weights.push(((start + h) as u32, coeff));
                }
                row.bias = blk.out_bias;
            }
            row.canonicalize();
            linear.rows.push(row);
        }

        g.layers.push(hidden);
        g.layers.push(linear);
        sig_col.clear();
        for (i, &s) in next_sigs.iter().enumerate() {
            sig_col.insert(s, i as u32);
        }
        cur_width = next_sigs.len();
    }

    debug_assert_eq!(g.check(), Ok(()));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_boolfn::Lut;

    fn eval_block(blk: &NodeBlock, inputs: &[bool]) -> i64 {
        let hidden: Vec<i64> = blk
            .hidden
            .iter()
            .map(|(weights, bias, _)| {
                let pre: i64 = weights
                    .iter()
                    .map(|&(j, w)| w * inputs[j] as i64)
                    .sum::<i64>()
                    + bias;
                (pre > 0) as i64
            })
            .collect();
        blk.out.iter().map(|&(h, c)| c * hidden[h]).sum::<i64>() + blk.out_bias
    }

    #[test]
    fn node_block_reproduces_tables() {
        for lut in [
            Lut::and(3),
            Lut::or(3),
            Lut::xor(4),
            Lut::majority(5),
            Lut::mux(),
        ] {
            let n = lut.inputs() as usize;
            let node = LutNode::table((0..n as u32).collect(), lut.clone());
            let blk = node_block(&node);
            for x in 0..1u64 << n {
                let bits: Vec<bool> = (0..n).map(|j| x >> j & 1 == 1).collect();
                assert_eq!(
                    eval_block(&blk, &bits),
                    lut.get(x) as i64,
                    "{lut:?} x={x:b}"
                );
            }
        }
    }

    #[test]
    fn node_block_wide_functions_are_single_neurons() {
        type Case = (NodeFunc, fn(u32) -> bool);
        let cases: Vec<Case> = vec![
            (NodeFunc::WideAnd { invert: false }, |x| x == 0x3ff),
            (NodeFunc::WideAnd { invert: true }, |x| x != 0x3ff),
            (NodeFunc::WideOr { invert: false }, |x| x != 0),
            (NodeFunc::WideOr { invert: true }, |x| x == 0),
        ];
        for (func, f) in cases {
            let node = LutNode {
                inputs: (0..10).collect(),
                func: func.clone(),
                origin: c2nn_lutmap::NO_ORIGIN,
            };
            let blk = node_block(&node);
            assert_eq!(blk.hidden.len(), 1, "{func:?} must be one neuron");
            for x in [0u32, 1, 0x3ff, 0x3fe, 0x155] {
                let bits: Vec<bool> = (0..10).map(|j| x >> j & 1 == 1).collect();
                assert_eq!(eval_block(&blk, &bits), f(x) as i64, "{func:?} x={x:03x}");
            }
        }
    }

    #[test]
    fn lowered_graph_carries_monomial_provenance() {
        // one XOR LUT: x0 ^ x1 = x0 + x1 − 2·x0·x1 → three monomial neurons
        let graph = LutGraph {
            name: "x".into(),
            num_inputs: 2,
            nodes: vec![LutNode::table(vec![0, 1], Lut::xor(2))],
            outputs: vec![2],
        };
        let g = lower(&graph, 1, 2, 1, vec![], 2);
        assert_eq!(g.layers.len(), 2);
        let hidden = &g.layers[0];
        assert_eq!(hidden.rows.len(), 3);
        for row in &hidden.rows {
            assert!(
                matches!(row.prov, RowProv::Monomial { node: 2, .. }),
                "{:?}",
                row.prov
            );
        }
        // IR evaluation reproduces XOR exactly
        for x in 0..4u32 {
            let bits = [x & 1 == 1, x >> 1 & 1 == 1];
            assert_eq!(g.eval(&bits), vec![(x.count_ones() % 2) as i64]);
        }
    }
}
