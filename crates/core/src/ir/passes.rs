//! The pass pipeline over the mid-level IR.
//!
//! Pass contracts (see DESIGN.md "Compiler passes"):
//!
//! * every pass preserves the network function **exactly** on binary inputs
//!   (the lockstep suite in `tests/pass_lockstep.rs` checks every prefix of
//!   the pipeline against the reference simulator);
//! * every pass leaves the IR invariants of [`super`] intact
//!   (checked under `debug_assertions` after each pass);
//! * `constant-fold`, `monomial-cse` and `dead-neuron-elim` never increase
//!   the total nonzero count (enforced by the `compile_stats` CI gate);
//!   `layer-merge` may trade nonzeros for depth (Fig. 5).

use super::report::{CompileReport, PassStat};
use super::{apply_act, NnGraph};
use crate::compile::{CompileError, CompiledNn};
use crate::layer::{Activation2, NnLayer};
use c2nn_tensor::{Csr, Scalar};
use std::collections::HashMap;

/// The optimization passes, in canonical pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassId {
    /// Propagate tied-constant inputs (0-input LUTs from constant nets) into
    /// downstream biases.
    ConstantFold,
    /// Deduplicate identical monomial neurons across LUTs that share fan-in,
    /// rewiring the consuming rows onto the surviving neuron.
    MonomialCse,
    /// Drop weights with zero merged coefficient and rows nothing reads.
    DeadNeuronElim,
    /// The Fig. 5 depth-halving merge of exact-linear stages into the
    /// following affine stage.
    LayerMerge,
}

impl PassId {
    /// Canonical pipeline order.
    pub const ALL: [PassId; 4] = [
        PassId::ConstantFold,
        PassId::MonomialCse,
        PassId::DeadNeuronElim,
        PassId::LayerMerge,
    ];

    /// Stable pass name (used in reports and `--passes` lists).
    pub fn name(self) -> &'static str {
        match self {
            PassId::ConstantFold => "constant-fold",
            PassId::MonomialCse => "monomial-cse",
            PassId::DeadNeuronElim => "dead-neuron-elim",
            PassId::LayerMerge => "layer-merge",
        }
    }

    const fn bit(self) -> u8 {
        match self {
            PassId::ConstantFold => 1 << 0,
            PassId::MonomialCse => 1 << 1,
            PassId::DeadNeuronElim => 1 << 2,
            PassId::LayerMerge => 1 << 3,
        }
    }
}

/// A `Copy` selection of optimization passes; the pipeline always runs them
/// in canonical order (lower → fold → cse → dce → merge → legalize).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PassSet(u8);

impl PassSet {
    /// No optimization passes: lower + legalize only (the ablation
    /// baseline's "un-merged" network).
    pub const fn none() -> Self {
        PassSet(0)
    }

    /// Every optimization pass (the default).
    pub const fn all() -> Self {
        PassSet(0b1111)
    }

    /// Add one pass.
    pub const fn with(self, p: PassId) -> Self {
        PassSet(self.0 | p.bit())
    }

    /// Remove one pass (e.g. `PassSet::all().without(PassId::LayerMerge)`
    /// for the merge ablation).
    pub const fn without(self, p: PassId) -> Self {
        PassSet(self.0 & !p.bit())
    }

    /// Is the pass selected?
    pub const fn contains(self, p: PassId) -> bool {
        self.0 & p.bit() != 0
    }

    /// Selected passes in canonical order.
    pub fn to_vec(self) -> Vec<PassId> {
        PassId::ALL
            .iter()
            .copied()
            .filter(|&p| self.contains(p))
            .collect()
    }

    /// The first `n` passes of the canonical order (the lockstep harness
    /// compiles every prefix).
    pub fn prefix(n: usize) -> Self {
        PassId::ALL[..n.min(PassId::ALL.len())]
            .iter()
            .fold(PassSet::none(), |s, &p| s.with(p))
    }

    /// Parse a `--passes` spec: `all`, `none`, or a comma-separated list of
    /// pass names (long form or the short aliases `fold`, `cse`, `dce`,
    /// `merge`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "all" => return Ok(PassSet::all()),
            "none" => return Ok(PassSet::none()),
            _ => {}
        }
        let mut set = PassSet::none();
        for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let p = match name {
                "constant-fold" | "fold" => PassId::ConstantFold,
                "monomial-cse" | "cse" => PassId::MonomialCse,
                "dead-neuron-elim" | "dce" => PassId::DeadNeuronElim,
                "layer-merge" | "merge" => PassId::LayerMerge,
                other => {
                    return Err(format!(
                        "unknown pass `{other}` (expected constant-fold/fold, monomial-cse/cse, \
                         dead-neuron-elim/dce, layer-merge/merge, all, none)"
                    ))
                }
            };
            set = set.with(p);
        }
        Ok(set)
    }
}

impl Default for PassSet {
    fn default() -> Self {
        PassSet::all()
    }
}

impl std::fmt::Debug for PassSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.to_vec().iter().map(|p| p.name()).collect();
        write!(f, "PassSet[{}]", names.join(","))
    }
}

/// One rewrite over the IR. Passes are infallible; only `legalize` (the
/// typed emission) can reject a network.
pub trait Pass {
    fn name(&self) -> &'static str;
    fn run(&self, g: &mut NnGraph);
}

/// Runs a pass list in order, recording a [`PassStat`] per pass.
pub struct PassManager {
    passes: Vec<PassId>,
}

impl PassManager {
    /// Build a manager running the selected passes in canonical order.
    pub fn from_set(set: PassSet) -> Self {
        PassManager {
            passes: set.to_vec(),
        }
    }

    /// Run all passes, appending one stat per pass to `report`.
    pub fn run(&self, g: &mut NnGraph, report: &mut CompileReport) {
        for &id in &self.passes {
            let pass: &dyn Pass = match id {
                PassId::ConstantFold => &ConstantFold,
                PassId::MonomialCse => &MonomialCse,
                PassId::DeadNeuronElim => &DeadNeuronElim,
                PassId::LayerMerge => &LayerMerge,
            };
            let before = g.metrics();
            let t0 = std::time::Instant::now();
            pass.run(g);
            let wall_s = t0.elapsed().as_secs_f64();
            debug_assert_eq!(
                g.check(),
                Ok(()),
                "pass {} broke IR invariants",
                pass.name()
            );
            report.passes.push(PassStat {
                pass: pass.name().to_string(),
                wall_s,
                before,
                after: g.metrics(),
            });
        }
    }
}

/// `constant-fold`: forward-propagate rows whose value does not depend on
/// the input — 0-input LUTs born from tied-constant nets, and anything that
/// becomes constant once those fold — moving their contribution into the
/// consuming rows' biases. The now-unread constant rows are left for
/// `dead-neuron-elim` to collect.
pub struct ConstantFold;

impl Pass for ConstantFold {
    fn name(&self) -> &'static str {
        PassId::ConstantFold.name()
    }

    fn run(&self, g: &mut NnGraph) {
        // network inputs are never constant
        let mut konst: Vec<Option<i64>> = vec![None; g.in_width];
        let num_layers = g.layers.len();
        for (li, layer) in g.layers.iter_mut().enumerate() {
            let last = li + 1 == num_layers;
            let mut next_konst: Vec<Option<i64>> = Vec::with_capacity(layer.rows.len());
            for row in &mut layer.rows {
                let mut changed = false;
                for &(c, w) in &row.weights {
                    if let Some(v) = konst[c as usize] {
                        row.bias += w * v;
                        changed = true;
                    }
                }
                if changed {
                    row.weights.retain(|&(c, _)| konst[c as usize].is_none());
                }
                // final-layer rows are outputs: fold into them but never
                // treat them as foldable sources
                if row.weights.is_empty() && !last {
                    next_konst.push(Some(apply_act(layer.act, row.bias)));
                } else {
                    next_konst.push(None);
                }
            }
            konst = next_konst;
        }
    }
}

/// `monomial-cse`: within each layer (except the last, whose rows are the
/// network interface), rows with identical weights and bias compute the same
/// value — LUTs sharing fan-in emit the same monomial neuron many times.
/// Consumers are rewired onto the first occurrence and the duplicate rows
/// are removed in the same pass (columns compacted, `in_width` updated), so
/// the sharing the pass finds shows up in its own size stats instead of
/// hiding inside dead-neuron-elim's.
pub struct MonomialCse;

impl Pass for MonomialCse {
    fn name(&self) -> &'static str {
        PassId::MonomialCse.name()
    }

    fn run(&self, g: &mut NnGraph) {
        for i in 0..g.layers.len().saturating_sub(1) {
            let mut first: HashMap<(Vec<(u32, i64)>, i64), u32> = HashMap::new();
            // remap[r] = compacted index of the row that now computes old
            // row r's value
            let mut remap: Vec<u32> = Vec::with_capacity(g.layers[i].rows.len());
            let mut keep: Vec<bool> = Vec::with_capacity(g.layers[i].rows.len());
            let mut kept = 0u32;
            for row in g.layers[i].rows.iter() {
                let key = (row.weights.clone(), row.bias);
                match first.get(&key) {
                    Some(&surviving) => {
                        remap.push(surviving);
                        keep.push(false);
                    }
                    None => {
                        first.insert(key, kept);
                        remap.push(kept);
                        keep.push(true);
                        kept += 1;
                    }
                }
            }
            if kept as usize == g.layers[i].rows.len() {
                continue;
            }
            let rows = std::mem::take(&mut g.layers[i].rows);
            g.layers[i].rows = rows
                .into_iter()
                .zip(&keep)
                .filter_map(|(row, &k)| k.then_some(row))
                .collect();
            for row in &mut g.layers[i + 1].rows {
                for entry in &mut row.weights {
                    entry.0 = remap[entry.0 as usize];
                }
                row.canonicalize(); // merge coefficients of now-shared columns
            }
            g.layers[i + 1].in_width = kept as usize;
        }
    }
}

/// `dead-neuron-elim`: walking back from the outputs, drop every
/// intermediate row that no following row reads (CSE duplicates, folded
/// constants, zero-merged-coefficient monomials) and compact the columns of
/// the consuming layer.
pub struct DeadNeuronElim;

impl Pass for DeadNeuronElim {
    fn name(&self) -> &'static str {
        PassId::DeadNeuronElim.name()
    }

    fn run(&self, g: &mut NnGraph) {
        if g.layers.len() < 2 {
            return;
        }
        for i in (0..g.layers.len() - 1).rev() {
            let mut used = vec![false; g.layers[i].rows.len()];
            for row in &g.layers[i + 1].rows {
                for &(c, _) in &row.weights {
                    used[c as usize] = true;
                }
            }
            if used.iter().all(|&u| u) {
                continue;
            }
            // compact live rows, recording old column -> new column
            let mut remap = vec![u32::MAX; used.len()];
            let mut kept = 0u32;
            let rows = std::mem::take(&mut g.layers[i].rows);
            g.layers[i].rows = rows
                .into_iter()
                .zip(used.iter())
                .enumerate()
                .filter_map(|(r, (row, &live))| {
                    if live {
                        remap[r] = kept;
                        kept += 1;
                        Some(row)
                    } else {
                        None
                    }
                })
                .collect();
            for row in &mut g.layers[i + 1].rows {
                for entry in &mut row.weights {
                    entry.0 = remap[entry.0 as usize];
                    debug_assert_ne!(entry.0, u32::MAX);
                }
            }
            g.layers[i + 1].in_width = kept as usize;
        }
    }
}

/// `layer-merge` (Fig. 5): an exact-linear layer followed by anything fuses
/// into the successor's affine stage — `W' = W_next · W_lin`,
/// `b' = W_next · b_lin + b_next` — halving the depth. The final layer (the
/// network interface) always stays explicit.
pub struct LayerMerge;

impl Pass for LayerMerge {
    fn name(&self) -> &'static str {
        PassId::LayerMerge.name()
    }

    fn run(&self, g: &mut NnGraph) {
        let mut i = 0;
        while i + 1 < g.layers.len() {
            if g.layers[i].act != Activation2::Linear {
                i += 1;
                continue;
            }
            let lin = g.layers.remove(i);
            let next = &mut g.layers[i];
            for row in &mut next.rows {
                let mut acc: HashMap<u32, i64> = HashMap::with_capacity(row.weights.len() * 2);
                let mut bias = row.bias;
                for &(c, w) in &row.weights {
                    let src = &lin.rows[c as usize];
                    bias += w * src.bias;
                    for &(sc, sw) in &src.weights {
                        *acc.entry(sc).or_insert(0) += w * sw;
                    }
                }
                row.weights = acc.into_iter().filter(|&(_, w)| w != 0).collect();
                row.bias = bias;
                row.canonicalize();
            }
            next.in_width = lin.in_width;
            // stay at i: the fused layer may itself precede another linear
        }
    }
}

/// `legalize`: emit the typed [`CompiledNn`], checking every coefficient
/// against the target scalar's exact-integer range (f32 → ±2²⁴).
pub fn legalize<T: Scalar>(g: &NnGraph) -> Result<CompiledNn<T>, CompileError> {
    let mut layers = Vec::with_capacity(g.layers.len());
    for layer in &g.layers {
        let trips: Vec<(u32, u32, i64)> = layer
            .rows
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.weights.iter().map(move |&(c, w)| (r as u32, c, w)))
            .collect();
        let w: Csr<i64> = Csr::from_triplets(layer.rows.len(), layer.in_width, trips);
        let bias: Vec<i64> = layer.rows.iter().map(|r| r.bias).collect();
        layers.push(csr_to_layer::<T>(&w, &bias, layer.act)?);
    }
    Ok(CompiledNn {
        name: g.name.clone(),
        layers,
        num_primary_inputs: g.num_primary_inputs,
        num_primary_outputs: g.num_primary_outputs,
        state_init: g.state_init.clone(),
        gate_count: g.gate_count,
        lut_size: g.lut_size,
    })
}

/// Convert one exact-`i64` layer, rejecting coefficients outside the
/// scalar's exact range.
pub(crate) fn csr_to_layer<T: Scalar>(
    w: &Csr<i64>,
    bias: &[i64],
    act: Activation2,
) -> Result<NnLayer<T>, CompileError> {
    // Every coefficient must sit inside the scalar's exact-integer range
    // (f32 → ±2^24) AND inside i32, because values convert via `from_i32`.
    let limit = T::EXACT_LIMIT.min(i32::MAX as i64);
    let (_, _, vals) = w.raw();
    for &v in vals {
        if v.abs() > limit {
            return Err(CompileError::CoefficientOverflow { value: v, limit });
        }
    }
    for &b in bias {
        if b.abs() > limit {
            return Err(CompileError::CoefficientOverflow { value: b, limit });
        }
    }
    Ok(NnLayer {
        weights: w.cast::<T>(|v| {
            debug_assert!(v.abs() <= i32::MAX as i64);
            v as i32
        }),
        bias: bias.iter().map(|&b| T::from_i32(b as i32)).collect(),
        activation: act,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrLayer, IrRow, RowProv};

    fn row(weights: Vec<(u32, i64)>, bias: i64) -> IrRow {
        let mut r = IrRow {
            weights,
            bias,
            prov: RowProv::Signal { signal: 0 },
        };
        r.canonicalize();
        r
    }

    /// Two AND neurons over the same inputs feeding a 2-output linear layer.
    fn dup_graph() -> NnGraph {
        NnGraph {
            name: "dup".into(),
            num_primary_inputs: 2,
            num_primary_outputs: 2,
            state_init: vec![],
            gate_count: 2,
            lut_size: 2,
            in_width: 2,
            layers: vec![
                IrLayer {
                    act: Activation2::Threshold,
                    in_width: 2,
                    rows: vec![
                        row(vec![(0, 1), (1, 1)], -1),
                        row(vec![(0, 1), (1, 1)], -1), // duplicate monomial
                        row(vec![(0, 1)], 0),
                    ],
                },
                IrLayer {
                    act: Activation2::Linear,
                    in_width: 3,
                    rows: vec![row(vec![(0, 1)], 0), row(vec![(1, -1), (2, 1)], 0)],
                },
            ],
        }
    }

    fn outputs_over_domain(g: &NnGraph) -> Vec<Vec<i64>> {
        (0..1u32 << g.in_width)
            .map(|x| {
                let bits: Vec<bool> = (0..g.in_width).map(|j| x >> j & 1 == 1).collect();
                g.eval(&bits)
            })
            .collect()
    }

    #[test]
    fn cse_then_dce_removes_the_duplicate() {
        let mut g = dup_graph();
        let want = outputs_over_domain(&g);
        MonomialCse.run(&mut g);
        g.check().unwrap();
        assert_eq!(outputs_over_domain(&g), want, "cse must not change outputs");
        // the duplicate is gone in-pass: row 1's consumer points at row 0,
        // and the x0 row compacted down to column 1
        assert_eq!(
            g.layers[0].rows.len(),
            2,
            "duplicate neuron collected by cse"
        );
        assert_eq!(g.layers[1].rows[1].weights, vec![(0, -1), (1, 1)]);
        DeadNeuronElim.run(&mut g);
        g.check().unwrap();
        assert_eq!(g.layers[0].rows.len(), 2, "nothing left for dce to collect");
        assert_eq!(outputs_over_domain(&g), want, "dce must not change outputs");
    }

    #[test]
    fn cse_merges_coefficients_to_zero() {
        // consumer reads h0 − h1 where h0 == h1: coefficient cancels to zero
        let mut g = dup_graph();
        g.layers[1].rows = vec![row(vec![(0, 1), (1, -1)], 0)];
        g.num_primary_outputs = 1;
        MonomialCse.run(&mut g);
        assert!(
            g.layers[1].rows[0].weights.is_empty(),
            "±1 on a shared neuron cancels"
        );
        assert_eq!(
            g.layers[0].rows.len(),
            2,
            "cse drops the duplicate, keeps live rows"
        );
        DeadNeuronElim.run(&mut g);
        assert_eq!(g.layers[0].rows.len(), 0, "all neurons dead");
        for x in 0..4u32 {
            let bits = [x & 1 == 1, x >> 1 & 1 == 1];
            assert_eq!(g.eval(&bits), vec![0]);
        }
    }

    #[test]
    fn constant_fold_propagates_zero_input_luts() {
        // h0 = Θ(1) = 1 (a tied-one net), h1 = x0; y = h0 + h1
        let mut g = NnGraph {
            name: "k".into(),
            num_primary_inputs: 1,
            num_primary_outputs: 1,
            state_init: vec![],
            gate_count: 1,
            lut_size: 2,
            in_width: 1,
            layers: vec![
                IrLayer {
                    act: Activation2::Threshold,
                    in_width: 1,
                    rows: vec![row(vec![], 1), row(vec![(0, 1)], 0)],
                },
                IrLayer {
                    act: Activation2::Linear,
                    in_width: 2,
                    rows: vec![row(vec![(0, 1), (1, 1)], 0)],
                },
            ],
        };
        let want = outputs_over_domain(&g);
        ConstantFold.run(&mut g);
        assert_eq!(outputs_over_domain(&g), want);
        // the constant neuron's contribution moved into the consumer's bias
        assert_eq!(g.layers[1].rows[0].weights, vec![(1, 1)]);
        assert_eq!(g.layers[1].rows[0].bias, 1);
        DeadNeuronElim.run(&mut g);
        assert_eq!(g.layers[0].rows.len(), 1, "constant neuron collected");
        assert_eq!(outputs_over_domain(&g), want);
    }

    #[test]
    fn constant_fold_keeps_final_layer_rows() {
        // a constant output row must survive (it is part of the interface)
        let mut g = NnGraph {
            name: "k".into(),
            num_primary_inputs: 1,
            num_primary_outputs: 1,
            state_init: vec![],
            gate_count: 0,
            lut_size: 2,
            in_width: 1,
            layers: vec![IrLayer {
                act: Activation2::Linear,
                in_width: 1,
                rows: vec![row(vec![], 1)],
            }],
        };
        ConstantFold.run(&mut g);
        assert_eq!(g.layers[0].rows.len(), 1);
        assert_eq!(g.eval(&[false]), vec![1]);
    }

    #[test]
    fn layer_merge_fuses_linear_into_successor() {
        let mut g = dup_graph();
        // append another threshold layer so the linear stage has a successor
        g.layers.push(IrLayer {
            act: Activation2::Threshold,
            in_width: 2,
            rows: vec![row(vec![(0, 1), (1, 1)], -1)],
        });
        g.num_primary_outputs = 1;
        let want = outputs_over_domain(&g);
        LayerMerge.run(&mut g);
        g.check().unwrap();
        assert_eq!(g.layers.len(), 2, "T L T → T T'");
        assert_eq!(g.layers[1].act, Activation2::Threshold);
        assert_eq!(outputs_over_domain(&g), want);
    }

    #[test]
    fn pass_set_algebra_and_parse() {
        let all = PassSet::all();
        assert!(all.contains(PassId::LayerMerge));
        let no_merge = all.without(PassId::LayerMerge);
        assert!(!no_merge.contains(PassId::LayerMerge));
        assert!(no_merge.contains(PassId::MonomialCse));
        assert_eq!(no_merge.to_vec().len(), 3);
        assert_eq!(PassSet::prefix(0), PassSet::none());
        assert_eq!(PassSet::prefix(4), PassSet::all());
        assert_eq!(
            PassSet::prefix(2).to_vec(),
            vec![PassId::ConstantFold, PassId::MonomialCse]
        );

        assert_eq!(PassSet::parse("all").unwrap(), PassSet::all());
        assert_eq!(PassSet::parse("none").unwrap(), PassSet::none());
        assert_eq!(
            PassSet::parse("cse,merge").unwrap(),
            PassSet::none()
                .with(PassId::MonomialCse)
                .with(PassId::LayerMerge)
        );
        assert_eq!(
            PassSet::parse("constant-fold,dead-neuron-elim").unwrap(),
            PassSet::none()
                .with(PassId::ConstantFold)
                .with(PassId::DeadNeuronElim)
        );
        assert!(PassSet::parse("blurp").is_err());
    }

    #[test]
    fn legalize_rejects_overflow() {
        let g = NnGraph {
            name: "o".into(),
            num_primary_inputs: 1,
            num_primary_outputs: 1,
            state_init: vec![],
            gate_count: 0,
            lut_size: 2,
            in_width: 1,
            layers: vec![IrLayer {
                act: Activation2::Linear,
                in_width: 1,
                rows: vec![row(vec![(0, 1i64 << 30)], 0)],
            }],
        };
        let res = legalize::<f32>(&g);
        assert!(matches!(res, Err(CompileError::CoefficientOverflow { .. })));
        // but i64-safe values pass for i32 targets
        assert!(legalize::<i32>(&g).is_ok());
    }
}
