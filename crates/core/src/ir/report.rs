//! Per-pass compile instrumentation: every pipeline stage records wall time
//! and before→after size metrics into a [`CompileReport`], surfaced through
//! `c2nn compile --stats` and the bench harness's compile-stats experiment.

use c2nn_json::json_obj;

/// Size of an IR snapshot (or of the legalized artifact).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrMetrics {
    /// Number of layers.
    pub layers: usize,
    /// Total rows (neurons) across layers.
    pub neurons: usize,
    /// Total nonzero weights across layers.
    pub nnz: usize,
}
json_obj!(IrMetrics {
    layers,
    neurons,
    nnz
});

/// One pipeline stage's record.
#[derive(Clone, Debug, PartialEq)]
pub struct PassStat {
    /// Stage name (`lower`, `constant-fold`, `monomial-cse`,
    /// `dead-neuron-elim`, `layer-merge`, `legalize`).
    pub pass: String,
    /// Wall time of the stage in seconds.
    pub wall_s: f64,
    pub before: IrMetrics,
    pub after: IrMetrics,
}
json_obj!(PassStat {
    pass,
    wall_s,
    before,
    after
});

impl PassStat {
    /// Nonzeros removed by this stage (negative when the stage grew the
    /// network — expected only for `layer-merge`, which trades nnz for
    /// depth).
    pub fn nnz_delta(&self) -> i64 {
        self.before.nnz as i64 - self.after.nnz as i64
    }
}

/// The structured result of one compilation, pass by pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompileReport {
    pub circuit: String,
    pub lut_size: usize,
    pub passes: Vec<PassStat>,
    /// End-to-end wall time (netlist preparation + mapping + pipeline).
    pub total_s: f64,
}
json_obj!(CompileReport {
    circuit,
    lut_size,
    passes,
    total_s
});

impl CompileReport {
    /// Metrics of the final artifact (after the last stage).
    pub fn final_metrics(&self) -> Option<IrMetrics> {
        self.passes.last().map(|p| p.after)
    }

    /// Look up one stage by name.
    pub fn stat(&self, pass: &str) -> Option<&PassStat> {
        self.passes.iter().find(|p| p.pass == pass)
    }

    /// Render as an aligned text table (the `--stats` output).
    pub fn to_table(&self) -> String {
        let mut s = format!(
            "{:<17} {:>9} {:>7} {:>9} {:>10} {:>10}\n",
            "pass", "time", "layers", "neurons", "nnz", "Δnnz"
        );
        for p in &self.passes {
            let delta = p.nnz_delta();
            s.push_str(&format!(
                "{:<17} {:>8.3}s {:>7} {:>9} {:>10} {:>10}\n",
                p.pass,
                p.wall_s,
                p.after.layers,
                p.after.neurons,
                p.after.nnz,
                if delta == 0 {
                    "·".to_string()
                } else {
                    format!("{:+}", -delta)
                },
            ));
        }
        s.push_str(&format!("total {:>20.3}s\n", self.total_s));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(pass: &str, before: usize, after: usize) -> PassStat {
        PassStat {
            pass: pass.into(),
            wall_s: 0.001,
            before: IrMetrics {
                layers: 4,
                neurons: 10,
                nnz: before,
            },
            after: IrMetrics {
                layers: 4,
                neurons: 10,
                nnz: after,
            },
        }
    }

    #[test]
    fn delta_and_lookup() {
        let r = CompileReport {
            circuit: "c".into(),
            lut_size: 4,
            passes: vec![stat("lower", 100, 100), stat("monomial-cse", 100, 80)],
            total_s: 0.5,
        };
        assert_eq!(r.stat("monomial-cse").unwrap().nnz_delta(), 20);
        assert_eq!(r.final_metrics().unwrap().nnz, 80);
        let table = r.to_table();
        assert!(table.contains("monomial-cse"));
        assert!(table.contains("-20"));
    }

    #[test]
    fn report_serializes() {
        let r = CompileReport {
            circuit: "c".into(),
            lut_size: 4,
            passes: vec![stat("lower", 5, 5)],
            total_s: 0.1,
        };
        let text = c2nn_json::to_string(&r);
        assert!(text.contains("\"circuit\""));
        assert!(text.contains("\"nnz\""));
        c2nn_json::parse(&text).unwrap();
    }
}
