//! The mid-level NN-graph IR sitting between the LUT graph and the final
//! [`CompiledNn`](crate::CompiledNn) artifact.
//!
//! Lowering (`ir::lower`) turns a [`c2nn_lutmap::LutGraph`] into an
//! **un-merged** [`NnGraph`]: a chain of integer affine layers in which every
//! row is either a *monomial neuron* `Θ(Σ_{s∈S} x_s − |S| + 1)` (one per cube
//! of a LUT's multilinear polynomial), a *pass-through* neuron, a *wide
//! known-function* neuron (§V), or an exact-linear *signal* row recombining
//! monomials into a LUT's output value. Each row carries [`RowProv`]enance —
//! which LUT node and which cube it came from — so optimization passes can
//! reason about (and report on) cross-LUT structure.
//!
//! The pass pipeline (`ir::passes`) then rewrites the graph in place:
//! cross-LUT monomial CSE, dead-neuron elimination, constant folding, and
//! the Fig. 5 layer merge, before `legalize` emits the typed artifact.
//!
//! ## IR invariants
//!
//! 1. Layer `i + 1`'s `in_width` equals layer `i`'s row count; layer 0's
//!    `in_width` equals [`NnGraph::in_width`].
//! 2. Row weights are sorted by column, deduplicated, and nonzero
//!    ([`IrRow::canonicalize`]).
//! 3. Fed binary inputs, every `Threshold` row produces 0/1 by construction
//!    and every `Linear` row of an intermediate layer produces the 0/1 value
//!    of its source signal. The final layer's rows are the network outputs
//!    in port order (primary outputs ‖ next state).
//! 4. All arithmetic is exact `i64`; the range check against the target
//!    scalar happens once, in `legalize`.

pub mod lower;
pub mod passes;
pub mod report;

use crate::layer::Activation2;

/// Where an IR row came from (compression passes preserve the provenance of
/// the surviving row).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowProv {
    /// The monomial `∏_{j ∈ mask} x_{inputs[j]}` of LUT node `node`
    /// (`node` is the node's stable signal id in the source `LutGraph`;
    /// `mask` indexes the node's local inputs).
    Monomial { node: u32, mask: u32 },
    /// The single threshold neuron of a §V wide known-function node.
    Wide { node: u32 },
    /// A pass-through neuron keeping signal `signal` alive across a level.
    Pass { signal: u32 },
    /// An exact-linear row carrying the value of signal `signal`.
    Signal { signal: u32 },
}

/// One row of an IR layer: `act(Σ w·x[col] + bias)` in exact `i64`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrRow {
    /// `(column, weight)` pairs, sorted by column, deduplicated, nonzero.
    pub weights: Vec<(u32, i64)>,
    pub bias: i64,
    pub prov: RowProv,
}

impl IrRow {
    /// Sort by column, merge duplicate columns, drop zero weights — the
    /// canonical form every pass relies on (and CSE keys on).
    pub fn canonicalize(&mut self) {
        self.weights.sort_unstable_by_key(|&(c, _)| c);
        let mut out: Vec<(u32, i64)> = Vec::with_capacity(self.weights.len());
        for &(c, w) in &self.weights {
            match out.last_mut() {
                Some(last) if last.0 == c => last.1 += w,
                _ => out.push((c, w)),
            }
        }
        out.retain(|&(_, w)| w != 0);
        self.weights = out;
    }

    /// Number of nonzero weights.
    pub fn nnz(&self) -> usize {
        self.weights.len()
    }
}

/// One layer of the IR: all rows share the activation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrLayer {
    pub act: Activation2,
    /// Width of the input vector this layer consumes.
    pub in_width: usize,
    pub rows: Vec<IrRow>,
}

impl IrLayer {
    /// Number of rows (= next layer's `in_width`).
    pub fn out_width(&self) -> usize {
        self.rows.len()
    }

    /// Total nonzero weights.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(IrRow::nnz).sum()
    }
}

/// Apply an activation to an exact pre-activation value.
pub(crate) fn apply_act(act: Activation2, pre: i64) -> i64 {
    match act {
        Activation2::Threshold => (pre > 0) as i64,
        Activation2::Linear => pre,
    }
}

/// The mid-level IR: an un-typed (exact `i64`) layered network plus the
/// interface header that survives into [`CompiledNn`](crate::CompiledNn).
#[derive(Clone, Debug, PartialEq)]
pub struct NnGraph {
    pub name: String,
    pub num_primary_inputs: usize,
    pub num_primary_outputs: usize,
    pub state_init: Vec<bool>,
    pub gate_count: usize,
    pub lut_size: usize,
    /// Width of the layer-0 input vector (primary inputs ‖ state).
    pub in_width: usize,
    pub layers: Vec<IrLayer>,
}

impl NnGraph {
    /// Size metrics used by per-pass instrumentation.
    pub fn metrics(&self) -> report::IrMetrics {
        report::IrMetrics {
            layers: self.layers.len(),
            neurons: self.layers.iter().map(IrLayer::out_width).sum(),
            nnz: self.layers.iter().map(IrLayer::nnz).sum(),
        }
    }

    /// Check IR invariants 1–2 (width chaining, canonical rows, in-range
    /// columns). Passes call this under `debug_assertions`.
    pub fn check(&self) -> Result<(), String> {
        let mut width = self.in_width;
        for (i, layer) in self.layers.iter().enumerate() {
            if layer.in_width != width {
                return Err(format!(
                    "layer {i}: in_width {} != previous out_width {width}",
                    layer.in_width
                ));
            }
            for (r, row) in layer.rows.iter().enumerate() {
                for pair in row.weights.windows(2) {
                    if pair[0].0 >= pair[1].0 {
                        return Err(format!("layer {i} row {r}: columns not strictly sorted"));
                    }
                }
                for &(c, w) in &row.weights {
                    if c as usize >= width {
                        return Err(format!("layer {i} row {r}: column {c} ≥ width {width}"));
                    }
                    if w == 0 {
                        return Err(format!("layer {i} row {r}: zero weight at column {c}"));
                    }
                }
            }
            width = layer.out_width();
        }
        Ok(())
    }

    /// Reference evaluation in exact `i64` arithmetic (test oracle for the
    /// passes; the production path goes through `legalize` + the simulator).
    pub fn eval(&self, inputs: &[bool]) -> Vec<i64> {
        assert_eq!(inputs.len(), self.in_width, "input width");
        let mut cur: Vec<i64> = inputs.iter().map(|&b| b as i64).collect();
        for layer in &self.layers {
            cur = layer
                .rows
                .iter()
                .map(|row| {
                    let pre: i64 = row
                        .weights
                        .iter()
                        .map(|&(c, w)| w * cur[c as usize])
                        .sum::<i64>()
                        + row.bias;
                    apply_act(layer.act, pre)
                })
                .collect();
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(weights: Vec<(u32, i64)>, bias: i64) -> IrRow {
        IrRow {
            weights,
            bias,
            prov: RowProv::Signal { signal: 0 },
        }
    }

    #[test]
    fn canonicalize_sorts_merges_and_drops_zeros() {
        let mut r = row(vec![(3, 2), (1, 1), (3, -2), (0, 5), (2, 0)], 0);
        r.canonicalize();
        assert_eq!(r.weights, vec![(0, 5), (1, 1)]);
    }

    #[test]
    fn eval_is_exact_threshold_then_linear() {
        // Θ(x0 + x1 − 1) = AND, then y = 3·h − 1
        let g = NnGraph {
            name: "t".into(),
            num_primary_inputs: 2,
            num_primary_outputs: 1,
            state_init: vec![],
            gate_count: 1,
            lut_size: 2,
            in_width: 2,
            layers: vec![
                IrLayer {
                    act: Activation2::Threshold,
                    in_width: 2,
                    rows: vec![row(vec![(0, 1), (1, 1)], -1)],
                },
                IrLayer {
                    act: Activation2::Linear,
                    in_width: 1,
                    rows: vec![row(vec![(0, 3)], -1)],
                },
            ],
        };
        g.check().unwrap();
        assert_eq!(g.eval(&[true, true]), vec![2]);
        assert_eq!(g.eval(&[true, false]), vec![-1]);
    }

    #[test]
    fn check_catches_width_mismatch() {
        let g = NnGraph {
            name: "t".into(),
            num_primary_inputs: 1,
            num_primary_outputs: 1,
            state_init: vec![],
            gate_count: 0,
            lut_size: 2,
            in_width: 1,
            layers: vec![IrLayer {
                act: Activation2::Linear,
                in_width: 3,
                rows: vec![],
            }],
        };
        assert!(g.check().is_err());
    }
}
